"""Tests for the cache hierarchy and its determinism properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError
from repro.hw.bus import BusConfig, MemoryBus
from repro.hw.cache import Cache, CacheConfig, CacheHierarchy, ReplacementPolicy


def make_cache(size=4096, line=64, ways=2, policy=ReplacementPolicy.LRU,
               rng=None):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, ways=ways,
                             policy=policy), rng=rng)


def quiet_bus():
    return MemoryBus(BusConfig(), ZeroNoise())


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=2)
        assert cfg.num_sets == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(HardwareConfigError):
            CacheConfig(size_bytes=0)
        with pytest.raises(HardwareConfigError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=3)

    def test_rejects_negative_latency(self):
        with pytest.raises(HardwareConfigError):
            CacheConfig(size_bytes=4096, hit_cycles=-1)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(HardwareConfigError):
            Cache(CacheConfig(size_bytes=4096, line_bytes=48, ways=1))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.misses == 1 and c.hits == 1

    def test_same_line_is_one_entry(self):
        c = make_cache(line=64)
        c.access(0x100)
        assert c.access(0x13F)  # same 64-byte line
        assert not c.access(0x140)  # next line

    def test_lru_eviction_order(self):
        c = make_cache(size=128, line=64, ways=2)  # 1 set, 2 ways
        c.access(0x0)
        c.access(0x40)
        c.access(0x0)       # touch A again: LRU victim is now B
        c.access(0x80)      # evicts B
        assert c.contains(0x0)
        assert not c.contains(0x40)

    def test_fifo_eviction_order(self):
        c = make_cache(size=128, line=64, ways=2,
                       policy=ReplacementPolicy.FIFO)
        c.access(0x0)
        c.access(0x40)
        c.access(0x0)       # FIFO ignores recency
        c.access(0x80)      # evicts A (oldest insertion)
        assert not c.contains(0x0)
        assert c.contains(0x40)

    def test_random_policy_is_seed_deterministic(self):
        def run(seed):
            c = make_cache(size=256, ways=4, policy=ReplacementPolicy.RANDOM,
                           rng=SplitMix64(seed))
            results = []
            for i in range(200):
                results.append(c.access((i * 7919) % 4096))
            return results, c.state_fingerprint()

        assert run(5) == run(5)

    def test_random_policy_differs_across_seeds(self):
        def run(seed):
            c = make_cache(size=256, line=64, ways=4,
                           policy=ReplacementPolicy.RANDOM,
                           rng=SplitMix64(seed))
            for i in range(500):
                c.access((i * 7919) % 8192)
            return c.state_fingerprint()

        assert run(1) != run(2)

    def test_flush_empties(self):
        c = make_cache()
        for i in range(10):
            c.access(i * 64)
        assert c.occupancy == 10
        c.flush()
        assert c.occupancy == 0
        assert not c.contains(0)

    def test_pollute_fills_lines(self):
        c = make_cache(size=8192, ways=4)
        c.pollute(SplitMix64(1), 20)
        assert c.occupancy > 0

    def test_randomize_is_bounded_by_fraction(self):
        c = make_cache(size=8192, ways=4)
        c.randomize(SplitMix64(3), fill_fraction=0.5)
        assert 0 < c.occupancy <= c.config.num_sets * c.config.ways

    def test_fingerprint_reflects_state(self):
        a, b = make_cache(), make_cache()
        assert a.state_fingerprint() == b.state_fingerprint()
        a.access(0x40)
        assert a.state_fingerprint() != b.state_fingerprint()
        b.access(0x40)
        assert a.state_fingerprint() == b.state_fingerprint()

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_identical_streams_identical_state(self, addrs):
        """The core TDR cache property: same access stream => same state."""
        a, b = make_cache(), make_cache()
        for addr in addrs:
            assert a.access(addr) == b.access(addr)
        assert a.state_fingerprint() == b.state_fingerprint()

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = make_cache(size=1024, ways=2)
        for addr in addrs:
            c.access(addr)
        assert c.occupancy <= c.config.num_sets * c.config.ways


class TestCacheHierarchy:
    def make(self, dram=200):
        l1 = make_cache(size=1024, ways=2)
        l2 = make_cache(size=8192, ways=4)
        return CacheHierarchy(l1, l2, quiet_bus(), dram_cycles=dram)

    def test_cost_ordering(self):
        h = self.make()
        cold = h.access(0x4000)          # miss everywhere
        l1_hit = h.access(0x4000)        # L1 hit
        assert cold > l1_hit
        assert l1_hit == h.l1.config.hit_cycles

    def test_l2_hit_cost(self):
        h = self.make()
        h.access(0x0)
        # Evict 0x0 from tiny L1 but keep it in L2.
        for i in range(1, 64):
            h.access(i * 1024 * 64)
        cost = h.access(0x0)
        expected = h.l1.config.hit_cycles + h.l2.config.hit_cycles
        assert cost in (expected, expected + h.dram_cycles) or cost == expected

    def test_dram_count(self):
        h = self.make()
        h.access(0x0)
        h.access(0x0)
        assert h.dram_accesses == 1

    def test_flush_flushes_both(self):
        h = self.make()
        h.access(0x0)
        h.flush()
        assert h.l1.occupancy == 0 and h.l2.occupancy == 0

    def test_negative_dram_rejected(self):
        with pytest.raises(HardwareConfigError):
            self.make(dram=-1)

    def test_pollute_touches_both_levels(self):
        h = self.make()
        h.pollute(SplitMix64(1), 8, 16)
        assert h.l1.occupancy > 0 and h.l2.occupancy > 0

    def test_hierarchy_fingerprint_deterministic(self):
        a, b = self.make(), self.make()
        for i in range(100):
            a.access(i * 64)
            b.access(i * 64)
        assert a.state_fingerprint() == b.state_fingerprint()

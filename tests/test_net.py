"""Tests for the network substrate: jitter, links, traces."""

import pytest

from repro.determinism import SplitMix64
from repro.errors import ReproError
from repro.net import (BROADBAND_JITTER, EAST_COAST_JITTER, PacketRecord,
                       PacketTrace, QuantileJitter, WanLink)


class TestQuantileJitter:
    def test_reproduces_paper_percentiles(self):
        """§6.6: p50=0.18, p90=0.80, p99=3.91 (ms)."""
        assert EAST_COAST_JITTER.quantile(0.50) == pytest.approx(0.18)
        assert EAST_COAST_JITTER.quantile(0.90) == pytest.approx(0.80)
        assert EAST_COAST_JITTER.quantile(0.99) == pytest.approx(3.91)

    def test_broadband_median(self):
        """§6.9: broadband median jitter ~= 2.5 ms."""
        assert BROADBAND_JITTER.median_ms() == pytest.approx(2.5)

    def test_empirical_percentiles_converge(self):
        rng = SplitMix64(1)
        samples = sorted(EAST_COAST_JITTER.sample_ms(rng)
                         for _ in range(20000))
        assert samples[len(samples) // 2] == pytest.approx(0.18, rel=0.1)
        assert samples[int(len(samples) * 0.9)] == pytest.approx(0.8,
                                                                 rel=0.1)

    def test_interpolation_between_anchors(self):
        j = QuantileJitter([(0.0, 0.0), (1.0, 10.0)])
        assert j.quantile(0.25) == pytest.approx(2.5)

    def test_sampling_is_deterministic(self):
        a = [EAST_COAST_JITTER.sample_ms(SplitMix64(5)) for _ in range(3)]
        b = [EAST_COAST_JITTER.sample_ms(SplitMix64(5)) for _ in range(3)]
        assert a == b

    def test_sample_cycles_nonnegative(self):
        rng = SplitMix64(2)
        for _ in range(100):
            assert EAST_COAST_JITTER.sample_cycles(rng) >= 0

    @pytest.mark.parametrize("anchors", [
        [(0.0, 1.0)],                        # too few
        [(0.1, 1.0), (1.0, 2.0)],            # doesn't start at 0
        [(0.0, 1.0), (0.5, 0.5), (1.0, 2.0)],  # decreasing values
        [(0.0, 1.0), (0.0, 2.0), (1.0, 3.0)],  # duplicate quantile
    ])
    def test_bad_anchor_sets_rejected(self, anchors):
        with pytest.raises(ValueError):
            QuantileJitter(anchors)

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            EAST_COAST_JITTER.quantile(1.5)


class TestWanLink:
    def test_delivery_adds_delay_and_jitter(self):
        link = WanLink(rtt_ms=10.0)
        rng = SplitMix64(1)
        arrival = link.deliver_ms(100.0, rng)
        assert arrival > 100.0 + 5.0  # one-way + positive jitter

    def test_order_preservation(self):
        link = WanLink(rtt_ms=10.0)
        rng = SplitMix64(3)
        sends = [0.0, 0.01, 0.02, 5.0, 5.01]  # closely spaced packets
        arrivals = link.transit_times_ms(sends, rng)
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == len(sends)

    def test_one_way_cycles(self):
        link = WanLink(rtt_ms=10.0, frequency_hz=1e9)
        assert link.one_way_cycles == 5_000_000

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            WanLink(rtt_ms=-1.0)


class TestPacketTrace:
    def make_trace(self):
        return PacketTrace([PacketRecord(0.0, b"a"), PacketRecord(5.0, b"b"),
                            PacketRecord(12.0, b"c")])

    def test_ipds(self):
        assert self.make_trace().ipds_ms() == [5.0, 7.0]

    def test_duration(self):
        assert self.make_trace().duration_ms() == 12.0
        assert PacketTrace([]).duration_ms() == 0.0

    def test_rejects_unordered(self):
        with pytest.raises(ReproError):
            PacketTrace([PacketRecord(5.0, b"a"), PacketRecord(1.0, b"b")])

    def test_json_roundtrip(self):
        trace = self.make_trace()
        parsed = PacketTrace.from_json(trace.to_json())
        assert parsed.times_ms() == trace.times_ms()
        assert [r.payload for r in parsed] == [r.payload for r in trace]

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError):
            PacketTrace.from_json("{not json")
        with pytest.raises(ReproError):
            PacketTrace.from_json('[{"bad": 1}]')

    def test_from_times(self):
        trace = PacketTrace.from_times_ms([3.0, 1.0, 2.0])
        assert trace.times_ms() == [1.0, 2.0, 3.0]

    def test_slice(self):
        sliced = self.make_trace().slice_packets(1, 3)
        assert sliced.times_ms() == [5.0, 12.0]

    def test_shifted_accumulates_delays(self):
        trace = self.make_trace()
        shifted = trace.shifted([0.0, 1.0, 2.0])
        # Packet 1 delayed by 1 shifts packets 1 and 2; packet 2 by 2 more.
        assert shifted.times_ms() == [0.0, 6.0, 15.0]
        assert shifted.ipds_ms() == [6.0, 9.0]

    def test_shifted_validates(self):
        trace = self.make_trace()
        with pytest.raises(ReproError):
            trace.shifted([0.0, 1.0])          # wrong length
        with pytest.raises(ReproError):
            trace.shifted([0.0, -1.0, 0.0])    # negative delay

    def test_from_result(self):
        class FakeResult:
            tx = [(100, b"x"), (200, b"y")]

            def tx_times_ms(self):
                return [0.1, 0.2]

        trace = PacketTrace.from_result(FakeResult())
        assert len(trace) == 2
        assert trace.records[0].payload == b"x"

"""Prover sessions: segmentation, attestation chains, shipping."""

import pytest

from repro.analysis.parallel import execute_spec
from repro.core.attestation import LogVerifier
from repro.core.log import EventLog
from repro.service import ProverSession, ServiceError, TenantSpec
from repro.service.session import _chunk_bounds


def _session(**overrides):
    defaults = dict(tenant_id="t0", requests=4, seed=3, segments=3)
    defaults.update(overrides)
    return ProverSession(TenantSpec(**defaults), service_seed=11)


def _play(session, epoch=0):
    return execute_spec(session.play_spec(epoch))


class TestTenantSpec:
    def test_rejects_zero_segments(self):
        with pytest.raises(ServiceError):
            TenantSpec(tenant_id="bad", segments=0)

    def test_rejects_out_of_range_drop_rate(self):
        with pytest.raises(ServiceError):
            TenantSpec(tenant_id="bad", drop_rate=1.0)
        with pytest.raises(ServiceError):
            TenantSpec(tenant_id="bad", drop_rate=-0.1)

    def test_signing_key_is_per_tenant(self):
        assert TenantSpec(tenant_id="a").signing_key \
            != TenantSpec(tenant_id="b").signing_key


class TestChunkBounds:
    @pytest.mark.parametrize("n,segments", [(9, 3), (10, 3), (1, 4),
                                            (0, 2), (7, 1)])
    def test_bounds_partition_the_range(self, n, segments):
        bounds = _chunk_bounds(n, segments)
        assert len(bounds) == segments
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start

    def test_early_chunks_take_the_remainder(self):
        assert _chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]


class TestShipping:
    def test_segments_reassemble_into_the_full_log(self):
        session = _session()
        result = _play(session)
        shipment = session.ship(0, result, epoch_start_ms=0.0)
        assert len(shipment.shipments) == 3
        rebuilt = []
        for seg in shipment.shipments:
            rebuilt.extend(EventLog.from_bytes(seg.chunk_bytes).entries)
        assert len(rebuilt) == len(result.log.entries)
        assert [e.payload for e in rebuilt] \
            == [e.payload for e in result.log.entries]

    def test_cumulative_authenticators_verify(self):
        session = _session()
        result = _play(session)
        shipment = session.ship(0, result, epoch_start_ms=0.0)
        verifier = LogVerifier(session.spec.signing_key)
        acc = EventLog()
        for seg in shipment.shipments:
            acc.entries.extend(EventLog.from_bytes(seg.chunk_bytes).entries)
            assert verifier.verify_available_prefix(acc, seg.auth) is True

    def test_arrivals_are_ordered_and_after_send(self):
        session = _session()
        shipment = session.ship(0, _play(session), epoch_start_ms=100.0)
        sent = [seg.sent_ms for seg in shipment.shipments]
        assert sent == sorted(sent) and sent[0] > 100.0
        for seg in shipment.shipments:
            assert seg.arrival_ms >= seg.sent_ms

    def test_tamper_rewrites_exactly_one_payload(self):
        honest = _session()
        tampering = _session(tamper=True)
        result = _play(honest)
        clean = honest.ship(0, result, 0.0)
        forged = tampering.ship(0, _play(tampering), 0.0)
        clean_payloads = [e.payload for seg in clean.shipments
                          for e in EventLog.from_bytes(seg.chunk_bytes).entries]
        forged_payloads = [e.payload for seg in forged.shipments
                           for e in EventLog.from_bytes(seg.chunk_bytes).entries]
        assert len(clean_payloads) == len(forged_payloads)
        diffs = [i for i, (a, b) in enumerate(zip(clean_payloads,
                                                  forged_payloads))
                 if a != b]
        assert len(diffs) == 1

    def test_tampered_chunk_fails_chain_verification(self):
        session = _session(tamper=True)
        shipment = session.ship(0, _play(session), 0.0)
        verifier = LogVerifier(session.spec.signing_key)
        acc = EventLog()
        verdicts = []
        for seg in shipment.shipments:
            acc.entries.extend(EventLog.from_bytes(seg.chunk_bytes).entries)
            verdicts.append(verifier.verify_available_prefix(acc, seg.auth))
        assert False in verdicts


class TestDeterminism:
    def test_play_spec_is_reproducible_across_sessions(self):
        assert _session().play_spec(1) == _session().play_spec(1)

    def test_epochs_get_distinct_workload_seeds(self):
        session = _session()
        assert session.play_spec(0) != session.play_spec(1)

    def test_covert_schedule_cached_and_stable(self):
        covert = _session(covert_channel="ipctc")
        first = covert.covert_schedule(0)
        assert first is covert.covert_schedule(0)      # cached
        assert first == _session(covert_channel="ipctc").covert_schedule(0)
        assert covert.covert_schedule(1) != first
        assert _session().covert_schedule(0) is None

    def test_covert_schedule_lands_in_play_spec(self):
        covert = _session(covert_channel="ipctc")
        spec = covert.play_spec(0)
        assert spec.covert_schedule == covert.covert_schedule(0)
        assert spec.covert_schedule[0] == 0
        assert any(d > 0 for d in spec.covert_schedule)

    def test_wire_observation_mirrors_result(self):
        from repro.service import WireObservation

        session = _session()
        result = _play(session)
        wire = WireObservation.from_result(result)
        assert list(wire.tx) == result.tx
        assert wire.tx_times_ms() == result.tx_times_ms()
        assert wire.instructions == result.instructions

    def test_log_contains_no_packet_gaps_for_covert_play(self):
        # The covert tenant ships an *honest* log: delays are injected
        # during play but never recorded — that is why TDR exposes them.
        covert = _session(covert_channel="ipctc")
        honest = _session()
        covert_result = _play(covert)
        honest_result = _play(honest)
        assert [e.kind for e in covert_result.log.entries] \
            == [e.kind for e in honest_result.log.entries]
        assert covert_result.total_cycles > honest_result.total_cycles

"""Property-based tests for the event-log wire format.

Two properties the resilient audit pipeline leans on:

* any log of mixed PACKET/TIME entries survives ``to_bytes`` /
  ``from_bytes`` byte-identically (both wire versions);
* *every* single-byte mutation of the serialized form either parses to
  an equal log or raises :class:`~repro.errors.LogFormatError` — never a
  bare ``struct.error`` or ``IndexError``.  For version 2 the whole-log
  digest makes this strict: every mutation is detected.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.log import EventKind, EventLog, LogEntry
from repro.errors import LogFormatError


@st.composite
def event_logs(draw):
    count = draw(st.integers(min_value=0, max_value=12))
    log = EventLog()
    instr = 0
    for _ in range(count):
        instr += draw(st.integers(min_value=0, max_value=5000))
        if draw(st.booleans()):
            payload = draw(st.binary(min_size=0, max_size=64))
            log.record_packet(instr, payload)
        else:
            value = draw(st.integers(min_value=-2 ** 63,
                                     max_value=2 ** 63 - 1))
            log.record_time(instr, value)
    return log


@settings(max_examples=60, deadline=None)
@given(event_logs())
def test_roundtrip_byte_identical_v2(log):
    data = log.to_bytes()
    parsed = EventLog.from_bytes(data)
    assert parsed.entries == log.entries
    assert parsed.to_bytes() == data


@settings(max_examples=60, deadline=None)
@given(event_logs())
def test_roundtrip_byte_identical_v1(log):
    data = log.to_bytes(version=1)
    parsed = EventLog.from_bytes(data)
    assert parsed.entries == log.entries
    assert parsed.to_bytes(version=1) == data


@settings(max_examples=25, deadline=None)
@given(event_logs(), st.integers(min_value=1, max_value=255))
def test_every_single_byte_mutation_detected_v2(log, delta):
    data = log.to_bytes()
    for position in range(len(data)):
        mutated = bytearray(data)
        mutated[position] ^= delta
        try:
            parsed = EventLog.from_bytes(bytes(mutated))
        except LogFormatError:
            continue
        # The digest covers every byte, so a clean parse is impossible
        # for a genuine mutation.
        assert parsed.entries == log.entries, position
        pytest.fail(f"mutation at byte {position} went undetected")


@settings(max_examples=25, deadline=None)
@given(event_logs(), st.integers(min_value=1, max_value=255))
def test_single_byte_mutation_never_crashes_v1(log, delta):
    # v1 has no integrity framing, so some mutations legitimately parse
    # (to a different log) — but none may escape as struct.error,
    # IndexError, MemoryError, ...
    data = log.to_bytes(version=1)
    for position in range(len(data)):
        mutated = bytearray(data)
        mutated[position] ^= delta
        try:
            EventLog.from_bytes(bytes(mutated))
        except LogFormatError:
            pass


def test_mutation_error_carries_location():
    log = EventLog()
    log.record_packet(10, b"abcdef")
    log.record_time(20, 42)
    data = bytearray(log.to_bytes())
    # Damage the second entry's body (offset: header + first record).
    first_record = 13 + 6 + 4
    data[10 + first_record + 14] ^= 0xFF
    with pytest.raises(LogFormatError) as excinfo:
        EventLog.from_bytes(bytes(data))
    assert excinfo.value.entry_index == 1
    assert excinfo.value.byte_offset == 10 + first_record
    assert "entry 1" in str(excinfo.value)


def test_crafted_non_monotonic_log_rejected():
    log = EventLog()
    log.record_packet(100, b"a")
    log.record_packet(200, b"b")
    raw = bytearray(log.to_bytes(version=1))
    # Rewrite the second entry's instruction count to 50 (< 100).
    second_head = 10 + 13 + 1
    raw[second_head + 1:second_head + 9] = (50).to_bytes(8, "little")
    with pytest.raises(LogFormatError) as excinfo:
        EventLog.from_bytes(bytes(raw))
    assert "non-monotonic" in str(excinfo.value)
    assert excinfo.value.entry_index == 1


def test_crafted_negative_length_rejected():
    log = EventLog()
    log.record_packet(100, b"abc")
    raw = bytearray(log.to_bytes(version=1))
    # Rewrite the entry's declared length to -1.
    raw[10 + 9:10 + 13] = (0xFFFFFFFF).to_bytes(4, "little")
    with pytest.raises(LogFormatError) as excinfo:
        EventLog.from_bytes(bytes(raw))
    assert "negative declared entry length" in str(excinfo.value)
    assert excinfo.value.entry_index == 0
    assert excinfo.value.byte_offset == 10


def test_parse_prefix_reports_partial_state():
    log = EventLog()
    for i in range(6):
        log.record_packet(100 * i, bytes([i]) * 8)
    data = log.to_bytes()
    parse = EventLog.parse_prefix(data[:len(data) // 2])
    assert parse.error is not None
    assert not parse.complete
    assert 0 < parse.intact_entries < 6
    assert parse.log.entries == log.entries[:parse.intact_entries]
    assert 0.0 < parse.intact_fraction < 1.0

    clean = EventLog.parse_prefix(data)
    assert clean.complete
    assert clean.intact_entries == 6
    assert clean.digest_ok is True

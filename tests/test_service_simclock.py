"""Discrete-event clock and virtual worker pool."""

import pytest

from repro.service import ServiceError, SimClock, WorkerPool


class TestSimClock:
    def test_pop_orders_by_time_then_sequence(self):
        clock = SimClock()
        clock.schedule(5.0, "b")
        clock.schedule(1.0, "a")
        clock.schedule(5.0, "c")       # same time as "b", scheduled later
        kinds = [clock.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_pop_advances_now(self):
        clock = SimClock()
        clock.schedule(3.5, "x")
        assert clock.now_ms == 0.0
        event = clock.pop()
        assert event.time_ms == 3.5
        assert clock.now_ms == 3.5

    def test_scheduling_in_the_past_raises(self):
        clock = SimClock()
        clock.schedule(10.0, "x")
        clock.pop()
        with pytest.raises(ServiceError):
            clock.schedule(9.0, "late")

    def test_advance_to_never_goes_backward(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now_ms == 7.0
        with pytest.raises(ServiceError):
            clock.advance_to(2.0)
        assert clock.now_ms == 7.0

    def test_len_and_bool_reflect_pending_events(self):
        clock = SimClock()
        assert not clock and len(clock) == 0
        clock.schedule(1.0, "x")
        assert clock and len(clock) == 1


class TestWorkerPool:
    def test_assign_picks_earliest_free_lowest_index(self):
        pool = WorkerPool(2)
        w0, start0, end0 = pool.assign(0.0, 10.0)
        w1, start1, end1 = pool.assign(0.0, 10.0)
        assert (w0, start0, end0) == (0, 0.0, 10.0)
        assert (w1, start1, end1) == (1, 0.0, 10.0)
        # Both busy until 10.0 — the next job waits on worker 0.
        w2, start2, end2 = pool.assign(2.0, 5.0)
        assert (w2, start2, end2) == (0, 10.0, 15.0)

    def test_assign_starts_at_ready_time_when_idle(self):
        pool = WorkerPool(1)
        worker, start, end = pool.assign(4.0, 3.0)
        assert (worker, start, end) == (0, 4.0, 7.0)

    def test_utilization_is_busy_share_of_horizon(self):
        pool = WorkerPool(2)
        pool.assign(0.0, 10.0)
        assert pool.utilization(100.0) == pytest.approx(0.05)
        assert pool.utilization(0.0) == 0.0

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ServiceError):
            WorkerPool(0)

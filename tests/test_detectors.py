"""Tests for the detectors and the Fig 8 detector/channel orderings."""

import pytest

from repro.analysis.experiment import (NfsTrafficModel,
                                       generate_covert_traces,
                                       generate_legit_traces,
                                       run_detector_matrix)
from repro.channels import Ipctc, Mbctc, NeedleChannel, Trctc
from repro.detectors import (CceDetector, KsDetector, RegularityDetector,
                             ShapeDetector, all_statistical_detectors,
                             evaluate_detector, roc_from_scores)
from repro.detectors.regularity import regularity_statistic
from repro.determinism import SplitMix64
from repro.errors import DetectorError


@pytest.fixture(scope="module")
def traffic():
    model = NfsTrafficModel()
    root = SplitMix64(99)
    training = generate_legit_traces(model, 25, 120, root.fork("train"))
    held_out = generate_legit_traces(model, 15, 120, root.fork("held"))
    return model, root, training, held_out


class TestDetectorContract:
    @pytest.mark.parametrize("detector", all_statistical_detectors(),
                             ids=lambda d: d.name)
    def test_score_before_fit_rejected(self, detector):
        with pytest.raises(DetectorError):
            detector.score([1.0, 2.0, 3.0])

    @pytest.mark.parametrize("detector", all_statistical_detectors(),
                             ids=lambda d: d.name)
    def test_empty_training_rejected(self, detector):
        with pytest.raises(DetectorError):
            detector.fit([])

    @pytest.mark.parametrize("detector", all_statistical_detectors(),
                             ids=lambda d: d.name)
    def test_short_trace_rejected(self, detector, traffic):
        _, _, training, _ = traffic
        detector.fit(training)
        with pytest.raises(DetectorError):
            detector.score([1.0])

    @pytest.mark.parametrize("detector", all_statistical_detectors(),
                             ids=lambda d: d.name)
    def test_scoring_is_deterministic(self, detector, traffic):
        _, _, training, held_out = traffic
        detector.fit(training)
        trace = held_out[0]
        assert detector.score(trace) == detector.score(trace)


class TestIndividualDetectors:
    def test_shape_flags_mean_shift(self, traffic):
        _, _, training, held_out = traffic
        detector = ShapeDetector()
        detector.fit(training)
        legit_score = detector.score(held_out[0])
        shifted = [ipd + 5.0 for ipd in held_out[0]]
        assert detector.score(shifted) > legit_score + 1.0

    def test_ks_flags_distribution_change(self, traffic):
        _, _, training, held_out = traffic
        detector = KsDetector()
        detector.fit(training)
        legit_score = detector.score(held_out[0])
        bimodal = [5.0 if i % 2 == 0 else 15.0
                   for i in range(len(held_out[0]))]
        assert detector.score(bimodal) > legit_score + 0.2

    def test_regularity_statistic_properties(self):
        constant_windows = [5.0, 6.0] * 50     # constant window variance
        assert regularity_statistic(constant_windows, 10) < \
            regularity_statistic([float(i % 17) * (i % 5 + 1)
                                  for i in range(100)], 10)

    def test_regularity_flags_constant_variance(self, traffic):
        _, _, training, held_out = traffic
        detector = RegularityDetector()
        detector.fit(training)
        covert_like = [5.0 if i % 2 == 0 else 9.0 for i in range(120)]
        assert detector.score(covert_like) > detector.score(held_out[0])

    def test_cce_flags_repeated_patterns(self, traffic):
        _, _, training, held_out = traffic
        detector = CceDetector()
        detector.fit(training)
        periodic = [4.0, 8.0, 12.0, 16.0] * 30  # strongly periodic
        assert detector.score(periodic) > detector.score(held_out[0])

    def test_ks_training_decimation(self):
        detector = KsDetector(max_training_samples=100)
        detector.fit([[float(i % 50)] * 10 for i in range(100)])
        assert len(detector._training) == 100


class TestRocMachinery:
    def test_evaluate_detector_end_to_end(self, traffic):
        model, root, training, held_out = traffic
        covert = generate_covert_traces(Ipctc(), model, 10, 120,
                                        root.fork("ipctc"))
        roc = evaluate_detector(ShapeDetector(), training, covert, held_out)
        assert roc.auc > 0.95
        assert roc.points[0] == (0.0, 0.0)
        assert roc.points[-1] == (1.0, 1.0)

    def test_roc_from_scores_fields(self):
        roc = roc_from_scores("x", [3.0, 4.0], [1.0, 2.0])
        assert roc.auc == 1.0
        assert roc.tpr_at_fpr(0.0) == 1.0
        assert "AUC=1.000" in roc.format_row()


class TestFig8Orderings:
    """The qualitative results of Fig 8, asserted with safety margins."""

    @pytest.fixture(scope="class")
    def matrix(self):
        channels = [Ipctc(), Trctc(), Mbctc(), NeedleChannel()]
        cells = run_detector_matrix(channels, all_statistical_detectors,
                                    num_training=30, num_test=25,
                                    packets_per_trace=120, seed=2014)
        return {(c.channel, c.detector): c.auc for c in cells}

    def test_ipctc_detected_by_everything(self, matrix):
        """Fig 8a: 'the simplistic IPCTC technique is detected by all
        tests'."""
        for detector in ("shape", "ks", "regularity", "cce"):
            assert matrix[("ipctc", detector)] > 0.95, detector

    def test_trctc_beats_shape_but_not_cce(self, matrix):
        """Fig 8b: 'TRCTC does well against shape tests but is detectable
        by more advanced detection techniques'."""
        assert matrix[("trctc", "shape")] < 0.65
        assert matrix[("trctc", "cce")] > 0.85
        assert matrix[("trctc", "cce")] > matrix[("trctc", "shape")] + 0.25

    def test_mbctc_evades_first_order_tests(self, matrix):
        """Fig 8c: MBCTC mimics the traffic shape; only CCE retains
        substantial power."""
        assert matrix[("mbctc", "shape")] < 0.65
        assert matrix[("mbctc", "ks")] < 0.70
        assert matrix[("mbctc", "cce")] > 0.80
        assert matrix[("mbctc", "cce")] > matrix[("mbctc", "shape")] + 0.2

    def test_needle_evades_all_statistical_tests(self, matrix):
        """Fig 8d: 'all the existing detectors failed to reliably detect
        the channel'."""
        for detector in ("shape", "ks", "regularity", "cce"):
            assert matrix[("needle", detector)] < 0.75, detector

    def test_mimicry_harder_than_slot_channel(self, matrix):
        """Across the board, IPCTC is easier than TRCTC/MBCTC."""
        for detector in ("shape", "ks", "regularity", "cce"):
            assert matrix[("ipctc", detector)] >= \
                matrix[("mbctc", detector)], detector

"""Property tests for the fleet's consistent-hash ring.

The ring is what makes a node death survivable: removing a node must
move *only* that node's tenants (everyone else's owner is stable), and
the assignment must be a pure function of the key and roster strings —
independent of process, interpreter hash seed, or insertion order.
Stdlib ``random`` drives the property sweeps from fixed seeds.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.service.ring import HashRing
from repro.service.simclock import ServiceError


def _tenants(n, rng):
    return [f"tenant-{rng.randrange(10**9):09d}-{i}" for i in range(n)]


class TestRingBasics:
    def test_empty_ring_assigns_none(self):
        assert HashRing().assign("tenant-00") is None

    def test_single_node_owns_everything(self):
        ring = HashRing(["node-00"])
        assert all(ring.assign(f"t{i}") == "node-00" for i in range(50))

    def test_membership(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2 and "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ServiceError):
            ring.add_node("a")

    def test_missing_remove_rejected(self):
        with pytest.raises(ServiceError):
            HashRing(["a"]).remove_node("b")

    def test_insertion_order_irrelevant(self):
        keys = [f"t{i}" for i in range(200)]
        forward = HashRing(["n0", "n1", "n2", "n3"]).assignment(keys)
        backward = HashRing(["n3", "n2", "n1", "n0"]).assignment(keys)
        assert forward == backward


class TestRingProperties:
    """The consistency properties, swept over seeded random rosters."""

    @pytest.mark.parametrize("seed", [1, 7, 2014])
    def test_removal_moves_only_the_removed_nodes_keys(self, seed):
        rng = random.Random(seed)
        nodes = [f"node-{i:02d}" for i in range(rng.randint(3, 8))]
        keys = _tenants(300, rng)
        ring = HashRing(nodes)
        before = ring.assignment(keys)
        victim = rng.choice(nodes)
        ring.remove_node(victim)
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_add_remaps_roughly_k_over_n(self, seed):
        rng = random.Random(seed)
        num_nodes = rng.randint(3, 8)
        nodes = [f"node-{i:02d}" for i in range(num_nodes)]
        keys = _tenants(400, rng)
        ring = HashRing(nodes)
        before = ring.assignment(keys)
        ring.add_node("node-new")
        after = ring.assignment(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        # Expectation is K/(N+1); allow generous vnode variance but pin
        # the property that MOST keys stay put.
        expected = len(keys) / (num_nodes + 1)
        assert moved <= 2.5 * expected
        assert all(after[key] == "node-new"
                   for key in keys if before[key] != after[key])

    def test_add_back_restores_assignment(self):
        keys = [f"tenant-{i:03d}" for i in range(250)]
        ring = HashRing(["n0", "n1", "n2", "n3"])
        before = ring.assignment(keys)
        ring.remove_node("n2")
        ring.add_node("n2")
        assert ring.assignment(keys) == before

    @pytest.mark.parametrize("seed", [5, 23])
    def test_load_is_roughly_balanced(self, seed):
        rng = random.Random(seed)
        nodes = [f"node-{i:02d}" for i in range(4)]
        keys = _tenants(1000, rng)
        counts = {node: 0 for node in nodes}
        for owner in HashRing(nodes).assignment(keys).values():
            counts[owner] += 1
        # 64 vnodes/node keeps the spread well inside 3x of fair share.
        assert max(counts.values()) <= 3 * (len(keys) / len(nodes))
        assert min(counts.values()) > 0


class TestRingCrossProcess:
    """No PYTHONHASHSEED dependence: identical assignment across
    interpreters started with different hash seeds."""

    def _assignment_via_subprocess(self, hash_seed: str) -> str:
        code = (
            "from repro.service.ring import HashRing\n"
            "keys = [f'tenant-{i:03d}' for i in range(64)]\n"
            "ring = HashRing(['n0', 'n1', 'n2'])\n"
            "print(sorted(ring.assignment(keys).items()))\n")
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True,
                             cwd=os.path.dirname(os.path.dirname(
                                 os.path.abspath(__file__))))
        return out.stdout

    def test_assignment_identical_across_hash_seeds(self):
        runs = {self._assignment_via_subprocess(seed)
                for seed in ("0", "1", "12345")}
        assert len(runs) == 1
        (payload,) = runs
        assert "tenant-000" in payload

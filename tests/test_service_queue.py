"""Audit queue: priority classes, tenant budgets, backpressure."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    PRIORITY_ESCALATED,
    PRIORITY_FULL,
    PRIORITY_SPOT,
    AuditJob,
    AuditQueue,
    ServiceError,
)
from repro.service.queue import priority_name


def _job(tenant="t0", priority=PRIORITY_SPOT, ready=0.0, epoch=0,
         deadline=1_000.0):
    kind = priority_name(priority)
    return AuditJob(tenant_id=tenant, epoch=epoch, kind=kind,
                    priority=priority, ready_ms=ready, deadline_ms=deadline,
                    budget_instructions=1_000)


def _queue(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return AuditQueue(**kwargs)


def test_escalations_preempt_fulls_preempt_spots():
    queue = _queue()
    queue.push(_job(priority=PRIORITY_SPOT, ready=0.0))
    queue.push(_job(priority=PRIORITY_FULL, ready=5.0))
    queue.push(_job(priority=PRIORITY_ESCALATED, ready=9.0))
    kinds = [job.kind for job in queue.drain()]
    assert kinds == ["escalated", "full", "spot"]


def test_fifo_within_a_class_on_ready_time_ties():
    queue = _queue()
    first = _job(tenant="a", ready=3.0)
    second = _job(tenant="b", ready=3.0)
    queue.push(first)
    queue.push(second)
    assert [job.tenant_id for job in queue.drain()] == ["a", "b"]


def test_tenant_budget_refuses_excess_spot_checks():
    queue = _queue(tenant_budget=2)
    assert queue.push(_job(tenant="noisy"))
    assert queue.push(_job(tenant="noisy"))
    assert not queue.push(_job(tenant="noisy"))
    assert queue.push(_job(tenant="quiet"))           # others unaffected
    assert queue.stats.refused == 1


def test_escalations_are_exempt_from_tenant_budgets():
    queue = _queue(tenant_budget=1)
    queue.push(_job(tenant="t0"))
    assert queue.push(_job(tenant="t0", priority=PRIORITY_ESCALATED))
    assert queue.stats.refused == 0


def test_backpressure_evicts_the_freshest_spot_check():
    queue = _queue(max_depth=3)
    old = _job(tenant="a", ready=0.0)
    mid = _job(tenant="b", ready=1.0)
    fresh = _job(tenant="c", ready=2.0)
    for job in (old, mid, fresh):
        assert queue.push(job)
    assert queue.push(_job(tenant="urgent", priority=PRIORITY_ESCALATED))
    tenants = [job.tenant_id for job in queue.drain()]
    assert tenants == ["urgent", "a", "b"]            # "c" was shed
    assert queue.stats.shed == 1
    assert queue.stats.shed_by_tenant == {"c": 1}


def test_spot_check_is_shed_when_the_queue_is_full():
    queue = _queue(max_depth=2)
    queue.push(_job(tenant="a", priority=PRIORITY_FULL))
    queue.push(_job(tenant="b", priority=PRIORITY_FULL))
    assert not queue.push(_job(tenant="c"))
    assert queue.stats.shed == 1
    assert len(queue) == 2


def test_higher_class_with_no_spot_victim_is_shed():
    queue = _queue(max_depth=2)
    queue.push(_job(tenant="a", priority=PRIORITY_ESCALATED))
    queue.push(_job(tenant="b", priority=PRIORITY_ESCALATED))
    assert not queue.push(_job(tenant="c", priority=PRIORITY_FULL))
    assert queue.stats.shed == 1


def test_stats_track_depth_and_throughput():
    queue = _queue()
    for i in range(4):
        queue.push(_job(tenant=f"t{i}"))
    assert queue.stats.peak_depth == 4
    queue.pop()
    assert queue.depth_for("t0") == 0 and len(queue) == 3
    assert queue.stats.pushed == 4 and queue.stats.popped == 1


def test_pop_from_empty_queue_raises():
    with pytest.raises(ServiceError):
        _queue().pop()


def test_job_latency_and_deadline_accounting():
    job = _job(ready=10.0, deadline=50.0)
    job.start_ms, job.completion_ms = 30.0, 60.0
    assert job.queue_latency_ms == 20.0
    assert job.missed_deadline
    job.completion_ms = 45.0
    assert not job.missed_deadline

"""Export-format correctness: Prometheus exposition, Chrome traces, and
byte-identical NDJSON round trips for the tracer and flight recorder.

These parse the exported artifacts instead of string-matching fragments:
a consumer (Prometheus scraper, ``chrome://tracing``, ``jq``) sees the
same bytes these tests see.
"""

from __future__ import annotations

import json
import math

from repro.obs.flight import (DivergenceRecord, capture_divergence,
                              flights_from_ndjson, flights_to_ndjson)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.tools.reproduce import main


def _parse_exposition(text: str):
    """Parse a Prometheus text exposition into
    ``{metric: {"help": str, "type": str, "samples": [(name, labels, value)]}}``.
    """
    metrics: dict[str, dict] = {}

    def entry(name: str) -> dict:
        return metrics.setdefault(name, {"help": None, "type": None,
                                         "samples": []})

    for line in text.splitlines():
        assert line == line.strip() and line, f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            entry(name)["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), kind
            entry(name)["type"] = kind
        else:
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            sample, value = line.rsplit(" ", 1)
            labels = {}
            if "{" in sample:
                sample, _, label_part = sample.partition("{")
                for pair in label_part.rstrip("}").split(","):
                    key, _, raw = pair.partition("=")
                    labels[key] = raw.strip('"')
            base = sample
            for suffix in ("_bucket", "_sum", "_count"):
                if sample.endswith(suffix):
                    base = sample[:-len(suffix)]
                    break
            entry(base)["samples"].append((sample, labels, float(value)))
    return metrics


class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("tdr_runs_total", "Machine executions").inc(3)
        registry.gauge("tdr_cache_entries", "Cache size").set(7)
        hist = registry.histogram("tdr_run_cycles", "Cycles per run",
                                  buckets=(10.0, 100.0, 1000.0))
        for value in (5, 50, 500, 5000):
            hist.observe(value)
        return registry

    def test_every_metric_has_wellformed_help_and_type(self):
        metrics = _parse_exposition(self._registry().render())
        assert set(metrics) == {"tdr_runs_total", "tdr_cache_entries",
                                "tdr_run_cycles"}
        for name, data in metrics.items():
            assert data["help"], name
            assert data["type"], name
            assert data["samples"], name

    def test_counter_and_gauge_values(self):
        metrics = _parse_exposition(self._registry().render())
        assert metrics["tdr_runs_total"]["type"] == "counter"
        assert metrics["tdr_runs_total"]["samples"] == [
            ("tdr_runs_total", {}, 3.0)]
        assert metrics["tdr_cache_entries"]["samples"] == [
            ("tdr_cache_entries", {}, 7.0)]

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        metrics = _parse_exposition(self._registry().render())
        hist = metrics["tdr_run_cycles"]
        assert hist["type"] == "histogram"
        buckets = [(labels["le"], value) for sample, labels, value
                   in hist["samples"] if sample.endswith("_bucket")]
        bounds = [float(le) for le, _ in buckets]
        counts = [count for _, count in buckets]
        # le bounds ascend and end at +Inf.
        assert bounds == sorted(bounds)
        assert math.isinf(bounds[-1])
        # Cumulative counts are monotone non-decreasing.
        assert counts == sorted(counts)
        # The +Inf bucket equals the observation count, which equals the
        # _count sample.
        count_sample = [v for s, _, v in hist["samples"]
                        if s.endswith("_count")]
        assert counts[-1] == count_sample[0] == 4.0
        sum_sample = [v for s, _, v in hist["samples"]
                      if s.endswith("_sum")]
        assert sum_sample[0] == 5 + 50 + 500 + 5000

    def test_merged_snapshot_renders_identical_exposition(self):
        registry = self._registry()
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(registry.snapshot())
        assert rebuilt.render() == registry.render()


class TestChromeTraceSchema:
    def test_trace_experiment_emits_valid_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--requests", "3",
                     "--trace-out", str(out_file)]) == 0
        capsys.readouterr()
        trace = json.loads(out_file.read_text())    # strict JSON
        events = trace["traceEvents"]
        assert events
        tracks: dict[int, list[float]] = {}
        for event in events:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in event, (key, event)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            tracks.setdefault(event["tid"], []).append(float(event["ts"]))
        # Timestamps are monotone non-decreasing within each track: each
        # track is one machine run whose virtual clock only advances.
        for tid, stamps in tracks.items():
            assert stamps == sorted(stamps), f"tid {tid} not monotone"
        # Track names come from "M" metadata events.
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(names) == len(set(names)) == len(tracks)


class TestNdjsonRoundTrips:
    def _tracer(self) -> SpanTracer:
        clock = iter(range(0, 10_000, 250))
        tracer = SpanTracer()
        tracer.bind(lambda: float(next(clock)), track="play:test")
        with tracer.span("machine.run", mode="play"):
            with tracer.span("vm.execute"):
                tracer.instant("net.send", bytes=64)
        tracer.bind(lambda: float(next(clock)), track="replay:test")
        with tracer.span("machine.run", mode="replay"):
            tracer.instant("net.send", bytes=64)
        return tracer

    def test_tracer_ndjson_reexports_byte_identical(self):
        exported = self._tracer().to_ndjson()
        revived = SpanTracer.from_ndjson(exported)
        assert revived.to_ndjson() == exported
        assert len(revived) == len(exported.splitlines())
        assert revived._tracks == {"play:test": 1, "replay:test": 2}

    def test_tracer_chrome_export_survives_round_trip(self):
        tracer = self._tracer()
        revived = SpanTracer.from_ndjson(tracer.to_ndjson())
        assert revived.to_chrome_trace() == tracer.to_chrome_trace()

    def test_empty_tracer_round_trips(self):
        assert SpanTracer.from_ndjson("").to_ndjson() == ""

    def test_flight_ndjson_reexports_byte_identical(self):
        records = [
            DivergenceRecord(reason="payload mismatch",
                             play_tail=[(5, "aa"), (9, "bb")],
                             replay_tail=[(5, "aa"), (9, "cc")],
                             source_deltas={"covert.delay": 64,
                                            "net.jitter": -3},
                             first_payload_mismatch=1,
                             play_cycles=500, replay_cycles=436),
            DivergenceRecord(reason="truncated"),
        ]
        exported = flights_to_ndjson(records)
        revived = flights_from_ndjson(exported)
        assert revived == records
        assert flights_to_ndjson(revived) == exported
        assert flights_to_ndjson([]) == ""
        assert flights_from_ndjson("") == []

    def test_captured_divergence_round_trips_through_json(self):
        class Result:
            def __init__(self, tx, ledger, cycles):
                self.tx, self.ledger, self.total_cycles = tx, ledger, cycles

        play = Result([(10, b"abc"), (20, b"xyz1234567890")],
                      {"cpu.exec": 900, "covert.delay": 100}, 1000)
        replay = Result([(10, b"abc"), (20, b"different0123")],
                        {"cpu.exec": 900}, 900)
        record = capture_divergence(play, replay)
        assert record.first_payload_mismatch == 1
        assert record.source_deltas == {"covert.delay": 100}
        revived = flights_from_ndjson(flights_to_ndjson([record]))[0]
        assert revived == record

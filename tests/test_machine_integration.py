"""Integration tests: guest programs on the full simulated machine,
play/replay round trips, and the determinism invariants of TDR."""

import pytest

from repro.core.audit import compare_traces
from repro.core.log import EventKind, EventLog
from repro.core.tdr import play, replay, replay_naive, round_trip
from repro.determinism import SplitMix64
from repro.errors import HardwareConfigError, ReplayError
from repro.lang import compile_minij
from repro.machine import (InteractiveClient, Machine, MachineConfig,
                           Request, ScriptedArrivals, machine_type)
from repro.machine.natives import (MACHINE_NATIVE_SIGNATURES,
                                   MACHINE_REGISTRY)

ECHO_SERVER = """
void main() {
    int[] buf = new int[256];
    while (true) {
        int n = wait_packet(buf);
        if (n < 0) { break; }
        if (n == 1 && buf[0] == 255) { break; }
        int total = 0;
        for (int i = 0; i < n; i = i + 1) { total = total + buf[i]; }
        buf[0] = total % 256;
        buf[1] = n;
        send_packet(buf, 8);
    }
    exit();
}
"""

COMPUTE_ONLY = """
void main() {
    int total = 0;
    for (int i = 0; i < 3000; i = i + 1) {
        total = total + i * i;
    }
    print_int(total);
    exit();
}
"""


def compile_guest(source):
    return compile_minij(source, natives=MACHINE_REGISTRY,
                         native_signatures=MACHINE_NATIVE_SIGNATURES)


def echo_workload(seed=99, n=8):
    requests = [Request(bytes([(i * 13) % 200 + 1] * 24)) for i in range(n)]
    return InteractiveClient(requests, SplitMix64(seed),
                             shutdown_payload=bytes([255]))


@pytest.fixture(scope="module")
def echo_program():
    return compile_guest(ECHO_SERVER)


@pytest.fixture(scope="module")
def compute_program():
    return compile_guest(COMPUTE_ONLY)


class TestPlayBasics:
    def test_server_answers_every_request(self, echo_program):
        result = play(echo_program, MachineConfig(),
                      workload=echo_workload(n=6), seed=0)
        assert len(result.tx) == 6
        assert result.mode == "play"
        assert result.log is not None
        # One packet entry per request plus the shutdown packet.
        packet_entries = [e for e in result.log
                          if e.kind == EventKind.PACKET]
        assert len(packet_entries) == 7

    def test_response_payloads_are_input_dependent(self, echo_program):
        result = play(echo_program, MachineConfig(),
                      workload=echo_workload(n=4), seed=0)
        firsts = [payload[0] for _, payload in result.tx]
        assert len(set(firsts)) > 1

    def test_simulator_determinism_same_seed(self, echo_program):
        """Same program + same seed => bit-identical everything."""
        a = play(echo_program, MachineConfig(), workload=echo_workload(),
                 seed=5)
        b = play(echo_program, MachineConfig(), workload=echo_workload(),
                 seed=5)
        assert a.tx == b.tx
        assert a.total_cycles == b.total_cycles
        assert a.instructions == b.instructions
        assert a.log.to_bytes() == b.log.to_bytes()

    def test_different_noise_seed_same_function(self, echo_program):
        """Noise changes timing, never outputs."""
        a = play(echo_program, MachineConfig(), workload=echo_workload(),
                 seed=1)
        b = play(echo_program, MachineConfig(), workload=echo_workload(),
                 seed=2)
        assert [p for _, p in a.tx] == [p for _, p in b.tx]

    def test_play_determinism_over_arbitrary_seeds(self, echo_program):
        """Property: for any noise seed, two plays of the same workload
        are bit-identical (hypothesis-driven)."""
        from hypothesis import given, settings, strategies as st

        @given(seed=st.integers(min_value=0, max_value=2 ** 32))
        @settings(max_examples=8, deadline=None)
        def check(seed):
            a = play(echo_program, MachineConfig(),
                     workload=echo_workload(n=2), seed=seed)
            b = play(echo_program, MachineConfig(),
                     workload=echo_workload(n=2), seed=seed)
            assert a.total_cycles == b.total_cycles
            assert a.tx == b.tx
            assert a.log.to_bytes() == b.log.to_bytes()

        check()

    def test_compute_only_program(self, compute_program):
        result = play(compute_program, MachineConfig(), seed=0)
        assert result.console == [sum(i * i for i in range(3000))]
        assert result.total_cycles > 0
        assert result.stats["l1_hits"] > 0


class TestTdrReplay:
    def test_round_trip_functional_identity(self, echo_program):
        outcome = round_trip(echo_program, MachineConfig(),
                             workload=echo_workload(), play_seed=0,
                             replay_seed=11)
        assert outcome.audit.payloads_match
        assert outcome.audit.num_packets == len(outcome.play.tx)
        assert outcome.play.instructions == outcome.replay.instructions

    def test_replay_timing_accuracy(self, echo_program):
        """The headline TDR property: replay timing ~= play timing."""
        outcome = round_trip(echo_program, MachineConfig(),
                             workload=echo_workload(), play_seed=0,
                             replay_seed=11)
        assert outcome.audit.total_time_error < 0.0185
        assert outcome.audit.max_rel_ipd_diff < 0.0185

    def test_replay_identical_with_same_seed(self, echo_program):
        """Replay with the play seed is cycle-exact: all remaining
        variation comes from the (reseeded) noise sources."""
        result = play(echo_program, MachineConfig(),
                      workload=echo_workload(), seed=3)
        rep = replay(echo_program, result.log, MachineConfig(), seed=3)
        assert rep.total_cycles == result.total_cycles
        assert rep.tx == result.tx

    def test_replay_requires_log(self):
        with pytest.raises(ReplayError):
            Machine(MachineConfig(), mode="replay")

    def test_replay_rejects_workload(self, echo_program):
        log = EventLog()
        with pytest.raises(ReplayError):
            Machine(MachineConfig(), mode="replay", log=log,
                    workload=echo_workload())

    def test_unknown_mode_rejected(self):
        with pytest.raises(HardwareConfigError):
            Machine(MachineConfig(), mode="rewind")

    def test_machine_is_single_shot(self, compute_program):
        machine = Machine(MachineConfig(), seed=0)
        machine.run(compute_program)
        with pytest.raises(HardwareConfigError):
            machine.run(compute_program)


class TestNaiveReplay:
    def test_naive_replay_is_functionally_correct(self, echo_program):
        result = play(echo_program, MachineConfig(),
                      workload=echo_workload(), seed=0)
        naive = replay_naive(echo_program, result.log, MachineConfig(),
                             seed=11)
        assert [p for _, p in naive.tx] == [p for _, p in result.tx]

    def test_naive_replay_timing_diverges(self, echo_program):
        """Fig 3: a functional replayer does NOT reproduce timing."""
        result = play(echo_program, MachineConfig(),
                      workload=echo_workload(), seed=0)
        tdr = replay(echo_program, result.log, MachineConfig(), seed=11)
        naive = replay_naive(echo_program, result.log, MachineConfig(),
                             seed=11)
        tdr_error = abs(tdr.total_ns - result.total_ns) / result.total_ns
        naive_error = abs(naive.total_ns - result.total_ns) / result.total_ns
        assert naive_error > 10 * tdr_error
        # Wait-skipping makes the naive replay drastically shorter.
        assert naive.total_ns < 0.5 * result.total_ns


class TestCovertDelayPrimitive:
    COVERT_SERVER = ECHO_SERVER.replace(
        "send_packet(buf, 8);",
        "covert_delay(3000000);\n        send_packet(buf, 8);")

    def test_covert_delay_disabled_is_noop(self):
        program = compile_guest(self.COVERT_SERVER)
        clean = play(program, MachineConfig(), workload=echo_workload(),
                     seed=0, covert_enabled=False)
        base = play(compile_guest(ECHO_SERVER), MachineConfig(),
                    workload=echo_workload(), seed=0)
        # Same instruction counts: the primitive is outside the counted
        # instruction stream except for its own NATIVE dispatch.
        assert len(clean.tx) == len(base.tx)

    def test_covert_delay_shifts_timing_but_not_content(self):
        program = compile_guest(self.COVERT_SERVER)
        covert = play(program, MachineConfig(), workload=echo_workload(),
                      seed=0, covert_enabled=True)
        clean = play(program, MachineConfig(), workload=echo_workload(),
                     seed=0, covert_enabled=False)
        assert [p for _, p in covert.tx] == [p for _, p in clean.tx]
        assert covert.total_cycles > clean.total_cycles

    def test_audit_detects_covert_delays(self):
        """§5.3 end to end: replay with the channel disabled exposes it."""
        program = compile_guest(self.COVERT_SERVER)
        covert = play(program, MachineConfig(), workload=echo_workload(),
                      seed=0, covert_enabled=True)
        reference = replay(program, covert.log, MachineConfig(), seed=11)
        report = compare_traces(covert, reference)
        assert report.payloads_match       # content is perfectly innocent
        assert not report.is_consistent()  # timing gives the channel away
        assert report.deviation_score() > 0.5  # ~0.88 ms per delayed packet


class TestMachineTypes:
    def test_wrong_machine_type_detected(self, echo_program):
        """The Alice/Bob scenario: replay on type T' != T mismatches."""
        result = play(echo_program, machine_type("fast"),
                      workload=echo_workload(), seed=0)
        same = replay(echo_program, result.log, machine_type("fast"),
                      seed=11)
        wrong = replay(echo_program, result.log, machine_type("slow"),
                       seed=11)
        report_same = compare_traces(result, same)
        report_wrong = compare_traces(result, wrong)
        assert report_same.is_consistent()
        assert not report_wrong.is_consistent()

    def test_machine_type_lookup(self):
        assert machine_type("fast").frequency_hz > \
            machine_type("slow").frequency_hz
        with pytest.raises(HardwareConfigError):
            machine_type("quantum")


class TestScriptedArrivals:
    def test_scripted_arrivals_delivered_in_order(self):
        source = """
        void main() {
            int[] buf = new int[64];
            for (int i = 0; i < 3; i = i + 1) {
                int n = wait_packet(buf);
                print_int(buf[0]);
            }
            exit();
        }
        """
        program = compile_guest(source)
        workload = ScriptedArrivals([
            (3_000_000, bytes([7])),
            (1_000_000, bytes([5])),
            (9_000_000, bytes([9])),
        ])
        result = play(program, MachineConfig(), workload=workload, seed=0)
        assert result.console == [5, 7, 9]

    def test_nonblocking_recv_returns_minus_one(self):
        source = """
        void main() {
            int[] buf = new int[64];
            print_int(recv_packet(buf));
            exit();
        }
        """
        result = play(compile_guest(source), MachineConfig(), seed=0)
        assert result.console == [-1]


class TestStorageNative:
    STORAGE_READER = """
    void main() {
        int[] buf = new int[64];
        int n = storage_read(5, buf);
        print_int(n);
        print_int(buf[0]);
        print_int(buf[63]);
        exit();
    }
    """

    def test_storage_contents_deterministic(self):
        program = compile_guest(self.STORAGE_READER)
        a = play(program, MachineConfig(), seed=0)
        b = play(program, MachineConfig(), seed=77)
        assert a.console == b.console
        assert a.console[0] == 64

    def test_padded_storage_time_deterministic(self):
        program = compile_guest(self.STORAGE_READER)
        # Zero the residual CPU noise so padding is the only variable.
        config = MachineConfig(speculation_sigma=0.0)
        a = play(program, config, seed=0)
        b = play(program, config, seed=1)
        # Same cycles despite different storage noise seeds: padding.
        assert a.total_cycles == b.total_cycles

    def test_unpadded_hdd_varies(self):
        from repro.machine.config import StorageKind

        program = compile_guest(self.STORAGE_READER)
        config = MachineConfig(pad_storage=False,
                               storage=StorageKind.HDD)
        a = play(program, config, seed=0)
        b = play(program, config, seed=1)
        assert a.total_cycles != b.total_cycles


class TestThreadsOnMachine:
    def test_spawned_threads_run(self):
        source = """
        global int total;
        void worker(int amount) {
            total = total + amount;
        }
        void main() {
            spawn(worker, 30);
            spawn(worker, 12);
            int spin = 0;
            while (spin < 20000) { spin = spin + 1; }
            print_int(total);
            exit();
        }
        """
        result = play(compile_guest(source), MachineConfig(), seed=0)
        assert result.console == [42]

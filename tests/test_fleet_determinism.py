"""Determinism of the sharded fleet under chaos.

The tentpole invariant: a fleet run is a pure function of (seed, roster,
policy, topology, chaos plan).  Killing node N at tick T yields
bit-identical verdict sets, rebalance events, and ledger sums across
reruns and across ``jobs=1`` vs ``jobs=4`` — the process pool moves
wall-clock only, never an outcome.
"""

import json

import pytest

from repro.faults.plans import NodeChaosPlan
from repro.obs.metrics import MetricsRegistry
from repro.service import FleetService, FleetTopology, default_tenants

CHAOS = NodeChaosPlan.parse("crash:1@180,stall:2@90+500")


def _run(jobs=None, seed=7, chaos=CHAOS, nodes=4):
    service = FleetService(
        default_tenants(3, requests=4),
        topology=FleetTopology(num_nodes=nodes),
        epochs=2, seed=seed, chaos=chaos, registry=MetricsRegistry())
    return service.run(jobs=jobs)


def _canonical(report) -> str:
    return json.dumps(report.verdicts_dict(), sort_keys=True)


class TestFleetDeterminism:
    def test_rerun_is_bit_identical_under_chaos(self):
        assert _canonical(_run()) == _canonical(_run())

    def test_jobs_one_vs_four_identical(self):
        assert _canonical(_run(jobs=1)) == _canonical(_run(jobs=4))

    def test_rebalance_events_identical_across_jobs(self):
        serial, parallel = _run(jobs=1), _run(jobs=4)
        assert serial.rebalances == parallel.rebalances
        assert serial.requeued == parallel.requeued
        assert serial.killed_in_flight == parallel.killed_in_flight

    def test_ledger_sums_identical_across_jobs(self):
        serial, parallel = _run(jobs=1), _run(jobs=4)
        for tid, ledger in serial.ledgers.items():
            other = parallel.ledgers[tid]
            assert ledger.audits == other.audits
            assert ledger.spot_checks == other.spot_checks
            assert ledger.escalations == other.escalations
            assert ledger.final_status == other.final_status

    def test_seeded_chaos_plan_is_reproducible(self):
        plan_a = NodeChaosPlan.seeded(11, num_nodes=4, horizon_ms=800.0)
        plan_b = NodeChaosPlan.seeded(11, num_nodes=4, horizon_ms=800.0)
        assert plan_a.spec == plan_b.spec
        assert _canonical(_run(chaos=plan_a)) == _canonical(
            _run(chaos=plan_b))

    def test_seed_changes_timeline_not_robustness(self):
        for seed in (7, 8):
            report = _run(seed=seed)
            assert report.flagged_tenants == ["tenant-01"]
            verdicted = report.sessions_verdicted
            assert verdicted + len(report.unaudited) == \
                report.sessions_total

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_verdicts_stable_across_fleet_sizes(self, nodes):
        # Node count is capacity, not policy: the flag set must not
        # depend on how many shards the fleet runs (no chaos here —
        # capacity loss legitimately changes coverage).
        report = _run(chaos=None, nodes=nodes)
        assert report.flagged_tenants == ["tenant-01"]
        assert not report.unaudited

"""Tests for the guest applications (SciMark kernels, NFS server,
microbench) and their integration with TDR."""

import pytest

from repro.apps import (build_kernel_program, build_nfs_program,
                        build_nfs_workload, compile_app, kernel_source,
                        zero_array_source)
from repro.apps.nfs import (NFS_SHUTDOWN, OP_READ, RESPONSE_PAYLOAD_BYTES,
                            chunks_for_file)
from repro.core.audit import compare_traces
from repro.core.tdr import play, replay, round_trip
from repro.determinism import SplitMix64
from repro.errors import ReproError
from repro.machine import MachineConfig
from repro.machine.config import RuntimeKind
from repro.machine.noise import scenario_config

KERNELS = ("fft", "sor", "mc", "smm", "lu")


class TestSciMarkKernels:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_runs_and_prints_checksum(self, name):
        result = play(build_kernel_program(name), MachineConfig(), seed=0)
        assert len(result.console) == 1
        assert result.total_cycles > 0

    @pytest.mark.parametrize("name", KERNELS)
    def test_checksum_independent_of_noise_seed(self, name):
        program = build_kernel_program(name)
        a = play(program, MachineConfig(), seed=0)
        b = play(program, scenario_config("dirty"), seed=99)
        assert a.console == b.console

    def test_mc_estimates_pi(self):
        result = play(build_kernel_program("mc"), MachineConfig(), seed=0)
        # 4 * inside/samples, scaled by 1000: expect ~3141 +- sampling.
        assert 2900 < result.console[0] < 3400

    def test_fft_parameter_validation(self):
        with pytest.raises(ReproError):
            kernel_source("fft", n=48, iterations=1)
        with pytest.raises(ReproError):
            kernel_source("warp")

    def test_kernel_sizes_parameterizable(self):
        small = build_kernel_program("sor", n=8, iterations=2)
        large = build_kernel_program("sor", n=16, iterations=2)
        time_small = play(small, MachineConfig(), seed=0).total_cycles
        time_large = play(large, MachineConfig(), seed=0).total_cycles
        assert time_large > 2 * time_small

    def test_jit_runtime_is_faster(self):
        program = build_kernel_program("lu")
        interpreter = play(program, MachineConfig(), seed=0)
        jit = play(program,
                   MachineConfig(runtime=RuntimeKind.ORACLE_JIT), seed=0)
        assert jit.total_cycles < 0.4 * interpreter.total_cycles
        assert jit.console == interpreter.console


class TestMicrobench:
    def test_zero_array(self):
        program = compile_app(zero_array_source(elements=2048))
        result = play(program, MachineConfig(), seed=0)
        assert result.console == [2048]

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_array_source(elements=0)
        with pytest.raises(ValueError):
            zero_array_source(passes=0)

    def test_larger_array_costs_more(self):
        small = play(compile_app(zero_array_source(1024)),
                     MachineConfig(), seed=0).total_cycles
        large = play(compile_app(zero_array_source(8192)),
                     MachineConfig(), seed=0).total_cycles
        assert large > 3 * small


class TestNfsServer:
    @pytest.fixture(scope="class")
    def program(self):
        return build_nfs_program()

    def test_serves_all_requests(self, program):
        workload = build_nfs_workload(SplitMix64(1), num_requests=15)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        assert len(result.tx) == 15
        assert result.console == [15]  # requests_served

    def test_response_format(self, program):
        workload = build_nfs_workload(SplitMix64(2), num_requests=5)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        for _, payload in result.tx:
            assert len(payload) == 3 + RESPONSE_PAYLOAD_BYTES
            file_id, chunk_index = payload[0], payload[1]
            assert 1 <= file_id <= 30
            assert 0 <= chunk_index < chunks_for_file(file_id)

    def test_responses_deterministic_content(self, program):
        workload_a = build_nfs_workload(SplitMix64(3), num_requests=10)
        workload_b = build_nfs_workload(SplitMix64(3), num_requests=10)
        a = play(program, MachineConfig(), workload=workload_a, seed=0)
        b = play(program, MachineConfig(), workload=workload_b, seed=42)
        assert [p for _, p in a.tx] == [p for _, p in b.tx]

    def test_service_time_grows_with_file_size(self, program):
        def ipd_for_file(file_id):
            from repro.machine.workload import InteractiveClient, Request

            requests = [Request(bytes([OP_READ, file_id, 0]))
                        for _ in range(6)]
            workload = InteractiveClient(
                requests, SplitMix64(9), shutdown_payload=NFS_SHUTDOWN)
            result = play(program, MachineConfig(), workload=workload,
                          seed=0)
            ipds = result.ipds_ms()
            return sum(ipds) / len(ipds)

        assert ipd_for_file(30) > ipd_for_file(1) + 5.0

    def test_tdr_round_trip(self, program):
        workload = build_nfs_workload(SplitMix64(4), num_requests=20)
        outcome = round_trip(program, MachineConfig(), workload=workload,
                             play_seed=0, replay_seed=77)
        assert outcome.audit.payloads_match
        assert outcome.audit.max_rel_ipd_diff < 0.0185
        assert outcome.audit.is_consistent()

    def test_covert_schedule_detected_by_audit(self, program):
        workload = build_nfs_workload(SplitMix64(5), num_requests=20)
        # 2 ms extra delay on packets 5 and 12 (cycles at 3.4 GHz).
        schedule = [0] * 20
        schedule[5] = schedule[12] = 6_800_000
        covert = play(program, MachineConfig(), workload=workload, seed=0,
                      covert_schedule=schedule)
        reference = replay(program, covert.log, MachineConfig(), seed=77)
        report = compare_traces(covert, reference)
        assert report.payloads_match
        assert not report.is_consistent()
        assert report.deviation_score() > 1.0  # ~2 ms needles stand out

    def test_chunks_for_file(self):
        assert chunks_for_file(1) == 1
        assert chunks_for_file(4) == 1
        assert chunks_for_file(5) == 2
        assert chunks_for_file(30) == 8
        with pytest.raises(ValueError):
            chunks_for_file(0)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            build_nfs_workload(SplitMix64(1), num_requests=0)

"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (auc_mann_whitney, cdf_points, correlation,
                            entropy_bits, equiprobable_bin_edges,
                            ks_distance, mean, percentile, quantize,
                            roc_points, spread_percent, stdev, variance)


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_variance_and_stdev(self):
        assert variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == 4.0
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == 2.0
        assert variance([5.0]) == 0.0

    def test_percentile(self):
        data = [float(i) for i in range(11)]
        assert percentile(data, 0) == 0.0
        assert percentile(data, 50) == 5.0
        assert percentile(data, 100) == 10.0
        assert percentile(data, 25) == 2.5

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_spread_percent(self):
        assert spread_percent([1.0, 1.5, 2.0]) == pytest.approx(100.0)
        assert spread_percent([3.0, 3.0]) == 0.0
        with pytest.raises(ValueError):
            spread_percent([0.0, 1.0])

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_correlation(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert correlation(xs, xs) == pytest.approx(1.0)
        assert correlation(xs, [-x for x in xs]) == pytest.approx(-1.0)
        assert correlation(xs, [5.0] * 4) == 0.0
        with pytest.raises(ValueError):
            correlation([1.0], [2.0, 3.0])


class TestKsDistance:
    def test_identical_samples(self):
        a = [1.0, 2.0, 3.0]
        assert ks_distance(a, a) == 0.0

    def test_disjoint_samples(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_symmetry(self):
        a = [1.0, 3.0, 5.0, 7.0]
        b = [2.0, 3.5, 6.0]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])

    @given(st.lists(st.floats(0, 100), min_size=2, max_size=50),
           st.lists(st.floats(0, 100), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, a, b):
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0


class TestBinningAndEntropy:
    def test_equiprobable_edges(self):
        data = [float(i) for i in range(100)]
        edges = equiprobable_bin_edges(data, 4)
        assert len(edges) == 3
        symbols = quantize(data, edges)
        counts = [symbols.count(k) for k in range(4)]
        assert max(counts) - min(counts) <= 2

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            equiprobable_bin_edges([1.0], 1)
        with pytest.raises(ValueError):
            equiprobable_bin_edges([], 4)

    def test_quantize_edges(self):
        assert quantize([0.5, 1.5, 2.5], [1.0, 2.0]) == [0, 1, 2]
        assert quantize([1.0], [1.0, 2.0]) == [0]  # boundary goes low

    def test_entropy(self):
        assert entropy_bits([0, 0, 0, 0]) == 0.0
        assert entropy_bits([0, 1, 0, 1]) == pytest.approx(1.0)
        assert entropy_bits([0, 1, 2, 3]) == pytest.approx(2.0)
        assert entropy_bits([]) == 0.0


class TestRocAndAuc:
    def test_perfect_separation(self):
        assert auc_mann_whitney([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_no_separation(self):
        assert auc_mann_whitney([1.0, 1.0], [1.0, 1.0]) == 0.5

    def test_inverted(self):
        assert auc_mann_whitney([0.0], [1.0]) == 0.0

    def test_auc_matches_roc_area(self):
        positives = [0.9, 0.8, 0.55, 0.4]
        negatives = [0.7, 0.5, 0.3, 0.1]
        auc = auc_mann_whitney(positives, negatives)
        points = roc_points(positives, negatives)
        # Trapezoidal area under the ROC polyline.
        area = sum((x1 - x0) * (y0 + y1) / 2
                   for (x0, y0), (x1, y1) in zip(points, points[1:]))
        assert area == pytest.approx(auc)

    def test_roc_endpoints(self):
        points = roc_points([1.0], [0.0])
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            auc_mann_whitney([], [1.0])
        with pytest.raises(ValueError):
            roc_points([1.0], [])

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=30),
           st.lists(st.floats(-10, 10), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_auc_bounds_property(self, pos, neg):
        assert 0.0 <= auc_mann_whitney(pos, neg) <= 1.0

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=20),
           st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_auc_antisymmetry(self, pos, neg):
        forward = auc_mann_whitney(pos, neg)
        backward = auc_mann_whitney(neg, pos)
        assert forward + backward == pytest.approx(1.0)

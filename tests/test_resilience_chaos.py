"""Chaos matrix for the resilient audit pipeline.

Sweeps every fault kind over several severities with fixed seeds and
asserts the §5.3 auditor's robustness contract: ``audit_resilient``
never raises, every attestation-chain break is reported as
``tamper-detected``, and truncations that leave an intact checkpoint
segment salvage a nonzero coverage fraction.
"""

import pytest

from repro.apps import build_nfs_program, build_nfs_workload
from repro.core.attestation import attest_execution
from repro.core.log import EventLog
from repro.core.resilience import (AuditClassification, AuditOutcome,
                                   DegradationLevel, audit_resilient)
from repro.core.segments import checkpoint_usable, play_with_checkpoint
from repro.determinism import SplitMix64
from repro.faults import (BitFlip, DropEntries, DuplicateEntries,
                          HeaderFuzz, LogTransferChannel, ReorderEntries,
                          Truncate, standard_fault_kinds)
from repro.machine import MachineConfig

CHAOS_SEED = 20141006
SIGNING_KEY = b"chaos-signing-key"
SEVERITIES = (1, 2, 3)

BYTE_LEVEL = {"bit-flip", "truncate", "header-fuzz"}
ENTRY_LEVEL = {"drop-entries", "duplicate-entries", "reorder-entries"}


@pytest.fixture(scope="module")
def baseline():
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(101), num_requests=5)
    observed, checkpoint = play_with_checkpoint(
        program, MachineConfig(), workload, at_instr=40_000, seed=0)
    return {
        "program": program,
        "observed": observed,
        "checkpoint": checkpoint,
        "data": observed.log.to_bytes(),
        "auth": attest_execution(observed.log, SIGNING_KEY),
    }


def run_audit(baseline, log_bytes, **kwargs):
    return audit_resilient(baseline["program"], baseline["observed"],
                           log_bytes, **kwargs)


class TestCleanPath:
    def test_intact_log_audits_clean(self, baseline):
        outcome = run_audit(baseline, baseline["data"],
                            authenticator=baseline["auth"],
                            signing_key=SIGNING_KEY)
        assert outcome.classification == AuditClassification.CLEAN
        assert outcome.degradation == DegradationLevel.NONE
        assert outcome.coverage == 1.0
        assert outcome.consistent is True
        assert outcome.attestation_ok is True
        assert outcome.trustworthy
        assert outcome.report is not None
        assert outcome.report.payloads_match


class TestChaosMatrix:
    """fault kind x severity sweep; fixed seeds, reproducible runs."""

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_sweep_never_crashes_and_classifies(self, baseline, severity):
        for plan in standard_fault_kinds(severity):
            rng = SplitMix64(CHAOS_SEED).fork(f"{plan.name}:{severity}")
            damaged = plan.apply(baseline["data"], rng)
            outcome = run_audit(baseline, damaged,
                                authenticator=baseline["auth"],
                                signing_key=SIGNING_KEY)
            label = f"{plan.name}@{severity}"
            assert isinstance(outcome, AuditOutcome), label
            assert 0.0 <= outcome.coverage <= 1.0, label
            assert isinstance(outcome.classification,
                              AuditClassification), label
            if plan.name in BYTE_LEVEL and damaged != baseline["data"]:
                # Framing damage is always caught by the v2 CRC/digest.
                assert (outcome.classification
                        == AuditClassification.LOG_CORRUPT), label
                assert outcome.failure is not None, label
            if outcome.attestation_ok is False:
                assert (outcome.classification
                        == AuditClassification.TAMPER_DETECTED), label
            if outcome.classification == \
                    AuditClassification.TAMPER_DETECTED:
                assert outcome.degradation == DegradationLevel.UNUSABLE
                assert not outcome.trustworthy

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_sweep_is_reproducible(self, baseline, severity):
        for plan in standard_fault_kinds(severity):
            first = plan.apply(
                baseline["data"],
                SplitMix64(CHAOS_SEED).fork(f"{plan.name}:{severity}"))
            again = plan.apply(
                baseline["data"],
                SplitMix64(CHAOS_SEED).fork(f"{plan.name}:{severity}"))
            assert first == again, plan.name


class TestTamperDetection:
    def tampered_variants(self, data):
        """Rewrites that keep the full entry count (chain recomputable)."""
        base = EventLog.from_bytes(data)
        variants = []
        # Rewrite the first packet's payload.
        edited = EventLog.from_bytes(data)
        first = edited.entries[0]
        edited.entries[0] = type(first)(first.kind, first.instr_count,
                                        payload=b"X" * 7,
                                        value=first.value)
        variants.append(("payload-rewrite", edited.to_bytes()))
        # Swap the contents of the first two entries.
        variants.append(
            ("front-reorder",
             ReorderEntries(1).apply_seeded(data, CHAOS_SEED)))
        # Duplicate an early entry (shifts everything after it).
        variants.append(
            ("early-duplicate",
             DuplicateEntries(3).apply_seeded(data, CHAOS_SEED)))
        assert all(v != data for _, v in variants)
        assert len(base.entries) > 0
        return variants

    def test_every_chain_break_is_reported(self, baseline):
        for name, tampered in self.tampered_variants(baseline["data"]):
            parsed = EventLog.from_bytes(tampered)  # frames validly
            assert len(parsed.entries) >= baseline["auth"].length or \
                name == "payload-rewrite"
            outcome = run_audit(baseline, tampered,
                                authenticator=baseline["auth"],
                                signing_key=SIGNING_KEY)
            assert (outcome.classification
                    == AuditClassification.TAMPER_DETECTED), name
            assert outcome.attestation_ok is False, name
            assert outcome.coverage == 0.0, name

    def test_without_attestation_tamper_becomes_divergence(self, baseline):
        tampered = DropEntries(2).apply_seeded(baseline["data"],
                                               CHAOS_SEED)
        outcome = run_audit(baseline, tampered)
        assert outcome.classification in (
            AuditClassification.REPLAY_DIVERGENT,
            AuditClassification.LOG_CORRUPT)


class TestTruncationSalvage:
    @pytest.mark.parametrize("keep", [0.8, 0.6])
    def test_genesis_salvage_nonzero(self, baseline, keep):
        damaged = Truncate(keep).apply_seeded(baseline["data"],
                                              CHAOS_SEED)
        outcome = run_audit(baseline, damaged)
        assert outcome.classification == AuditClassification.LOG_CORRUPT
        assert outcome.coverage > 0.0
        assert outcome.salvaged_packets > 0
        assert outcome.parse is not None
        assert outcome.parse.intact_entries > 0

    @pytest.mark.parametrize("keep", [0.8, 0.6, 0.5])
    def test_checkpoint_segment_salvage_nonzero(self, baseline, keep):
        damaged = Truncate(keep).apply_seeded(baseline["data"],
                                              CHAOS_SEED)
        parse = EventLog.parse_prefix(damaged)
        checkpoint = baseline["checkpoint"]
        if not checkpoint_usable(checkpoint, parse.intact_entries):
            pytest.skip("truncation cut before the checkpoint")
        outcome = run_audit(baseline, damaged, checkpoint=checkpoint)
        # At least one intact checkpoint segment => nonzero salvage.
        assert outcome.coverage > 0.0
        assert outcome.salvaged_packets >= min(checkpoint.tx_count,
                                               len(baseline["observed"].tx))
        assert "checkpoint" in outcome.detail

    def test_checkpoint_beyond_damage_is_not_used(self, baseline):
        # Cut almost everything: the checkpoint lies past the damage and
        # must not be resumed from (its events are untrusted).
        damaged = Truncate(0.1).apply_seeded(baseline["data"], CHAOS_SEED)
        parse = EventLog.parse_prefix(damaged)
        checkpoint = baseline["checkpoint"]
        if checkpoint_usable(checkpoint, parse.intact_entries):
            pytest.skip("cut did not reach the checkpoint")
        outcome = run_audit(baseline, damaged, checkpoint=checkpoint)
        assert "checkpoint" not in outcome.detail
        assert 0.0 <= outcome.coverage <= 1.0


class TestTransferDegradation:
    def test_within_budget_delivers_clean(self, baseline):
        channel = LogTransferChannel(drop_rate=0.2, mtu_bytes=256)
        shipped = channel.transfer(baseline["data"],
                                   SplitMix64(CHAOS_SEED))
        assert shipped.delivered
        outcome = audit_resilient(baseline["program"],
                                  baseline["observed"],
                                  transfer=shipped)
        assert outcome.classification == AuditClassification.CLEAN
        assert outcome.coverage == 1.0

    def test_beyond_budget_is_structured_not_raised(self, baseline):
        channel = LogTransferChannel(drop_rate=0.92, mtu_bytes=128,
                                     max_retries=2)
        shipped = channel.transfer(baseline["data"],
                                   SplitMix64(CHAOS_SEED))
        assert shipped.degraded
        outcome = audit_resilient(baseline["program"],
                                  baseline["observed"],
                                  transfer=shipped)
        assert (outcome.classification
                == AuditClassification.TRANSFER_DEGRADED)
        assert outcome.transfer is shipped
        assert 0.0 <= outcome.coverage < 1.0


class TestHostileInputsNeverCrash:
    @pytest.mark.parametrize("payload", [
        b"",
        b"\x00" * 64,
        b"TDRL",                                     # bare magic
        b"TDRL\x02\x00\xff\xff\xff\xff",             # huge entry count
        b"TDRL\x02\x00\x01\x00\x00\x00" + b"\xff" * 20,
        bytes(range(256)),
    ])
    def test_garbage_is_classified(self, baseline, payload):
        outcome = run_audit(baseline, payload)
        assert outcome.classification == AuditClassification.LOG_CORRUPT
        assert outcome.coverage == 0.0
        assert outcome.degradation == DegradationLevel.UNUSABLE

    def test_no_bytes_at_all(self, baseline):
        outcome = audit_resilient(baseline["program"],
                                  baseline["observed"], None)
        assert outcome.classification == AuditClassification.LOG_CORRUPT
        assert outcome.coverage == 0.0

    def test_v1_log_still_audits(self, baseline):
        data = baseline["observed"].log.to_bytes(version=1)
        outcome = run_audit(baseline, data)
        assert outcome.classification == AuditClassification.CLEAN
        assert outcome.coverage == 1.0

"""End-to-end service runs: escalation, verdicts, cache behaviour."""

import pytest

from repro.analysis.parallel import execute_spec
from repro.core.log import EventLog
from repro.core.replay_cache import ReplayCache
from repro.core.resilience import AuditClassification
from repro.obs.metrics import MetricsRegistry
from repro.obs.runstore import RunStore
from repro.service import (
    PRIORITY_SPOT,
    AuditJob,
    AuditScheduler,
    AuditService,
    IngestGate,
    ProverSession,
    TenantSpec,
    default_tenants,
    persist_service_report,
)


@pytest.fixture(scope="module")
def report():
    """One shared 4-tenant run: clean, covert, clean, lossy-link."""
    service = AuditService(default_tenants(4, requests=4), epochs=2,
                           seed=2014, registry=MetricsRegistry())
    return service.run(jobs=1)


class TestEndToEnd:
    def test_covert_tenant_is_flagged_covert(self, report):
        ledger = report.ledgers["tenant-01"]
        assert ledger.final_status == "flagged-covert"
        assert ledger.verdict == "FLAGGED covert-timing"

    def test_clean_tenants_stay_clean(self, report):
        for tid in ("tenant-00", "tenant-02", "tenant-03"):
            ledger = report.ledgers[tid]
            assert not ledger.flagged, tid
            assert ledger.verdict.startswith("clean"), tid

    def test_flag_came_through_the_escalation_path(self, report):
        events = report.ledgers["tenant-01"].events
        kinds = [e.kind for e in events]
        assert "escalated" in kinds
        first_escalated = kinds.index("escalated")
        # Some earlier audit raised the suspicion that spawned it.
        trigger = events[first_escalated - 1] if first_escalated else None
        assert report.ledgers["tenant-01"].escalations >= 1
        assert trigger is None or trigger.classification in (
            AuditClassification.REPLAY_DIVERGENT,
            AuditClassification.TAMPER_DETECTED)

    def test_covert_timing_deviation_is_large(self, report):
        covert = report.ledgers["tenant-01"]
        clean = report.ledgers["tenant-00"]
        worst_covert = max(e.max_rel_ipd_diff for e in covert.events)
        worst_clean = max(e.max_rel_ipd_diff for e in clean.events)
        assert worst_covert > 0.0185 > worst_clean

    def test_exit_code_and_flagged_roster(self, report):
        assert report.flagged_tenants == ["tenant-01"]
        assert report.exit_code == 1

    def test_render_lines_cover_both_tables(self, report):
        text = "\n".join(report.render_lines())
        assert "FLAGGED covert-timing" in text
        assert "mean wait ms" in text
        assert "queue: pushed=" in text
        assert "flagged: tenant-01" in text

    def test_all_clean_roster_exits_zero(self):
        service = AuditService(default_tenants(1, requests=4), epochs=1,
                               seed=5, registry=MetricsRegistry())
        solo = service.run(jobs=1)
        assert solo.flagged_tenants == [] and solo.exit_code == 0
        assert "flagged: none" in "\n".join(solo.render_lines())

    def test_tampering_tenant_is_flagged_tamper(self):
        roster = [TenantSpec(tenant_id="mallory", requests=4, seed=7,
                             segments=3, tamper=True)]
        result = AuditService(roster, epochs=1, seed=5,
                              registry=MetricsRegistry()).run(jobs=1)
        ledger = result.ledgers["mallory"]
        assert ledger.final_status == "flagged-tamper"
        assert any(e.classification is AuditClassification.TAMPER_DETECTED
                   for e in ledger.events)
        assert result.exit_code == 1

    def test_service_metrics_in_report(self, report):
        assert report.metrics["service_audits_total"]["value"] \
            == sum(l.audits for l in report.ledgers.values())
        assert report.metrics["service_queue_latency_ms"]["count"] > 0


class TestCacheUnderScheduler:
    def _scheduler(self):
        registry = MetricsRegistry()
        spec = TenantSpec(tenant_id="t0", requests=4, seed=3, segments=2)
        session = ProverSession(spec, service_seed=11)
        shipment = session.ship(0, execute_spec(session.play_spec(0)), 0.0)
        gate = IngestGate({"t0": spec}, registry=registry)
        scheduler = AuditScheduler({"t0": spec}, registry=registry)
        scheduler.observe_wire("t0", 0, shipment.wire)
        for segment in shipment.shipments:
            scheduler.note_admission(gate.admit(segment), gate)
        return scheduler, gate, registry

    def test_repeat_audit_of_same_window_hits_the_cache(self):
        scheduler, gate, registry = self._scheduler()
        first = scheduler.run_pending(gate, jobs=1)
        assert all(not e.cache_hit for e in first)
        repeat_of = first[-1]
        scheduler.queue.push(AuditJob(
            tenant_id="t0", epoch=0, kind="spot", priority=PRIORITY_SPOT,
            ready_ms=1_000.0, deadline_ms=3_000.0,
            budget_instructions=scheduler.policy.spot_budget_instructions,
            log_upto=len(gate.accumulator("t0", 0).log.entries),
            cause="repeat"))
        second = scheduler.run_pending(gate, jobs=1)
        assert len(second) == 1 and second[0].cache_hit
        # A hit is priced at the flat cache cost, not replay cost...
        assert second[0].service_ms == scheduler.policy.cache_hit_cost_ms
        assert repeat_of.service_ms != scheduler.policy.cache_hit_cost_ms
        # ...and never changes the verdict.
        assert second[0].classification == repeat_of.classification
        assert second[0].matched_tx == repeat_of.matched_tx
        snap = registry.snapshot()
        assert snap["tdr_replay_cache_hits_total"]["value"] >= 1

    def test_hit_rate_metrics_accumulate(self):
        scheduler, gate, registry = self._scheduler()
        scheduler.run_pending(gate, jobs=1)
        upto = len(gate.accumulator("t0", 0).log.entries)
        for i in range(3):
            scheduler.queue.push(AuditJob(
                tenant_id="t0", epoch=0, kind="spot",
                priority=PRIORITY_SPOT, ready_ms=1_000.0 + i,
                deadline_ms=5_000.0,
                budget_instructions=(
                    scheduler.policy.spot_budget_instructions),
                log_upto=upto, cause=f"repeat:{i}"))
        events = scheduler.run_pending(gate, jobs=1)
        assert [e.cache_hit for e in events] == [True, True, True]
        assert scheduler.cache.hits >= 3
        snap = registry.snapshot()
        assert snap["tdr_replay_cache_hits_total"]["value"] \
            == scheduler.cache.hits

    def test_mutating_a_fetched_result_never_leaks_back(self):
        cache = ReplayCache(maxsize=4, registry=MetricsRegistry())
        log = EventLog()
        cache.store_value("prog", log, {"tx": ["a", "b"]}, seed=1)
        stolen = cache.fetch_value("prog", log, seed=1)
        stolen["tx"].append("poison")
        pristine = cache.fetch_value("prog", log, seed=1)
        assert pristine == {"tx": ["a", "b"]}

    def test_fetch_refreshes_lru_order(self):
        cache = ReplayCache(maxsize=2, registry=MetricsRegistry())
        log = EventLog()
        cache.store_value("prog", log, "A", seed=1)
        cache.store_value("prog", log, "B", seed=2)
        assert cache.fetch_value("prog", log, seed=1) == "A"   # refresh A
        cache.store_value("prog", log, "C", seed=3)            # evicts B
        assert cache.fetch_value("prog", log, seed=2) is None
        assert cache.fetch_value("prog", log, seed=1) == "A"
        assert cache.fetch_value("prog", log, seed=3) == "C"
        assert len(cache) == 2


def test_persist_service_report_roundtrip(tmp_path, report):
    store = RunStore(tmp_path / "runs")
    run_id = persist_service_report(store, report, label="svc-test")
    record = store.load(run_id)
    assert record.kind == "service"
    assert record.label == "svc-test"
    assert record.seeds == [report.seed]
    assert record.verdicts == report.verdicts_dict()
    assert record.figures["queue"] == dict(report.queue_stats)

"""The persistent run store: content addressing, round trips, pruning."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.flight import DivergenceRecord
from repro.obs.runstore import (SCHEMA_VERSION, RunRecord, RunStore,
                                default_store_root)


def _record(kind="trace", label="unit", **overrides) -> RunRecord:
    fields = dict(
        kind=kind, label=label,
        config={"scenario": "dirty", "requests": 8},
        program="nfs", seeds=[0, 1],
        metrics={"tdr_runs_total": {"kind": "counter", "help": "runs",
                                    "value": 2.0}},
        ledgers={"play": {"cpu.exec": 1000, "covert.delay": 40},
                 "replay": {"cpu.exec": 1000}},
        verdicts={"consistent": True, "payloads_match": True},
        figures={"table1": {"tables": [
            {"ledger": "play", "total_cycles": 1040,
             "title": "play (dirty, 1,040 cycles)"}]}},
        flights=[DivergenceRecord(
            reason="unit", play_tail=[(10, "ab")],
            source_deltas={"covert.delay": 40},
            play_cycles=1040, replay_cycles=1000).to_json_dict()],
        trace_ndjson='{"name":"thread_name","ph":"M","tid":1}\n')
    fields.update(overrides)
    return RunRecord(**fields)


class TestContentAddressing:
    def test_run_id_is_kind_plus_digest(self):
        run_id = _record().run_id()
        assert run_id.startswith("trace-")
        assert len(run_id) == len("trace-") + 12

    def test_identical_content_same_id(self):
        assert _record().run_id() == _record().run_id()

    def test_any_field_changes_the_id(self):
        base = _record().run_id()
        assert _record(label="other").run_id() != base
        assert _record(seeds=[0, 2]).run_id() != base
        assert _record(trace_ndjson="").run_id() != base

    def test_save_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.save(_record())
        second = store.save(_record())
        assert first == second
        assert len(store) == 1

    def test_loaded_record_reserializes_to_same_id(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.save(_record())
        assert store.load(run_id).run_id() == run_id


class TestRoundTrip:
    def test_all_fields_survive(self, tmp_path):
        store = RunStore(tmp_path)
        record = _record()
        loaded = store.load(store.save(record))
        assert loaded.kind == record.kind
        assert loaded.label == record.label
        assert loaded.config == record.config
        assert loaded.seeds == record.seeds
        assert loaded.metrics == record.metrics
        assert loaded.ledgers == record.ledgers
        assert loaded.verdicts == record.verdicts
        assert loaded.figures == record.figures
        assert loaded.trace_ndjson == record.trace_ndjson
        assert loaded.schema_version == SCHEMA_VERSION

    def test_flight_deltas_survive_persistence(self, tmp_path):
        original = DivergenceRecord(
            reason="covert channel", play_tail=[(7, "dead")],
            replay_tail=[(7, "beef")], source_deltas={"covert.delay": 512},
            first_payload_mismatch=3, play_cycles=9000, replay_cycles=8488)
        store = RunStore(tmp_path)
        run_id = store.save(_record(flights=[original.to_json_dict()]))
        revived = DivergenceRecord.from_json_dict(
            store.load(run_id).flights[0])
        assert revived == original
        assert revived.dominant_source == "covert.delay"

    def test_empty_sidecars_are_not_written(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.save(_record(flights=[], trace_ndjson=""))
        run_dir = tmp_path / run_id
        assert (run_dir / "manifest.json").exists()
        assert not (run_dir / "trace.ndjson").exists()
        assert not (run_dir / "flight.json").exists()


class TestIntegrity:
    def test_future_schema_refused(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.save(_record())
        path = tmp_path / run_id / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(ObservabilityError, match="schema"):
            store.manifest(run_id)

    def test_modified_artifacts_detected_on_load(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.save(_record())
        ledger_path = tmp_path / run_id / "ledger.json"
        ledgers = json.loads(ledger_path.read_text())
        ledgers["play"]["cpu.exec"] += 1
        ledger_path.write_text(json.dumps(ledgers))
        with pytest.raises(ObservabilityError, match="digest mismatch"):
            store.load(run_id)


class TestBrowsing:
    def test_resolve_prefix(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.save(_record())
        assert store.resolve(run_id) == run_id
        assert store.resolve(run_id[:9]) == run_id
        with pytest.raises(ObservabilityError, match="no run"):
            store.resolve("nope-123")

    def test_ambiguous_prefix_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.save(_record(label="a"))
        store.save(_record(label="b"))
        with pytest.raises(ObservabilityError, match="ambiguous"):
            store.resolve("trace-")

    def test_list_runs_filters_by_kind(self, tmp_path):
        store = RunStore(tmp_path)
        store.save(_record(kind="fig6"))
        store.save(_record(kind="trace"))
        assert [m["kind"] for m in store.list_runs(kind="fig6")] == ["fig6"]
        assert len(store.list_runs()) == 2

    def test_prune_keeps_most_recent(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        clock = iter(range(1000, 1010))
        monkeypatch.setattr("repro.obs.runstore.time.time",
                            lambda: float(next(clock)))
        ids = [store.save(_record(label=f"run {i}")) for i in range(3)]
        removed = store.prune(keep=1)
        assert removed == ids[:2]
        assert [m["run_id"] for m in store.list_runs()] == [ids[2]]
        with pytest.raises(ObservabilityError):
            store.prune(keep=-1)

    def test_default_root_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNSTORE", "/tmp/elsewhere")
        assert default_store_root() == "/tmp/elsewhere"
        monkeypatch.delenv("REPRO_RUNSTORE")
        assert default_store_root() == ".repro-runs"

"""The cycle-exact guest profiler and divergence forensics.

Two invariants carry this suite:

* **Exactness** — the profiler attributes ledger deltas, so per-source
  frame totals sum to the :class:`CycleLedger` (and the clock) *exactly*,
  at any stride, on covert, chaos-damaged, and fleet runs.
* **Pure observer** — profiling on vs off leaves cycles, ledger sums,
  transmissions, serialized logs, and audit verdicts bit-identical.

Plus the forensics razor: a single-site divergence (one covert delay in
an otherwise identical pair of runs) must be localized to the exact
(function, pc, source) frame.
"""

from __future__ import annotations

import pytest

from repro.analysis.parallel import MachineSpec, run_fleet_observed
from repro.apps import build_nfs_program, build_nfs_workload, compile_app
from repro.core.resilience import audit_resilient
from repro.core.tdr import play, round_trip
from repro.determinism import SplitMix64
from repro.errors import ObservabilityError
from repro.faults import standard_fault_kinds
from repro.machine import MachineConfig
from repro.machine.noise import scenario_config
from repro.obs import (Observability, RUNTIME_FRAME, diff_profiles,
                       first_divergence, folded_lines, profile_lines,
                       render_flame_diff_svg, render_flame_svg)

REQUESTS = 5
SCHEDULE = (1_500, 4_000, 2_500, 6_000)


@pytest.fixture(scope="module")
def nfs_program():
    return build_nfs_program()


def _round_trip(nfs_program, obs=None, schedule=SCHEDULE):
    workload = build_nfs_workload(SplitMix64(7042), num_requests=REQUESTS)
    return round_trip(nfs_program, MachineConfig(), workload=workload,
                      play_seed=3, replay_seed=9,
                      covert_schedule=list(schedule), obs=obs)


def _snapshot(result):
    return (result.total_cycles, result.instructions, result.tx,
            result.tx_times_ms(), result.ledger)


def _assert_exact(result):
    """Per-source frame totals == ledger, and the total == the clock."""
    profile = result.profile
    assert profile is not None
    assert profile["sources"] == dict(result.ledger)
    assert profile["total_cycles"] == result.total_cycles
    for entry in profile["stacks"]:
        assert entry["cycles"] == sum(entry["sources"].values())


class TestExactness:
    def test_covert_round_trip_sums_to_ledger(self, nfs_program):
        trip = _round_trip(nfs_program, obs=Observability(profile=True))
        _assert_exact(trip.play)
        _assert_exact(trip.replay)
        # The channel's cycles are in the play profile and attributed to
        # the covert source, absent from the clean replay.
        assert trip.play.profile["sources"]["covert"] == sum(SCHEDULE)
        assert "covert" not in trip.replay.profile["sources"]

    def test_stride_changes_where_not_how_much(self, nfs_program):
        """Coarser strides move cycles between frames, never in or out
        of the accounting."""
        totals = []
        for stride, jit_stride in ((1, 1), (4, 16), (64, 256)):
            result = play(nfs_program, MachineConfig(),
                          workload=build_nfs_workload(SplitMix64(7042),
                                                      num_requests=REQUESTS),
                          seed=3, covert_schedule=list(SCHEDULE),
                          obs=Observability(profile=True,
                                            profile_stride=stride,
                                            profile_jit_stride=jit_stride))
            _assert_exact(result)
            totals.append(result.profile["sources"])
        assert totals[0] == totals[1] == totals[2]

    def test_chaos_damaged_audits(self, nfs_program):
        """Profiling stays exact — and the verdicts identical — when the
        audited log is fault-damaged and salvage replays run."""
        result = play(nfs_program, MachineConfig(),
                      workload=build_nfs_workload(SplitMix64(7042),
                                                  num_requests=REQUESTS),
                      seed=3)
        data = result.log.to_bytes()

        def sweep(obs_factory):
            outcomes = []
            for plan in standard_fault_kinds(1):
                rng = SplitMix64(20141006).fork(plan.name)
                outcome = audit_resilient(nfs_program, result,
                                          plan.apply(data, rng),
                                          config=MachineConfig(),
                                          obs=obs_factory())
                outcomes.append((plan.name, outcome.classification,
                                 outcome.consistent, outcome.coverage,
                                 outcome.degradation))
            return outcomes

        profiled = sweep(lambda: Observability(profile=True))
        plain = sweep(lambda: Observability())
        bare = sweep(lambda: None)
        assert profiled == plain == bare

    def test_fleet_jobs4_matches_serial(self):
        def run(jobs):
            specs = [MachineSpec(program="kernel:sor",
                                 config=MachineConfig(), seed=seed,
                                 observe=True, profile=True)
                     for seed in range(4)]
            results, _ = run_fleet_observed(specs, jobs=jobs)
            return results

        serial = run(1)
        parallel = run(4)
        for result in serial:
            _assert_exact(result)
        assert [r.profile for r in parallel] == \
            [r.profile for r in serial]
        assert [_snapshot(r) for r in parallel] == \
            [_snapshot(r) for r in serial]


class TestPureObserver:
    def test_on_off_bit_identical(self, nfs_program):
        on = _round_trip(nfs_program, obs=Observability(profile=True))
        off = _round_trip(nfs_program, obs=Observability())
        for side in ("play", "replay"):
            assert _snapshot(getattr(on, side)) == \
                _snapshot(getattr(off, side))
        assert on.play.log.to_bytes() == off.play.log.to_bytes()
        # Verdicts byte-for-byte: every audit-facing number matches.
        assert (on.audit.payloads_match, on.audit.deviation_score(),
                on.audit.total_time_error, on.audit.is_consistent()) == \
            (off.audit.payloads_match, off.audit.deviation_score(),
             off.audit.total_time_error, off.audit.is_consistent())
        assert on.play.profile is not None
        assert off.play.profile is None

    def test_no_jit_reference_also_exact(self, nfs_program, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        trip = _round_trip(nfs_program, obs=Observability(profile=True))
        _assert_exact(trip.play)
        # Pure interpreter: no jit-tier frames can exist.
        assert all(e["tier"] == "interp"
                   for e in trip.play.profile["stacks"])

    def test_profile_requires_ledger(self):
        with pytest.raises(ObservabilityError):
            Observability(profile=True, ledger=False)


RAZOR_SRC = """
void main() {
    int acc = 0;
    int i = 0;
    while (i < 3000) { acc = acc + i; i = i + 1; }
    covert_delay(500);
    int j = 0;
    while (j < 3000) { acc = acc + j; j = j + 1; }
    print_int(acc);
    exit();
}
"""


def _razor_profiles():
    """Two sanity-config runs of the same program and seed, differing in
    exactly one covert delay: the only divergence is that one site."""
    program = compile_app(RAZOR_SRC)
    config = scenario_config("sanity")

    def obs():
        return Observability(profile=True, profile_stride=1,
                             profile_jit_stride=1)

    base = play(program, config, seed=0, obs=obs())
    covert = play(program, config, seed=0, covert_schedule=[500],
                  obs=obs())
    return base, covert


class TestForensicsRazor:
    def test_single_site_divergence_is_named_exactly(self):
        base, covert = _razor_profiles()
        diff = diff_profiles(base.profile, covert.profile)
        # The razor: exactly ONE divergent (stack, tier, source) bucket.
        assert len(diff["entries"]) == 1
        first = first_divergence(base.profile, covert.profile)
        assert first == diff["entries"][0] == diff["first"]
        assert first["source"] == "covert"
        assert first["delta"] == 500
        assert first["function"] == "main"
        assert isinstance(first["pc"], int)
        assert diff["replay_total"] - diff["play_total"] == 500

    def test_identical_runs_have_no_divergence(self):
        base, _ = _razor_profiles()
        again, _ = _razor_profiles()
        assert first_divergence(base.profile, again.profile) is None
        assert base.profile == again.profile

    def test_differential_flame_names_the_site(self):
        base, covert = _razor_profiles()
        svg = render_flame_diff_svg(base.profile, covert.profile)
        first = first_divergence(base.profile, covert.profile)
        assert f"{first['function']}:{first['pc']}" in svg
        assert "[covert]" in svg
        assert svg == render_flame_diff_svg(base.profile, covert.profile)


class TestExports:
    @pytest.fixture(scope="class")
    def profile(self, nfs_program):
        trip = _round_trip(nfs_program, obs=Observability(profile=True))
        return trip.play.profile

    def test_folded_lines_sum_to_ledger_total(self, profile):
        lines = folded_lines(profile)
        assert lines == sorted(lines)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == profile["total_cycles"]
        # flamegraph.pl shape: frames;joined;by;semicolons <weight>.
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and weight.isdigit()

    def test_folded_jit_annotation(self, profile):
        import os

        if os.environ.get("REPRO_NO_JIT"):
            pytest.skip("pure-interpreter reference: no jit-tier frames")
        assert any(e["tier"] == "jit" for e in profile["stacks"])
        assert any("_[j];" in line for line in folded_lines(profile))

    def test_runtime_residual_closes_the_accounting(self, profile):
        runtime = [e for e in profile["stacks"]
                   if e["stack"] == [RUNTIME_FRAME]]
        assert runtime and runtime[0]["cycles"] > 0

    def test_flame_svg_deterministic_and_standalone(self, profile):
        svg = render_flame_svg(profile)
        assert svg == render_flame_svg(profile)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg
        assert "var(--" not in svg     # literal colors: no CSS vars

    def test_profile_lines_render(self, profile):
        lines = profile_lines(profile)
        assert any("attributed exactly" in line for line in lines)
        assert any("covert" in line for line in lines)

    def test_round_trip_persists_profiles(self, nfs_program, tmp_path):
        from repro.obs.report import render_html, render_text
        from repro.obs.runstore import RunStore

        store = RunStore(tmp_path / "runs")
        trip = _round_trip(nfs_program, obs=Observability(profile=True))
        from repro.core.tdr import persist_round_trip

        run_id = persist_round_trip(store, trip,
                                    obs=Observability(profile=True),
                                    kind="profile")
        record = store.load(run_id)
        assert record.figures["profile"]["play"] == trip.play.profile
        if trip.play.jit is not None:       # absent under REPRO_NO_JIT
            assert record.figures["jit"]["play"] == trip.play.jit
        text = render_text(record, run_id)
        assert "attributed exactly" in text
        html = render_html([(run_id, record)])
        assert "Cycle-exact profile" in html and "<svg" in html


class TestCli:
    def test_profile_fresh_run_writes_artifacts(self, tmp_path, capsys):
        from repro.tools.reproduce import main

        flame = tmp_path / "flame.svg"
        folded = tmp_path / "folded.txt"
        status = main(["profile", "--requests", "3", "--diff",
                       "--flame", str(flame), "--folded", str(folded),
                       "--store", str(tmp_path / "runs")])
        out = capsys.readouterr().out
        assert status == 0
        assert "attributed exactly" in out
        assert "first divergent frame" in out and "[covert]" in out
        assert flame.read_text().startswith("<?xml")
        assert "Differential flame view" in flame.read_text()
        assert folded.read_text().splitlines()

    def test_profile_stored_run_diff_names_site(self, tmp_path, capsys):
        from repro.obs.runstore import RunRecord, RunStore
        from repro.tools.reproduce import main

        base, covert = _razor_profiles()
        first = first_divergence(base.profile, covert.profile)
        store_root = tmp_path / "runs"
        run_id = RunStore(store_root).save(RunRecord(
            kind="profile", label="razor",
            figures={"profile": {"play": base.profile,
                                 "replay": covert.profile}}))
        status = main(["profile", "--run", run_id, "--diff",
                       "--store", str(store_root)])
        out = capsys.readouterr().out
        assert status == 0
        assert (f"first divergent frame: "
                f"{first['function']}:{first['pc']} [covert]") in out

    def test_profile_run_latest_annotates_regions(self, tmp_path,
                                                  capsys):
        from repro.tools.reproduce import main

        store_root = str(tmp_path / "runs")
        assert main(["profile", "--requests", "3",
                     "--store", store_root]) == 0
        capsys.readouterr()
        status = main(["profile", "--run", "latest",
                       "--store", store_root])
        out = capsys.readouterr().out
        assert status == 0
        assert "attributed exactly" in out
        # Satellite: stored runs annotate compiled regions from the
        # persisted tier-up summary (skipped under REPRO_NO_JIT).
        import os

        if not os.environ.get("REPRO_NO_JIT"):
            assert "compiled regions (play):" in out
            assert "side-exits" in out

    def test_profile_usage_errors(self, tmp_path, capsys):
        from repro.tools.reproduce import main

        status = main(["profile", "--run", "latest",
                       "--store", str(tmp_path / "empty")])
        assert status == 2
        capsys.readouterr()

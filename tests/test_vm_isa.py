"""Tests for the ISA metadata and 64-bit wrapping semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cpu import CostClass
from repro.vm.isa import (EXCEPTION_NAMES, OPCODE_COST_CLASS, OPERAND_KIND,
                          Op, opcode_name, wrap_i64)


class TestIsaMetadata:
    def test_every_opcode_has_cost_class(self):
        for op in Op:
            assert op in OPCODE_COST_CLASS, op
            assert isinstance(OPCODE_COST_CLASS[op], CostClass)

    def test_every_opcode_has_operand_kind(self):
        for op in Op:
            assert op in OPERAND_KIND, op

    def test_opcode_values_are_dense_and_unique(self):
        values = sorted(op.value for op in Op)
        assert values == list(range(len(values)))

    def test_opcode_name(self):
        assert opcode_name(Op.IADD) == "IADD"
        assert opcode_name(9999) == "OP_9999"

    def test_branch_opcodes_are_contiguous(self):
        """The interpreter's dispatch relies on IFEQ..IFGE adjacency."""
        branches = [Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE]
        values = [op.value for op in branches]
        assert values == list(range(Op.IFEQ, Op.IFGE + 1))

    def test_exception_names_cover_host_traps(self):
        assert set(EXCEPTION_NAMES) == {-1, -2, -3, -4, -5}

    def test_memory_opcodes_are_mem_class(self):
        for op in (Op.LOAD, Op.STORE, Op.GLOAD, Op.GSTORE, Op.ALOAD,
                   Op.ASTORE, Op.GETFIELD, Op.PUTFIELD):
            assert OPCODE_COST_CLASS[op] == CostClass.MEM


class TestWrapI64:
    def test_fixed_points(self):
        assert wrap_i64(0) == 0
        assert wrap_i64(2 ** 63 - 1) == 2 ** 63 - 1
        assert wrap_i64(-(2 ** 63)) == -(2 ** 63)

    def test_overflow_wraps(self):
        assert wrap_i64(2 ** 63) == -(2 ** 63)
        assert wrap_i64(2 ** 64) == 0
        assert wrap_i64(-(2 ** 63) - 1) == 2 ** 63 - 1

    @given(st.integers())
    @settings(max_examples=200, deadline=None)
    def test_range_invariant(self, value):
        wrapped = wrap_i64(value)
        assert -(2 ** 63) <= wrapped < 2 ** 63
        # Wrapping is congruent mod 2^64 and idempotent.
        assert (wrapped - value) % (2 ** 64) == 0
        assert wrap_i64(wrapped) == wrapped

    @given(st.integers(), st.integers())
    @settings(max_examples=100, deadline=None)
    def test_addition_homomorphism(self, a, b):
        """wrap(a + b) == wrap(wrap(a) + wrap(b)) — the property that
        lets the interpreter wrap eagerly."""
        assert wrap_i64(a + b) == wrap_i64(wrap_i64(a) + wrap_i64(b))

    @given(st.integers(), st.integers())
    @settings(max_examples=100, deadline=None)
    def test_multiplication_homomorphism(self, a, b):
        assert wrap_i64(a * b) == wrap_i64(wrap_i64(a) * wrap_i64(b))

"""Correctness tests of the detector estimators on processes with known
statistics (i.i.d., periodic, Markov) — independent of the covert-channel
setting."""

import math

import pytest

from repro.analysis.stats import (entropy_bits, equiprobable_bin_edges,
                                  quantize)
from repro.detectors.cce import corrected_conditional_entropy
from repro.detectors.regularity import regularity_statistic
from repro.determinism import SplitMix64


class TestCceEstimator:
    def test_constant_sequence_has_zero_entropy(self):
        assert corrected_conditional_entropy([3] * 200) == 0.0

    def test_periodic_sequence_is_nearly_deterministic(self):
        symbols = [0, 1, 2, 3] * 100
        cce = corrected_conditional_entropy(symbols)
        # Once one symbol of context is known the next is determined;
        # only the finite-sample correction keeps it above zero.
        assert cce < 0.2

    def test_iid_uniform_approaches_log2_q(self):
        rng = SplitMix64(7)
        symbols = [rng.randint(0, 4) for _ in range(4000)]
        cce = corrected_conditional_entropy(symbols)
        assert cce == pytest.approx(math.log2(5), abs=0.35)

    def test_markov_chain_below_iid(self):
        """A sticky Markov chain has conditional entropy well below its
        marginal entropy; CCE must see the difference."""
        rng = SplitMix64(11)
        state = 0
        sticky = []
        for _ in range(3000):
            if rng.random() < 0.9:
                pass                      # stay
            else:
                state = rng.randint(0, 4)
            sticky.append(state)
        iid = [rng.randint(0, 4) for _ in range(3000)]
        assert corrected_conditional_entropy(sticky) < \
            0.6 * corrected_conditional_entropy(iid)

    def test_correction_prevents_underestimation_on_tiny_samples(self):
        """With only a handful of samples, raw conditional entropy
        collapses (every pattern unique); the correction keeps the
        estimate near the first-order entropy instead."""
        rng = SplitMix64(13)
        tiny = [rng.randint(0, 4) for _ in range(12)]
        cce = corrected_conditional_entropy(tiny)
        first_order = entropy_bits(tiny)
        assert cce >= 0.5 * first_order

    def test_empty_sequence(self):
        assert corrected_conditional_entropy([]) == 0.0


class TestRegularityStatistic:
    def test_constant_variance_process_is_regular(self):
        # Alternating two values: every window has the same sigma.
        ipds = [5.0, 9.0] * 60
        assert regularity_statistic(ipds, 10) == pytest.approx(0.0)

    def test_growing_variance_process_is_irregular(self):
        # Variance doubles window over window.
        ipds = []
        scale = 0.1
        for _ in range(12):
            ipds.extend([10.0 - scale, 10.0 + scale] * 5)
            scale *= 2.0
        assert regularity_statistic(ipds, 10) > 1.0

    def test_degenerate_trace(self):
        assert regularity_statistic([5.0] * 40, 10) == 0.0
        assert regularity_statistic([5.0, 6.0], 10) == 0.0

    def test_window_size_effect(self):
        rng = SplitMix64(3)
        ipds = [rng.uniform(1.0, 10.0) for _ in range(200)]
        # Both window sizes produce finite, nonnegative statistics.
        for window in (5, 10, 25):
            value = regularity_statistic(ipds, window)
            assert value >= 0.0


class TestQuantization:
    def test_equiprobable_bins_balance_any_distribution(self):
        rng = SplitMix64(5)
        # A skewed (exponential) sample still quantizes evenly.
        sample = [rng.exponential(3.0) for _ in range(3000)]
        edges = equiprobable_bin_edges(sample, 5)
        counts = [0] * 5
        for symbol in quantize(sample, edges):
            counts[symbol] += 1
        assert max(counts) < 1.3 * min(counts)

    def test_entropy_of_balanced_quantization_is_high(self):
        rng = SplitMix64(9)
        sample = [rng.lognormal(1.0, 0.8) for _ in range(2000)]
        edges = equiprobable_bin_edges(sample, 8)
        symbols = quantize(sample, edges)
        assert entropy_bits(symbols) > 0.95 * math.log2(8)

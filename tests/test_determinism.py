"""Tests for the deterministic RNG substrate."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.determinism import SplitMix64, ZeroNoise, hash_string, mix64


class TestSplitMix64:
    def test_same_seed_same_stream(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(100)] == \
               [b.next_u64() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(4)] != \
               [b.next_u64() for _ in range(4)]

    def test_outputs_are_64_bit(self):
        rng = SplitMix64(7)
        for _ in range(1000):
            v = rng.next_u64()
            assert 0 <= v < (1 << 64)

    def test_fork_is_deterministic(self):
        a = SplitMix64(5).fork("bus")
        b = SplitMix64(5).fork("bus")
        assert a.next_u64() == b.next_u64()

    def test_fork_labels_distinguish(self):
        parent = SplitMix64(5)
        a = parent.fork("bus")
        parent2 = SplitMix64(5)
        b = parent2.fork("irq")
        assert a.next_u64() != b.next_u64()

    def test_forked_streams_independent_of_parent_progress(self):
        parent = SplitMix64(9)
        child = parent.fork("x")
        first = child.next_u64()
        # Advancing the parent must not change the child's stream.
        parent.next_u64()
        assert child.next_u64() != first  # stream continues

    def test_random_in_unit_interval(self):
        rng = SplitMix64(11)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_uniform_respects_bounds(self):
        rng = SplitMix64(13)
        for _ in range(1000):
            v = rng.uniform(-2.5, 7.5)
            assert -2.5 <= v < 7.5

    def test_randint_inclusive_bounds(self):
        rng = SplitMix64(17)
        seen = {rng.randint(0, 3) for _ in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_randint_single_value(self):
        rng = SplitMix64(17)
        assert rng.randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(3, 2)

    def test_exponential_mean(self):
        rng = SplitMix64(19)
        n = 20000
        mean = sum(rng.exponential(10.0) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_normal_moments(self):
        rng = SplitMix64(23)
        n = 20000
        draws = [rng.normal(3.0, 2.0) for _ in range(n)]
        mean = sum(draws) / n
        var = sum((d - mean) ** 2 for d in draws) / n
        assert mean == pytest.approx(3.0, abs=0.1)
        assert math.sqrt(var) == pytest.approx(2.0, rel=0.05)

    def test_choice_and_shuffle_deterministic(self):
        a, b = SplitMix64(3), SplitMix64(3)
        seq_a, seq_b = list(range(20)), list(range(20))
        a.shuffle(seq_a)
        b.shuffle(seq_b)
        assert seq_a == seq_b
        assert sorted(seq_a) == list(range(20))
        assert a.choice([10, 20, 30]) == b.choice([10, 20, 30])

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).choice([])

    def test_sample_bits(self):
        bits = SplitMix64(29).sample_bits(256)
        assert len(bits) == 256
        assert set(bits) <= {0, 1}
        # Should be roughly balanced.
        assert 64 < sum(bits) < 192

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_mix64_is_a_permutation_sample(self, x):
        # mix64 must be deterministic and stay in range.
        assert mix64(x) == mix64(x)
        assert 0 <= mix64(x) < (1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=100))
    def test_randint_in_bounds_property(self, seed, low, span):
        rng = SplitMix64(seed)
        v = rng.randint(low, low + span)
        assert low <= v <= low + span


class TestHashString:
    def test_deterministic(self):
        assert hash_string("nic") == hash_string("nic")

    def test_distinguishes(self):
        assert hash_string("nic") != hash_string("disk")

    def test_empty_ok(self):
        assert 0 <= hash_string("") < (1 << 64)


class TestZeroNoise:
    def test_all_draws_are_floor(self):
        z = ZeroNoise()
        assert z.next_u64() == 0
        assert z.random() == 0.0
        assert z.uniform(2.0, 5.0) == 2.0
        assert z.randint(3, 9) == 3
        assert z.exponential(100.0) == 0.0
        assert z.normal(4.0, 2.0) == 4.0
        assert z.choice([7, 8]) == 7
        assert z.sample_bits(4) == [0, 0, 0, 0]

    def test_fork_returns_self(self):
        z = ZeroNoise()
        assert z.fork("anything") is z

    def test_shuffle_is_identity(self):
        z = ZeroNoise()
        seq = [3, 1, 2]
        z.shuffle(seq)
        assert seq == [3, 1, 2]

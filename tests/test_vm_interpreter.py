"""Functional tests of the Sanity VM interpreter via assembled programs."""

import pytest

from repro.asm import assemble, disassemble
from repro.errors import GuestError, VMLoadError, VMRuntimeError
from repro.vm import Interpreter, NullPlatform, VmConfig
from repro.vm.heap import HeapConfig
from repro.vm.isa import wrap_i64


def run_program(text, entry="main", max_instructions=2_000_000):
    platform = NullPlatform()
    program = assemble(text, natives=platform, entry=entry)
    vm = Interpreter(program, platform)
    vm.run(max_instructions)
    return platform, vm


def run_expr_int(body):
    """Assemble a main that computes one int and prints it."""
    text = f"""
    .func main 0 4
        {body}
        native print_int
        ret
    """
    platform, _ = run_program(text)
    assert len(platform.printed) == 1
    return platform.printed[0]


class TestArithmetic:
    def test_iadd(self):
        assert run_expr_int("iconst 2\niconst 3\niadd") == 5

    def test_isub(self):
        assert run_expr_int("iconst 2\niconst 3\nisub") == -1

    def test_imul(self):
        assert run_expr_int("iconst -4\niconst 6\nimul") == -24

    def test_idiv_truncates_toward_zero(self):
        assert run_expr_int("iconst -7\niconst 2\nidiv") == -3
        assert run_expr_int("iconst 7\niconst -2\nidiv") == -3

    def test_irem_sign_follows_dividend(self):
        assert run_expr_int("iconst -7\niconst 2\nirem") == -1
        assert run_expr_int("iconst 7\niconst -2\nirem") == 1

    def test_wrapping_overflow(self):
        big = (1 << 62) + 12345
        assert run_expr_int(f"iconst {big}\niconst 4\nimul") == \
            wrap_i64(big * 4)

    def test_ineg(self):
        assert run_expr_int("iconst 9\nineg") == -9

    def test_shifts(self):
        assert run_expr_int("iconst 1\niconst 10\nishl") == 1024
        assert run_expr_int("iconst -8\niconst 1\nishr") == -4
        assert run_expr_int("iconst 5\niconst 65\nishl") == 10  # masked to 1

    def test_bitwise(self):
        assert run_expr_int("iconst 12\niconst 10\niand") == 8
        assert run_expr_int("iconst 12\niconst 10\nior") == 14
        assert run_expr_int("iconst 12\niconst 10\nixor") == 6

    def test_float_ops(self):
        text = """
        .func main 0 1
            fconst 1.5
            fconst 2.25
            fadd
            fconst 0.75
            fsub
            fconst 2.0
            fmul
            fconst 3.0
            fdiv
            native print_float
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed[0] == pytest.approx((1.5 + 2.25 - 0.75) * 2 / 3)

    def test_conversions(self):
        assert run_expr_int("fconst 3.9\nf2i") == 3
        assert run_expr_int("fconst -3.9\nf2i") == -3
        text = """
        .func main 0 1
            iconst 7
            i2f
            native print_float
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed[0] == 7.0

    def test_math_intrinsics(self):
        text = """
        .func main 0 1
            fconst 16.0
            fsqrt
            native print_float
            fconst 0.0
            fsin
            native print_float
            fconst 0.0
            fcos
            native print_float
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [4.0, 0.0, 1.0]

    def test_cmp(self):
        assert run_expr_int("iconst 3\niconst 5\ncmp") == -1
        assert run_expr_int("iconst 5\niconst 5\ncmp") == 0
        assert run_expr_int("iconst 7\niconst 5\ncmp") == 1
        assert run_expr_int("fconst 1.5\nfconst 2.5\ncmp") == -1


class TestControlFlow:
    def test_loop_sums(self):
        # sum 1..10
        text = """
        .func main 0 2
            iconst 0
            store 0
            iconst 10
            store 1
        loop:
            load 1
            ifle done
            load 0
            load 1
            iadd
            store 0
            load 1
            iconst 1
            isub
            store 1
            goto loop
        done:
            load 0
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [55]

    def test_all_branch_kinds(self):
        for op, value, expected in [
            ("ifeq", 0, 1), ("ifeq", 5, 0),
            ("ifne", 5, 1), ("ifne", 0, 0),
            ("iflt", -1, 1), ("iflt", 0, 0),
            ("ifle", 0, 1), ("ifle", 1, 0),
            ("ifgt", 1, 1), ("ifgt", 0, 0),
            ("ifge", 0, 1), ("ifge", -1, 0),
        ]:
            text = f"""
            .func main 0 1
                iconst {value}
                {op} yes
                iconst 0
                native print_int
                ret
            yes:
                iconst 1
                native print_int
                ret
            """
            platform, _ = run_program(text)
            assert platform.printed == [expected], (op, value)

    def test_stack_manipulation(self):
        assert run_expr_int("iconst 3\ndup\niadd") == 6
        assert run_expr_int("iconst 3\niconst 9\nswap\nisub") == 6
        assert run_expr_int("iconst 3\niconst 9\npop") == 3


class TestCallsAndGlobals:
    def test_call_with_return(self):
        text = """
        .func add2 2 2
            load 0
            load 1
            iadd
            retv
        .func main 0 1
            iconst 20
            iconst 22
            call add2
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [42]

    def test_recursion_fib(self):
        text = """
        .func fib 1 1
            load 0
            iconst 2
            cmp
            iflt base
            load 0
            iconst 1
            isub
            call fib
            load 0
            iconst 2
            isub
            call fib
            iadd
            retv
        base:
            load 0
            retv
        .func main 0 1
            iconst 12
            call fib
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [144]

    def test_globals(self):
        text = """
        .global counter
        .func bump 0 0
            gload counter
            iconst 1
            iadd
            gstore counter
            ret
        .func main 0 0
            call bump
            call bump
            call bump
            gload counter
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [3]

    def test_deep_recursion_overflows(self):
        text = """
        .func spin 1 1
            load 0
            iconst 1
            iadd
            call spin
            retv
        .func main 0 1
            iconst 0
            call spin
            pop
            ret
        """
        with pytest.raises(GuestError) as excinfo:
            run_program(text)
        assert "StackOverflow" in str(excinfo.value)


class TestArraysAndObjects:
    def test_array_roundtrip(self):
        text = """
        .func main 0 2
            iconst 5
            newarray i
            store 0
            load 0
            iconst 2
            iconst 99
            astore
            load 0
            iconst 2
            aload
            native print_int
            load 0
            arraylen
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [99, 5]

    def test_float_array_default(self):
        text = """
        .func main 0 1
            iconst 3
            newarray f
            store 0
            load 0
            iconst 0
            aload
            native print_float
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [0.0]

    def test_object_fields(self):
        text = """
        .class Point x y
        .func main 0 1
            newobj Point
            store 0
            load 0
            iconst 3
            putfield Point.x
            load 0
            iconst 4
            putfield Point.y
            load 0
            getfield Point.x
            load 0
            getfield Point.y
            iadd
            native print_int
            ret
        """
        platform, _ = run_program(text)
        assert platform.printed == [7]

    def test_index_out_of_bounds_throws(self):
        text = """
        .func main 0 1
            iconst 2
            newarray i
            store 0
            load 0
            iconst 5
            aload
            pop
            ret
        """
        with pytest.raises(GuestError) as excinfo:
            run_program(text)
        assert "IndexOutOfBounds" in str(excinfo.value)

    def test_null_reference_throws(self):
        text = """
        .func main 0 1
            iconst 0
            arraylen
            pop
            ret
        """
        with pytest.raises(GuestError) as excinfo:
            run_program(text)
        assert "NullReference" in str(excinfo.value)


class TestExceptions:
    def test_catch_guest_throw(self):
        text = """
        .func main 0 1
        try_start:
            iconst 7
            throw
        try_end:
            iconst -100
            native print_int
            ret
        handler:
            native print_int
            ret
        .catch try_start try_end handler
        """
        platform, _ = run_program(text)
        assert platform.printed == [7]

    def test_catch_division_by_zero(self):
        text = """
        .func main 0 1
        t0:
            iconst 1
            iconst 0
            idiv
            native print_int
        t1:
            ret
        handler:
            native print_int
            ret
        .catch t0 t1 handler
        """
        platform, _ = run_program(text)
        assert platform.printed == [-1]  # EXC_DIV_BY_ZERO

    def test_exception_unwinds_calls(self):
        text = """
        .func boom 0 0
            iconst 42
            throw
            ret
        .func middle 0 0
            call boom
            ret
        .func main 0 1
        t0:
            call middle
        t1:
            ret
        handler:
            native print_int
            ret
        .catch t0 t1 handler
        """
        platform, _ = run_program(text)
        assert platform.printed == [42]

    def test_uncaught_propagates_as_guest_error(self):
        text = """
        .func main 0 0
            iconst 13
            throw
            ret
        """
        with pytest.raises(GuestError):
            run_program(text)

    def test_nested_handlers_inner_wins(self):
        text = """
        .func main 0 1
        outer_start:
        inner_start:
            iconst 5
            throw
        inner_end:
            ret
        outer_end:
            ret
        inner_h:
            iconst 1
            native print_int
            ret
        outer_h:
            iconst 2
            native print_int
            ret
        .catch inner_start inner_end inner_h
        .catch outer_start outer_end outer_h
        """
        platform, _ = run_program(text)
        assert platform.printed == [1]


class TestThreading:
    def test_round_robin_interleaves_deterministically(self):
        # Two threads each bump a shared global; with deterministic
        # scheduling, the final interleaving is identical across runs.
        def run_once():
            text = """
            .global a
            .func worker 1 2
                iconst 2000
                store 1
            loop:
                load 1
                ifle done
                gload a
                iconst 1
                iadd
                gstore a
                load 1
                iconst 1
                isub
                store 1
                goto loop
            done:
                ret
            .func main 0 0
                iconst 0
                call worker
                gload a
                native print_int
                ret
            """
            platform = NullPlatform()
            program = assemble(text, natives=platform)
            vm = Interpreter(program, platform,
                             VmConfig(thread_quantum=97))
            # Spawn a second copy of worker as a real thread.
            vm.spawn_thread(program.function("worker"), [1])
            vm.run()
            return platform.printed, vm.instruction_count

        first = run_once()
        second = run_once()
        assert first == second

    def test_spawn_thread_arity_check(self):
        text = """
        .func worker 1 1
            ret
        .func main 0 0
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        vm = Interpreter(program, platform)
        with pytest.raises(VMRuntimeError):
            vm.spawn_thread(program.function("worker"), [])

    def test_all_threads_finish(self):
        text = """
        .func worker 1 1
            ret
        .func main 0 0
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        vm = Interpreter(program, platform)
        vm.spawn_thread(program.function("worker"), [5])
        vm.run()
        assert vm.live_threads == 0


class TestGarbageCollection:
    def test_gc_reclaims_garbage(self):
        # Allocate many short-lived arrays with a tiny GC threshold.
        text = """
        .func main 0 2
            iconst 300
            store 0
        loop:
            load 0
            ifle done
            iconst 64
            newarray i
            pop
            load 0
            iconst 1
            isub
            store 0
            goto loop
        done:
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        config = VmConfig(heap=HeapConfig(gc_threshold_bytes=16_384))
        vm = Interpreter(program, platform, config)
        vm.run()
        assert vm.heap.gc_runs > 0
        assert vm.heap.objects_collected > 0

    def test_gc_keeps_reachable_objects(self):
        text = """
        .global keeper
        .func main 0 2
            iconst 8
            newarray i
            dup
            iconst 0
            iconst 777
            astore
            gstore keeper
            iconst 400
            store 0
        loop:
            load 0
            ifle done
            iconst 64
            newarray i
            pop
            load 0
            iconst 1
            isub
            store 0
            goto loop
        done:
            gload keeper
            iconst 0
            aload
            native print_int
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        config = VmConfig(heap=HeapConfig(gc_threshold_bytes=16_384))
        vm = Interpreter(program, platform, config)
        vm.run()
        assert vm.heap.gc_runs > 0
        assert platform.printed == [777]

    def test_gc_determinism(self):
        def run_once():
            text = """
            .func main 0 2
                iconst 200
                store 0
            loop:
                load 0
                ifle done
                iconst 100
                newarray f
                pop
                load 0
                iconst 1
                isub
                store 0
                goto loop
            done:
                ret
            """
            platform = NullPlatform()
            program = assemble(text, natives=platform)
            config = VmConfig(heap=HeapConfig(gc_threshold_bytes=32_768))
            vm = Interpreter(program, platform, config)
            vm.run()
            return (vm.heap.gc_runs, vm.heap.objects_collected,
                    vm.instruction_count, platform.cycles)

        assert run_once() == run_once()


class TestVmMachinery:
    def test_instruction_count_advances(self):
        _, vm = run_program(".func main 0 0\n    nop\n    nop\n    ret")
        assert vm.instruction_count == 3

    def test_halt_stops_execution(self):
        platform, vm = run_program("""
        .func main 0 0
            halt
            iconst 1
            native print_int
            ret
        """)
        assert platform.printed == []
        assert vm.halted

    def test_max_instructions_limit(self):
        text = """
        .func main 0 0
        loop:
            goto loop
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        vm = Interpreter(program, platform)
        executed = vm.run(max_instructions=500)
        assert executed == 500

    def test_platform_quantum_called(self):
        text = """
        .func main 0 1
            iconst 3000
            store 0
        loop:
            load 0
            ifle done
            load 0
            iconst 1
            isub
            store 0
            goto loop
        done:
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        vm = Interpreter(program, platform, VmConfig(poll_interval=100))
        vm.run()
        assert platform.quantum_calls > 100

    def test_implicit_return_at_code_end(self):
        _, vm = run_program(".func main 0 0\n    nop")
        assert vm.live_threads == 0

    def test_operand_stack_underflow_is_host_error(self):
        with pytest.raises(VMRuntimeError):
            run_program(".func main 0 0\n    pop\n    ret")

    def test_entry_function_must_exist(self):
        with pytest.raises(VMLoadError):
            assemble(".func other 0 0\n    ret")

    def test_run_twice_is_safe(self):
        platform, vm = run_program(".func main 0 0\n    ret")
        assert vm.run() == 0


class TestDisassembler:
    def test_roundtrip_reassembles(self):
        text = """
        .class Pair a b
        .global g
        .func helper 1 2
            load 0
            iconst 1
            iadd
            retv
        .func main 0 2
            iconst 5
            call helper
            gstore g
            newobj Pair
            store 0
            load 0
            iconst 9
            putfield Pair.a
        loop:
            gload g
            ifle out
            gload g
            iconst 1
            isub
            gstore g
            goto loop
        out:
            ret
        """
        platform = NullPlatform()
        program = assemble(text, natives=platform)
        listing = disassemble(program)
        assert ".func main" in listing
        assert "putfield" in listing
        # The listing must itself be assemblable (labels are L<pc>).
        program2 = assemble(listing, natives=platform)
        assert program2.function("main").ops == program.function("main").ops
        assert program2.function("main").args == program.function("main").args

"""Fleet-level tracing contract: determinism, re-parenting, SLO gating.

The observability pillar of time-deterministic replay is that watching
the system never changes it.  Concretely:

* **Tracing is inert** — a fleet run with the tracer on produces verdict
  output bit-identical to the same run with tracing off.
* **Traces are themselves deterministic** — the merged Chrome trace and
  the NDJSON log are byte-identical across reruns and across worker
  counts (``--jobs 1`` vs ``--jobs 4``), including under chaos.
* **Causality survives node death** — when a node dies mid-audit the
  in-flight span closes ``killed`` and the redelivered job's queue-wait
  span re-parents onto it, so one trace tells the whole story through
  the crash to the final verdict.
"""

import json

import pytest

from repro.faults.plans import NodeChaosPlan, NodeCrash
from repro.obs.metrics import MetricsRegistry, split_series
from repro.service import FleetService, FleetTopology, default_tenants
from repro.tools.reproduce import main

COVERT = "tenant-01"
CHAOS = NodeChaosPlan.parse("crash:1@180,stall:2@90+500")


def _service(chaos=None, nodes=3, tenants=3, epochs=2, seed=7,
             trace=True, registry=None):
    return FleetService(
        default_tenants(tenants, requests=4),
        topology=FleetTopology(num_nodes=nodes),
        epochs=epochs, seed=seed, chaos=chaos,
        registry=registry if registry is not None else MetricsRegistry(),
        trace=trace)


def _trace_bytes(service):
    return json.dumps(service.dist.to_chrome_trace(),
                      sort_keys=True).encode()


def _razor_plan():
    """A crash timed to land while the covert tenant's escalation is in
    flight on its owner node (the hardest redelivery case)."""
    baseline = _service()
    report = baseline.run()
    escalations = sorted(
        (e for ledger in report.ledgers.values() for e in ledger.events
         if e.tenant_id == COVERT and e.kind == "escalated"),
        key=lambda e: e.start_ms)
    assert escalations, "fixture expects the covert tenant to escalate"
    target = escalations[0]
    owner = int(target.node.split("-")[1])
    crash_at = (target.start_ms + target.completion_ms) / 2.0
    return NodeChaosPlan(faults=(NodeCrash(node=owner, at_ms=crash_at),),
                         name="razor")


class TestTracingIsInert:
    def test_verdicts_bit_identical_tracing_on_vs_off(self):
        on = _service(chaos=CHAOS).run()
        off = _service(chaos=CHAOS, trace=False).run()
        assert json.dumps(on.verdicts_dict(), sort_keys=True) == \
            json.dumps(off.verdicts_dict(), sort_keys=True)

    def test_trace_off_disables_tracer_and_payloads(self):
        service = _service(trace=False)
        report = service.run()
        assert service.dist is None
        assert report.fleet_obs == {} and report.trace_ndjson == ""


class TestTraceDeterminism:
    @pytest.mark.parametrize("chaos", [None, CHAOS],
                             ids=["quiet", "chaos"])
    def test_trace_byte_identical_across_reruns(self, chaos):
        first = _service(chaos=chaos)
        second = _service(chaos=chaos)
        first.run()
        second.run()
        assert _trace_bytes(first) == _trace_bytes(second)
        assert first.dist.to_ndjson() == second.dist.to_ndjson()

    def test_trace_byte_identical_jobs_1_vs_4(self):
        serial = _service(chaos=CHAOS)
        parallel = _service(chaos=CHAOS)
        serial.run(jobs=1)
        parallel.run(jobs=4)
        assert _trace_bytes(serial) == _trace_bytes(parallel)

    def test_chaos_markers_land_on_tracks(self):
        service = _service(chaos=CHAOS)
        service.run()
        names = {i["name"] for i in service.dist.instants}
        assert "crash:node-01" in names
        assert "stall:node-02" in names
        categories = {i["category"] for i in service.dist.instants}
        assert "chaos" in categories


class TestRazorReparenting:
    """The acceptance scenario: owner dies between dispatch and verdict."""

    def test_killed_span_reparents_to_verdict(self):
        service = _service(chaos=_razor_plan())
        report = service.run()
        dist = service.dist
        assert dist.killed_spans >= 1 and dist.reparented >= 1

        killed = [s for s in dist.spans if s.status == "killed"]
        by_id = {s.span_id: s for s in dist.spans}
        chains = 0
        for wait in dist.spans:
            if wait.name != "queue-wait" or \
                    "reparented_from" not in wait.attrs:
                continue
            parent = by_id[wait.parent_id]
            assert parent.status == "killed"
            assert wait.attrs["reparented_from"] == \
                parent.attrs["killed_on"]
            assert wait.track != parent.track  # new owner, new track
            # The redelivered audit hangs off the re-parented wait and
            # ends in a verdict.
            audit = next(s for s in dist.spans
                         if s.parent_id == wait.span_id)
            assert audit.name.startswith("audit:")
            assert audit.status == "ok"
            assert "classification" in audit.attrs
            assert audit.trace_id == parent.trace_id
            chains += 1
        assert chains == len(killed) >= 1
        # Detection still lands despite the mid-flight kill.
        assert COVERT in report.flagged_tenants

    def test_razor_trace_still_byte_identical(self):
        plan = _razor_plan()
        first = _service(chaos=plan)
        second = _service(chaos=plan)
        first.run(jobs=1)
        second.run(jobs=4)
        assert _trace_bytes(first) == _trace_bytes(second)


class TestPerNodeMetricAggregates:
    def test_labeled_cache_hits_sum_to_aggregate(self):
        registry = MetricsRegistry()
        _service(chaos=CHAOS, registry=registry).run()
        snapshot = registry.snapshot()
        for family in ("tdr_replay_cache_hits_total",
                       "tdr_replay_cache_misses_total"):
            per_node = [
                entry["value"] for name, entry in snapshot.items()
                if split_series(name)[0] == family
                and split_series(name)[1].startswith("node=")]
            assert family in snapshot
            assert len(per_node) == 3  # one labeled series per node
            assert sum(per_node) == snapshot[family]["value"]
        assert snapshot["tdr_replay_cache_misses_total"]["value"] > 0


class TestSLOExitCode:
    def test_fleet_audit_breach_exits_4(self, tmp_path, capsys):
        # tenants=1 keeps the covert tenant out so the flag exit (1)
        # cannot shadow the SLO exit (4).
        code = main(["fleet-audit", "--tenants", "1", "--nodes", "2",
                     "--epochs", "1",
                     "--slo", "p99_verdict_ms=0.001"])
        assert code == 4
        out = capsys.readouterr().out
        assert "BREACH" in out and "p99_verdict_ms" in out

    def test_fleet_audit_met_slo_keeps_clean_exit(self, capsys):
        code = main(["fleet-audit", "--tenants", "1", "--nodes", "2",
                     "--epochs", "1",
                     "--slo", "p99_verdict_ms=1e9,max_unaudited=1"])
        assert code == 0
        assert "SLO" in capsys.readouterr().out

    def test_bad_slo_spec_is_a_usage_error(self, capsys):
        code = main(["fleet-audit", "--tenants", "1",
                     "--slo", "bogus_key=1"])
        assert code == 2

    def test_trace_out_writes_loadable_chrome_trace(self, tmp_path):
        out = tmp_path / "fleet-trace.json"
        main(["fleet-audit", "--tenants", "1", "--nodes", "2",
              "--epochs", "1", "--trace-out", str(out)])
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X"} <= phases

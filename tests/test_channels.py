"""Tests for the covert channel encoders/decoders."""

import pytest

from repro.analysis.experiment import NfsTrafficModel
from repro.analysis.stats import mean, stdev
from repro.channels import (Ipctc, MailboxChannel, Mbctc, NeedleChannel,
                            SchedYieldChannel, Trctc, all_channels,
                            bit_accuracy, bits_to_bytes, bytes_to_bits,
                            channel_by_name, exec_channels, random_bits)
from repro.channels.capacity import capacity_report, measure_error_rate
from repro.determinism import SplitMix64
from repro.errors import ChannelError


def legit_sample(n=240, seed=7):
    return NfsTrafficModel().ipds(n, SplitMix64(seed))


class TestCodec:
    def test_bits_bytes_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_partial_byte_padding(self):
        assert bits_to_bytes([1, 0, 1]) == bytes([0b10100000])

    def test_bit_expansion_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_invalid_bits_rejected(self):
        with pytest.raises(ChannelError):
            bits_to_bytes([0, 2])

    def test_random_bits(self):
        bits = random_bits(100, SplitMix64(1))
        assert len(bits) == 100
        assert set(bits) <= {0, 1}
        with pytest.raises(ChannelError):
            random_bits(-1, SplitMix64(1))

    def test_bit_accuracy(self):
        assert bit_accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert bit_accuracy([1, 0, 1, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        assert bit_accuracy([], [1]) == 0.0


class TestChannelContract:
    @pytest.mark.parametrize("channel", all_channels() + exec_channels(),
                             ids=lambda c: c.name)
    def test_requires_fit(self, channel):
        with pytest.raises(ChannelError):
            channel.encode([1.0, 2.0], [1, 0], SplitMix64(1))

    @pytest.mark.parametrize("channel", all_channels() + exec_channels(),
                             ids=lambda c: c.name)
    def test_delays_are_nonnegative(self, channel):
        rng = SplitMix64(3)
        channel.fit(legit_sample(), rng)
        natural = NfsTrafficModel().ipds(80, SplitMix64(11))
        bits = random_bits(channel.bits_needed(80) or 1, rng)
        delays = channel.delays_for(natural, bits, rng)
        assert len(delays) == len(natural)
        assert all(d >= 0.0 for d in delays)

    @pytest.mark.parametrize("channel", all_channels() + exec_channels(),
                             ids=lambda c: c.name)
    def test_encoding_is_seed_deterministic(self, channel):
        natural = NfsTrafficModel().ipds(50, SplitMix64(11))
        bits = [1, 0, 1, 1, 0]

        def run():
            rng = SplitMix64(5)
            channel.fit(legit_sample(), rng)
            return channel.encode(natural, bits, rng)

        assert run() == run()

    def test_rejects_non_binary_bits(self):
        channel = Ipctc()
        channel.fit(legit_sample(), SplitMix64(1))
        with pytest.raises(ChannelError):
            channel.encode([1.0], [2], SplitMix64(1))

    def test_empty_training_rejected(self):
        with pytest.raises(ChannelError):
            Ipctc().fit([], SplitMix64(1))


class TestIpctc:
    def test_roundtrip_without_jitter(self):
        channel = Ipctc(slot_ms=10.0)
        rng = SplitMix64(2)
        channel.fit(legit_sample(), rng)
        bits = random_bits(64, rng)
        natural = [8.0] * 64
        covert = channel.encode(natural, bits, rng)
        assert channel.decode(covert) == bits

    def test_two_level_encoding(self):
        channel = Ipctc(slot_ms=10.0)
        channel.fit([1.0], SplitMix64(1))
        covert = channel.encode([0.0] * 4, [0, 1, 0, 1], SplitMix64(1))
        assert covert == [10.0, 20.0, 10.0, 20.0]

    def test_validation(self):
        with pytest.raises(ChannelError):
            Ipctc(slot_ms=0)


class TestTrctc:
    def test_values_come_from_recorded_pool(self):
        channel = Trctc(sample_size=20, recalibrate=False)
        rng = SplitMix64(3)
        sample = legit_sample(20)
        channel.fit(sample, rng)
        covert = channel.encode([0.0] * 100, random_bits(100, rng), rng)
        assert set(covert) <= set(sample)
        # Replay must reuse values (the channel's statistical tell).
        assert len(set(covert)) < len(covert)

    def test_bit_separation(self):
        channel = Trctc(sample_size=40, recalibrate=False)
        rng = SplitMix64(5)
        channel.fit(legit_sample(), rng)
        zeros = channel.encode([0.0] * 50, [0], rng)
        ones = channel.encode([0.0] * 50, [1], rng)
        assert mean(ones) > mean(zeros)

    def test_decode_roundtrip(self):
        channel = Trctc(sample_size=100)
        rng = SplitMix64(7)
        channel.fit(legit_sample(), rng)
        bits = random_bits(60, rng)
        covert = channel.encode([0.0] * 60, bits, rng)
        assert bit_accuracy(bits, channel.decode(covert)) == 1.0

    def test_recalibration_matches_long_run_stats(self):
        long_sample = legit_sample(500)
        rng = SplitMix64(9)
        cal = Trctc(sample_size=30, recalibrate=True)
        cal.fit(long_sample, rng)
        pool = cal._bin0 + cal._bin1
        assert mean(pool) == pytest.approx(mean(long_sample), abs=1e-9)
        assert stdev(pool) == pytest.approx(stdev(long_sample), rel=1e-6)

    def test_small_sample_rejected(self):
        with pytest.raises(ChannelError):
            Trctc(sample_size=2)
        channel = Trctc(sample_size=10)
        with pytest.raises(ChannelError):
            channel.fit([1.0, 2.0], SplitMix64(1))


class TestMbctc:
    def test_marginal_mimics_legit(self):
        channel = Mbctc()
        rng = SplitMix64(11)
        sample = legit_sample(400)
        channel.fit(sample, rng)
        # The natural stream (which the channel suppresses and refits on)
        # is itself legit-shaped, as on a real compromised host.
        natural = NfsTrafficModel().ipds(400, SplitMix64(21))
        covert = channel.encode(natural, random_bits(400, rng), rng)
        assert mean(covert) == pytest.approx(mean(sample), rel=0.1)
        assert stdev(covert) == pytest.approx(stdev(sample), rel=0.35)

    def test_decode_roundtrip(self):
        channel = Mbctc(refit_window=10_000)  # no refits mid-trace
        rng = SplitMix64(13)
        channel.fit(legit_sample(400), rng)
        bits = random_bits(80, rng)
        covert = channel.encode([8.0] * 80, bits, rng)
        assert bit_accuracy(bits, channel.decode(covert)) == 1.0

    def test_validation(self):
        with pytest.raises(ChannelError):
            Mbctc(refit_window=2)

    def test_handles_nonpositive_training_values(self):
        channel = Mbctc()
        channel.fit([0.0, 1.0, 2.0, 3.0, 4.0], SplitMix64(1))
        covert = channel.encode([1.0] * 10, [1, 0], SplitMix64(1))
        assert all(v > 0 for v in covert)


class TestNeedle:
    def test_only_carrier_packets_touched(self):
        channel = NeedleChannel(period=10, delta_ms=2.0)
        rng = SplitMix64(17)
        channel.fit(legit_sample(), rng)
        natural = [float(i) + 5.0 for i in range(35)]
        covert = channel.encode(natural, [1, 1, 1, 1], rng)
        touched = [i for i, (a, b) in enumerate(zip(natural, covert))
                   if a != b]
        assert touched == [0, 10, 20, 30]
        assert all(covert[i] == natural[i] + 2.0 for i in touched)

    def test_zero_bits_leave_trace_untouched(self):
        channel = NeedleChannel(period=5, delta_ms=2.0)
        rng = SplitMix64(19)
        channel.fit(legit_sample(), rng)
        natural = [7.0] * 20
        assert channel.encode(natural, [0, 0, 0, 0], rng) == natural

    def test_decode_roundtrip_clean_path(self):
        channel = NeedleChannel(period=10, delta_ms=3.0)
        rng = SplitMix64(23)
        channel.fit([7.0] * 50, rng)
        natural = [7.0] * 40
        bits = [1, 0, 1, 1]
        covert = channel.encode(natural, bits, rng)
        assert channel.decode(covert) == bits

    def test_bits_needed_respects_period(self):
        channel = NeedleChannel(period=100)
        assert channel.bits_needed(120) == 1
        assert channel.bits_needed(50) == 0

    def test_validation(self):
        with pytest.raises(ChannelError):
            NeedleChannel(period=0)
        with pytest.raises(ChannelError):
            NeedleChannel(delta_ms=-1.0)


class TestSchedYieldChannel:
    def test_bit1_adds_whole_quanta(self):
        channel = SchedYieldChannel(quantum_ms=6.0, hold_quanta=2)
        channel.fit([8.0] * 20, SplitMix64(1))
        covert = channel.encode([8.0] * 4, [0, 1, 0, 1], SplitMix64(1))
        assert covert == [8.0, 20.0, 8.0, 20.0]

    def test_decode_roundtrip(self):
        channel = SchedYieldChannel()
        rng = SplitMix64(31)
        channel.fit(legit_sample(), rng)
        bits = random_bits(64, rng)
        natural = NfsTrafficModel().ipds(64, SplitMix64(33))
        covert = channel.encode(natural, bits, rng)
        assert bit_accuracy(bits, channel.decode(covert)) > 0.95

    def test_validation(self):
        with pytest.raises(ChannelError):
            SchedYieldChannel(quantum_ms=0)
        with pytest.raises(ChannelError):
            SchedYieldChannel(hold_quanta=0)


class TestMailboxChannel:
    def test_occupancy_walk_clamps(self):
        channel = MailboxChannel(per_message_ms=5.0, depth=2)
        channel.fit([10.0] * 20, SplitMix64(1))
        covert = channel.encode([10.0] * 6, [1, 1, 1, 0, 0, 0],
                                SplitMix64(1))
        # Occupancy walks 1, 2, 2 (clamped), 1, 0, 0 (clamped).
        assert covert == [15.0, 20.0, 20.0, 15.0, 10.0, 10.0]

    def test_decode_roundtrip_clean_path(self):
        channel = MailboxChannel(per_message_ms=5.0, depth=6)
        rng = SplitMix64(37)
        channel.fit([9.0] * 50, rng)
        bits = random_bits(40, rng)
        covert = channel.encode([9.0] * 40, bits, rng)
        assert channel.decode(covert) == bits

    def test_decode_under_natural_jitter(self):
        channel = MailboxChannel()
        rng = SplitMix64(41)
        channel.fit(legit_sample(), rng)
        bits = random_bits(64, rng)
        natural = NfsTrafficModel().ipds(64, SplitMix64(43))
        covert = channel.encode(natural, bits, rng)
        assert bit_accuracy(bits, channel.decode(covert)) > 0.8

    def test_validation(self):
        with pytest.raises(ChannelError):
            MailboxChannel(per_message_ms=0)
        with pytest.raises(ChannelError):
            MailboxChannel(depth=0)


class TestExecChannelRegistry:
    def test_paper_channel_set_is_unchanged(self):
        assert [c.name for c in all_channels()] == [
            "ipctc", "trctc", "mbctc", "needle"]

    def test_exec_family(self):
        assert [c.name for c in exec_channels()] == ["schedtc", "mboxtc"]

    def test_lookup_by_name(self):
        assert isinstance(channel_by_name("schedtc"), SchedYieldChannel)
        assert isinstance(channel_by_name("mboxtc"), MailboxChannel)
        with pytest.raises(ChannelError):
            channel_by_name("no-such-channel")


class TestExecChannelCapacity:
    """Capacity coverage for the scheduler/IPC family (§6.8 harness)."""

    @pytest.mark.parametrize("channel", exec_channels(),
                             ids=lambda c: c.name)
    def test_usable_capacity_without_jitter(self, channel):
        rng = SplitMix64(47)
        channel.fit(legit_sample(400, seed=48), rng)
        natural = NfsTrafficModel().ipds(240, SplitMix64(49))
        error = measure_error_rate(channel, natural, None, rng)
        assert error < 0.25
        report = capacity_report(channel, natural, None,
                                 SplitMix64(51))
        assert report.capacity_bits_per_use > 0.2
        assert report.uses_per_second > 0

    def test_schedtc_beats_mboxtc_on_error_rate(self):
        # The two-level hold is far more robust than reconstructing a
        # walk level from noisy IPDs.
        rng = SplitMix64(53)
        natural = NfsTrafficModel().ipds(240, SplitMix64(54))
        errors = {}
        for channel in exec_channels():
            channel.fit(legit_sample(400, seed=55), rng.fork(channel.name))
            errors[channel.name] = measure_error_rate(
                channel, natural, None, rng.fork(f"er-{channel.name}"))
        assert errors["schedtc"] <= errors["mboxtc"]

"""The parallel experiment fleet must be invisible in every result.

Every fleet task is rebuilt from seeds inside its worker process, so
``run_fleet(jobs=N)`` has to produce the exact list a serial loop would:
same cycles, same transmissions, same ledger totals, same AUCs.  These
tests pin that down on a small Fig 8-style slice (full NFS machine runs
plus a statistical detector matrix).
"""

from __future__ import annotations

from repro.analysis.experiment import NfsTrafficModel, run_detector_matrix
from repro.analysis.parallel import (MachineSpec, ObservedExecution,
                                     _compiled, _workload, default_jobs,
                                     execute_spec, run_fleet,
                                     run_fleet_observed)
from repro.channels import Ipctc, Trctc
from repro.detectors import all_statistical_detectors
from repro.machine import MachineConfig
from repro.obs.metrics import EMPTY_SNAPSHOT, NullRegistry
from repro.obs.snapshot import EMPTY_OBS_SNAPSHOT, ObsSnapshot

REQUESTS = 5


def _specs(n=4):
    return [MachineSpec(program="nfs", config=MachineConfig(), seed=seed,
                        workload=f"nfs:{7000 + seed}:{REQUESTS}")
            for seed in range(n)]


def _ledger_worker(spec):
    """Top-level worker: one observed play, returning its ledger totals
    alongside the timing facts (live results never cross the pool)."""
    from repro.core.tdr import play
    from repro.obs import Observability

    result = play(_compiled(spec.program), spec.config,
                  workload=_workload(spec), seed=spec.seed,
                  obs=Observability())
    return (result.total_cycles, result.instructions, result.tx,
            result.ledger)


def test_fleet_bit_identical_to_serial():
    specs = _specs(4)
    serial = run_fleet(specs, jobs=1)
    parallel = run_fleet(specs, jobs=4)
    assert len(parallel) == len(serial) == 4
    for ser, par in zip(serial, parallel):
        assert par.total_cycles == ser.total_cycles
        assert par.instructions == ser.instructions
        assert par.tx == ser.tx
        assert par.tx_times_ms() == ser.tx_times_ms()


def test_fleet_ledger_totals_match_serial():
    specs = _specs(3)
    serial = run_fleet(specs, jobs=1, worker=_ledger_worker)
    parallel = run_fleet(specs, jobs=3, worker=_ledger_worker)
    assert parallel == serial
    assert all(ledger for _, _, _, ledger in parallel)


def test_replay_spec_round_trips():
    played = execute_spec(_specs(1)[0])
    replay_spec = MachineSpec(program="nfs", config=MachineConfig(),
                              seed=31, mode="replay",
                              log_bytes=played.log.to_bytes())
    direct = execute_spec(replay_spec)
    via_fleet = run_fleet([replay_spec, replay_spec], jobs=2)
    for result in via_fleet:
        assert result.total_cycles == direct.total_cycles
        assert result.tx == direct.tx


def test_detector_matrix_jobs_parity():
    def matrix(jobs):
        cells = run_detector_matrix([Ipctc(), Trctc()],
                                    all_statistical_detectors,
                                    model=NfsTrafficModel(),
                                    num_training=8, num_test=6,
                                    packets_per_trace=40, seed=7,
                                    jobs=jobs)
        return [(c.channel, c.detector, c.auc, c.roc.points)
                for c in cells]

    assert matrix(jobs=2) == matrix(jobs=1)


def test_observed_fleet_merge_bit_identical_to_serial():
    """The acceptance bar for fleet observability: run_fleet_observed at
    jobs=4 merges worker snapshots into exactly the ledger totals and
    metrics counters the serial jobs=1 path produces — bit-identical,
    not approximately equal."""
    specs = _specs(4)
    serial_results, serial_obs = run_fleet_observed(specs, jobs=1)
    fleet_results, fleet_obs = run_fleet_observed(specs, jobs=4)

    for ser, par in zip(serial_results, fleet_results):
        assert par.total_cycles == ser.total_cycles
        assert par.tx == ser.tx
    assert fleet_obs.ledger_totals() == serial_obs.ledger_totals()
    assert fleet_obs.ledger_totals()          # non-empty: obs survived
    assert fleet_obs.registry.snapshot() == serial_obs.registry.snapshot()
    assert fleet_obs.registry.render() == serial_obs.registry.render()
    assert fleet_obs.workers == serial_obs.workers == 4
    assert fleet_obs.spans == serial_obs.spans
    # Per-run ledgers sum exactly to the merged totals (accounting is
    # conserved across the process boundary).
    merged_sum = sum(fleet_obs.ledger_totals().values())
    assert merged_sum == sum(r.total_cycles for r in fleet_results)


def test_observed_specs_return_snapshot_alongside_result():
    spec = _specs(1)[0]
    plain = execute_spec(spec)
    observed = execute_spec(MachineSpec(**{**spec.__dict__, "observe": True}))
    assert isinstance(observed, ObservedExecution)
    assert observed.result.total_cycles == plain.total_cycles
    assert observed.result.tx == plain.tx
    assert not observed.snapshot.empty
    assert observed.snapshot.ledger
    assert sum(observed.snapshot.ledger.values()) == plain.total_cycles
    assert observed.snapshot.metrics["tdr_runs_total"]["value"] == 1.0


def test_null_registry_fast_path_is_allocation_free():
    """The disabled path hands out shared singletons — no per-call dicts
    or snapshot objects on the hot path."""
    registry = NullRegistry()
    assert registry.snapshot() is EMPTY_SNAPSHOT
    assert registry.snapshot() is registry.snapshot()
    registry.merge_snapshot({"x": {"kind": "counter", "value": 1.0}})
    assert registry.render() == ""
    assert ObsSnapshot.capture(None) is EMPTY_OBS_SNAPSHOT
    assert EMPTY_OBS_SNAPSHOT.empty


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1

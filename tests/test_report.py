"""Text and HTML rendering of stored runs.

The text renderer must reproduce run-time stdout verbatim (same format
strings, same sort order); the HTML renderer must emit well-formed SVG
with the palette, table-twin, and dark-mode obligations of the report's
design rules.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from html.parser import HTMLParser

from repro.obs.ledger import format_attribution_table
from repro.obs.report import (fig6_lines, phase_rows, render_html,
                              render_text)
from repro.obs.runstore import RunRecord

FIG6 = {"kernels": ["SOR", "FFT"], "scenarios": ["dirty", "clean"],
        "spreads": {"SOR": {"dirty": 131.381, "clean": 0.339},
                    "FFT": {"dirty": 103.326, "clean": 0.051}}}


def _record(**overrides) -> RunRecord:
    fields = dict(
        kind="fig6", label="unit",
        metrics={"phase_bench_seconds": {
            "kind": "histogram", "help": "t", "buckets": [1.0],
            "bucket_counts": [2, 1], "count": 3, "sum": 4.5,
            "min": 0.5, "max": 2.5}},
        ledgers={"play": {"cpu.exec": 900, "covert.delay": 100}},
        figures={"fig6": FIG6,
                 "table1": {"tables": [{"ledger": "play",
                                        "total_cycles": 1000,
                                        "title": "play (dirty, "
                                                 "1,000 cycles)"}]}},
        verdicts={"consistent": True})
    fields.update(overrides)
    return RunRecord(**fields)


class TestTextRendering:
    def test_fig6_lines_match_runtime_format(self):
        lines = fig6_lines(FIG6)
        assert lines[0] == f"  {'kernel':8s} {'dirty':>10s} {'clean':>10s}"
        assert lines[1] == f"  {'SOR':8s} {131.381:>9.3f}% {0.339:>9.3f}%"
        assert lines[2] == f"  {'FFT':8s} {103.326:>9.3f}% {0.051:>9.3f}%"

    def test_render_text_reproduces_attribution_table(self):
        text = render_text(_record(), "fig6-abc")
        expected = format_attribution_table(
            {"cpu.exec": 900, "covert.delay": 100}, 1000,
            title="play (dirty, 1,000 cycles)")
        assert expected in text
        assert "accounting exact" in text

    def test_render_text_includes_header_and_verdicts(self):
        text = render_text(_record(), "fig6-abc")
        assert text.startswith("run fig6-abc (fig6) — unit")
        assert "consistent: True" in text
        for line in fig6_lines(FIG6):
            assert line in text

    def test_phase_rows_from_snapshot(self):
        rows = phase_rows(_record().metrics)
        assert rows == [("bench", 3, 4.5)]
        assert phase_rows({"other_metric": {"kind": "counter",
                                            "value": 1.0}}) == []


class _Balanced(HTMLParser):
    VOID = {"meta", "br", "hr", "img", "input", "link"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, \
            f"unbalanced </{tag}> (open: {self.stack[-3:]})"
        self.stack.pop()


def _svgs(document: str) -> list[ET.Element]:
    return [ET.fromstring(svg)
            for svg in re.findall(r"<svg.*?</svg>", document, re.S)]


class TestHtmlRendering:
    def test_document_is_balanced_and_self_contained(self):
        document = render_html([("fig6-abc", _record())])
        parser = _Balanced()
        parser.feed(document)
        assert not parser.stack
        assert "<script" not in document and "http" not in document.lower()
        assert "prefers-color-scheme: dark" in document

    def test_every_chart_has_a_table_twin(self):
        document = render_html([("fig6-abc", _record())])
        assert document.count("<svg") >= 2          # fig6 + waterfall
        assert document.count("Data table") >= 2

    def test_svgs_are_well_formed_with_sane_geometry(self):
        for root in _svgs(render_html([("fig6-abc", _record())])):
            assert root.get("viewBox")
            for el in root.iter():
                for attr in ("x", "y", "width", "height"):
                    value = el.get(attr)
                    if value is not None:
                        assert float(value) >= -0.01

    def test_waterfall_total_label_matches_ledger_sum(self):
        document = render_html([("fig6-abc", _record())])
        assert "1,000" in document       # total bar label = ledger sum

    def test_roc_legend_and_series_cap(self):
        curves = [{"detector": f"d{i}", "auc": 0.5 + i / 100,
                   "points": [[0.0, 0.0], [0.5, 0.8], [1.0, 1.0]]}
                  for i in range(10)]
        record = RunRecord(kind="fig8",
                           figures={"fig8": {"channel": "ipctc",
                                             "curves": curves,
                                             "matrix": []}})
        document = render_html([("fig8-abc", record)])
        assert document.count("<polyline") == 8      # categorical cap
        assert 'class="legend"' in document
        # labels use text ink, never a series color
        for match in re.finditer(r"<text[^>]*>", document):
            assert "--s1" not in match.group(0)

    def test_text_numbers_match_between_renderers(self):
        record = _record()
        html_doc = render_html([("fig6-abc", record)])
        for kernel in FIG6["kernels"]:
            for scenario in FIG6["scenarios"]:
                value = FIG6["spreads"][kernel][scenario]
                assert f"{value:.3f}%" in html_doc

    def test_empty_record_renders(self):
        document = render_html([("x-1", RunRecord(kind="x"))])
        parser = _Balanced()
        parser.feed(document)
        assert not parser.stack

"""Tests for the observability package (repro.obs)."""

import json

import pytest

from repro.apps import (build_nfs_program, build_nfs_workload, compile_app,
                        zero_array_source)
from repro.core.tdr import play, replay, round_trip
from repro.determinism import SplitMix64
from repro.errors import ObservabilityError
from repro.machine.noise import scenario_config
from repro.obs import (KNOWN_SOURCES, MITIGATED_SOURCES, Counter, CycleLedger,
                       Gauge, Histogram, MetricsRegistry, NullRegistry,
                       Observability, OpcodeSampler, Source, SpanTracer,
                       capture_divergence, format_attribution_table,
                       format_process_table, get_registry, set_registry)
from repro.obs.metrics import NULL_INSTRUMENT


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("reqs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5 and h.max == 500
        assert h.bucket_counts() == {1.0: 1, 10.0: 2, 100.0: 3}
        assert h.mean == pytest.approx(138.875)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("bad", buckets=(10.0, 1.0))

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ObservabilityError):
            reg.gauge("a")  # name already taken by a counter
        assert len(reg) == 1

    def test_registry_collect_and_render(self):
        reg = MetricsRegistry()
        reg.counter("runs", help="total runs").inc(3)
        reg.histogram("cycles", buckets=(10.0, 100.0)).observe(42)
        snap = reg.collect()
        assert snap["runs"] == 3
        assert snap["cycles_count"] == 1 and snap["cycles_sum"] == 42
        text = reg.render()
        assert "# TYPE runs counter" in text
        assert '# HELP runs total runs' in text
        assert 'cycles_bucket{le="100"} 1' in text
        assert 'cycles_bucket{le="+Inf"} 1' in text

    def test_labeled_histogram_renders_valid_exposition(self):
        # The regression: labeled histograms used to render
        # 'x{node="n"}_bucket{le="..."}' — suffix after the braces,
        # which no Prometheus parser accepts.  Labels must merge into
        # the sample's own label set.
        from repro.obs.metrics import labeled

        reg = MetricsRegistry()
        reg.histogram(labeled("lat_ms", node="node-01"),
                      help="per-node latency",
                      buckets=(1.0, 10.0)).observe(5)
        reg.histogram(labeled("lat_ms", node="node-02"),
                      buckets=(1.0, 10.0)).observe(0.5)
        text = reg.render()
        assert 'lat_ms_bucket{node="node-01",le="10"} 1' in text
        assert 'lat_ms_bucket{node="node-02",le="1"} 1' in text
        assert 'lat_ms_bucket{node="node-01",le="+Inf"} 1' in text
        assert 'lat_ms_sum{node="node-01"} 5' in text
        assert 'lat_ms_count{node="node-02"} 1' in text
        assert "}_bucket" not in text and "}_sum" not in text \
            and "}_count" not in text
        # One HELP/TYPE block per family, not per labeled series.
        assert text.count("# TYPE lat_ms histogram") == 1
        assert text.count("# HELP lat_ms per-node latency") == 1

    def test_labeled_counter_merges_label_sets(self):
        from repro.obs.metrics import labeled

        reg = MetricsRegistry()
        reg.counter(labeled("hits", node="n0", tier="shared")).inc(2)
        text = reg.render()
        assert 'hits{node="n0",tier="shared"} 2' in text

    def test_labeled_escapes_and_validates(self):
        from repro.obs.metrics import labeled, split_series

        name = labeled("x", node='we"ird\\path\nnl')
        base, inner = split_series(name)
        assert base == "x"
        assert inner == 'node="we\\"ird\\\\path\\nnl"'
        with pytest.raises(ObservabilityError):
            labeled("x", **{"bad-name": "v"})
        with pytest.raises(ObservabilityError):
            labeled("x", **{"0leading": "v"})

    def test_histogram_snapshot_roundtrip_stays_cumulative(self):
        # Wire format is cumulative (stored-run compat); the in-memory
        # representation is per-bucket.  Merging must de-accumulate.
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        reg = MetricsRegistry()
        reg._instruments["lat"] = h
        snap = reg.snapshot()
        assert snap["lat"]["bucket_counts"] == [1, 2, 3]
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        other.merge_snapshot(snap)
        merged = other.snapshot()["lat"]
        assert merged["bucket_counts"] == [2, 4, 6]
        assert merged["count"] == 8

    def test_null_registry_drops_everything(self):
        reg = NullRegistry()
        assert not reg.enabled
        inst = reg.counter("x")
        assert inst is NULL_INSTRUMENT
        inst.inc()
        inst.observe(5)
        inst.set(9)
        assert inst.value == 0.0
        assert reg.collect() == {}
        assert reg.render() == ""
        assert len(reg) == 0

    def test_global_registry_swap(self):
        original = get_registry()
        try:
            mine = MetricsRegistry()
            assert set_registry(mine) is original
            assert get_registry() is mine
        finally:
            set_registry(original)


class TestCycleLedger:
    def test_charge_and_totals(self):
        ledger = CycleLedger()
        ledger.charge(Source.CACHE, 10)
        ledger.charge(Source.CACHE, 5)
        ledger.charge(Source.BUS, 100)
        assert ledger.get(Source.CACHE) == 15
        assert ledger.get(Source.TLB) == 0
        assert ledger.total == 115
        assert ledger.charges == 3
        assert list(ledger.totals()) == [Source.BUS, Source.CACHE]

    def test_delta(self):
        a, b = CycleLedger(), CycleLedger()
        a.charge(Source.COVERT, 1000)
        a.charge(Source.CACHE, 50)
        b.charge(Source.CACHE, 50)
        b.charge(Source.TLB, 7)
        assert a.delta(b) == {Source.COVERT: 1000, Source.TLB: -7}
        assert a.delta(b.totals()) == a.delta(b)

    def test_reset(self):
        ledger = CycleLedger()
        ledger.charge(Source.GC, 1)
        ledger.reset()
        assert ledger.total == 0 and ledger.charges == 0

    def test_known_sources_cover_mitigated(self):
        assert set(MITIGATED_SOURCES) <= set(KNOWN_SOURCES)
        assert len(set(KNOWN_SOURCES)) == len(KNOWN_SOURCES)

    def test_format_table_exact(self):
        text = format_attribution_table({"cache": 30, "bus": 70}, 100)
        assert "accounting exact" in text
        assert "70.00%" in text

    def test_format_table_mismatch(self):
        text = format_attribution_table({"cache": 30}, 100)
        assert "MISMATCH" in text

    def test_process_dimension(self):
        ledger = CycleLedger()
        ledger.charge(Source.CACHE, 5)            # unlabeled: aggregate only
        ledger.process = "alpha"
        ledger.charge(Source.INSTRUCTION, 100)
        ledger.process = "beta"
        ledger.charge(Source.INSTRUCTION, 40)
        ledger.charge(Source.SCHED, 10)
        ledger.process = None
        per_process = ledger.process_totals()
        assert per_process == {"alpha": {Source.INSTRUCTION: 100},
                               "beta": {Source.INSTRUCTION: 40,
                                        Source.SCHED: 10}}
        # The aggregate includes labeled and unlabeled charges alike.
        assert ledger.total == 155
        ledger.reset()
        assert ledger.process is None and ledger.process_totals() == {}

    def test_format_process_table(self):
        totals = {"relay": {Source.INSTRUCTION: 60, Source.CACHE: 10},
                  "(exec)": {Source.SCHED: 30}}
        text = format_process_table(totals, 100)
        assert "accounting exact" in text
        assert "relay" in text and "(exec)" in text
        assert "70.00%" in text
        assert "MISMATCH" in format_process_table(totals, 101)


class TestSpanTracer:
    def test_span_balance_enforced(self):
        tracer = SpanTracer()
        tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(ObservabilityError):
            tracer.end("outer")
        tracer.end("inner")
        tracer.end("outer")

    def test_span_context_manager(self):
        tracer = SpanTracer()
        with tracer.span("work", items=3):
            tracer.instant("tick")
        phases = [e["ph"] for e in tracer.events]
        assert phases == ["B", "i", "E"]

    def test_bind_creates_named_tracks(self):
        clock = [0.0]
        tracer = SpanTracer()
        tracer.bind(lambda: clock[0], track="play:test")
        tracer.instant("a")
        clock[0] = 2_000.0  # 2000 ns -> ts of 2.0 us
        tracer.bind(lambda: clock[0], track="replay:test")
        tracer.instant("b")
        meta = [e for e in tracer.events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["play:test",
                                                     "replay:test"]
        a, b = [e for e in tracer.events if e["ph"] == "i"]
        assert a["tid"] != b["tid"]
        assert b["ts"] == pytest.approx(2.0)

    def test_exports(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("s"):
            pass
        chrome = tracer.to_chrome_trace()
        assert chrome["traceEvents"] == tracer.events
        path = tmp_path / "t.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["otherData"]["producer"] \
            == "repro.obs"
        ndjson = tracer.to_ndjson()
        assert len(ndjson.strip().splitlines()) == len(tracer)


class TestOpcodeSampler:
    def test_record_and_histogram(self):
        from repro.vm.isa import Op

        sampler = OpcodeSampler(stride=10)
        for _ in range(3):
            sampler.record(int(Op.IADD))
        sampler.record(int(Op.LOAD))
        assert sampler.samples == 4
        hist = sampler.histogram()
        assert hist["IADD"] == 3 and hist["LOAD"] == 1
        assert sampler.top(1) == [("IADD", 3)]
        assert sampler.estimated_instructions() == 40

    def test_unknown_opcode_fallback(self):
        """Unknown opcodes use the same ``OP_<code>`` spelling as the
        sites export, so one parser round-trips both halves of an
        export (see ``OpcodeSampler.from_export``)."""
        sampler = OpcodeSampler()
        sampler.record(0xDEAD)
        assert sampler.histogram() == {"OP_57005": 1}
        assert OpcodeSampler.from_export(sampler.export()).export() == \
            sampler.export()


class _FakeResult:
    def __init__(self, tx, ledger=None, total_cycles=0):
        self.tx = tx
        self.ledger = ledger
        self.total_cycles = total_cycles


class TestFlightRecorder:
    def test_capture_covert_signature(self):
        record = capture_divergence(
            _FakeResult([(100, b"a"), (250, b"b")],
                        ledger={"covert": 900, "cache": 50},
                        total_cycles=1000),
            _FakeResult([(100, b"a"), (150, b"b")],
                        ledger={"cache": 50}, total_cycles=100),
            reason="IPD deviation")
        assert record.dominant_source == "covert"
        assert record.source_deltas == {"covert": 900}
        assert record.first_payload_mismatch is None
        assert record.play_cycles == 1000 and record.replay_cycles == 100
        assert "IPD deviation" in record.summary()
        assert "covert +900" in record.summary()

    def test_payload_mismatch_index(self):
        record = capture_divergence(
            _FakeResult([(1, b"a"), (2, b"X")]),
            _FakeResult([(1, b"a"), (2, b"Y"), (3, b"c")]))
        assert record.first_payload_mismatch == 1

    def test_count_mismatch_without_payload_diff(self):
        record = capture_divergence(
            _FakeResult([(1, b"a")]),
            _FakeResult([(1, b"a"), (2, b"b")]))
        assert record.first_payload_mismatch == 1

    def test_long_payload_preview_truncated(self):
        record = capture_divergence(
            _FakeResult([(1, b"0123456789abcdef")]), _FakeResult([]))
        (_, preview), = record.play_tail
        assert preview.endswith("..+8B")


class TestObservabilityIntegration:
    """End-to-end: the collectors wired through a real machine run."""

    def test_ledger_sums_to_total_cycles(self):
        obs = Observability()
        program = compile_app(zero_array_source(elements=512))
        result = play(program, scenario_config("user-noisy"), seed=0,
                      obs=obs)
        assert result.ledger is not None
        assert sum(result.ledger.values()) == result.total_cycles
        assert set(result.ledger) <= set(KNOWN_SOURCES)
        assert result.ledger[Source.INSTRUCTION] > 0

    def test_exec_process_ledger_sums_to_clock(self):
        """The ``cycles{process=...}`` dimension closes exactly: every
        cycle of a multi-process run lands in some process bucket (the
        executive's own overhead under ``(exec)``), so per-process sums
        equal the clock — Table 1, per process."""
        from repro.exec import KERNEL, exec_play, exec_scenario

        result = exec_play(exec_scenario("pipeline"), obs=Observability())
        per_process = result.process_ledger
        assert per_process is not None
        assert KERNEL in per_process
        # producer, ticker, spawned filter, plus the executive bucket.
        assert len(per_process) == 4
        total = sum(sum(sources.values())
                    for sources in per_process.values())
        assert total == result.total_cycles
        # The unlabeled aggregate agrees with the same clock reading.
        assert sum(result.ledger.values()) == result.total_cycles
        # Scheduling overhead is attributed, and IPC cycles hit the
        # processes that actually touched mailboxes.
        assert per_process[KERNEL][Source.SCHED] > 0
        rendered = format_process_table(per_process, result.total_cycles)
        assert "accounting exact" in rendered

    def test_sanity_config_zeroes_mitigated_sources(self):
        # Table 1: each mitigation removes exactly its noise source; the
        # fully mitigated (Sanity) configuration leaves none of them.
        obs = Observability()
        program = compile_app(zero_array_source(elements=8192))
        noisy = play(program, scenario_config("user-noisy"), seed=0,
                     obs=obs)
        sane = play(program, scenario_config("sanity"), seed=0, obs=obs)
        assert sum(noisy.ledger.get(s, 0)
                   for s in (Source.INTERRUPT, Source.PREEMPT)) > 0
        for source in MITIGATED_SOURCES:
            assert sane.ledger.get(source, 0) == 0
        assert sum(sane.ledger.values()) == sane.total_cycles

    def test_covert_schedule_attributed_and_flagged(self):
        # The §5.3 signature: play on the compromised machine carries a
        # covert share that the clean audit replay does not reproduce.
        program = build_nfs_program()
        workload = build_nfs_workload(SplitMix64(5), num_requests=8)
        schedule = [0] * 8
        schedule[3] = 6_800_000
        obs = Observability()
        outcome = round_trip(program, None, workload=workload,
                             covert_schedule=schedule, obs=obs)
        assert outcome.play.ledger[Source.COVERT] == 6_800_000
        assert outcome.replay.ledger.get(Source.COVERT, 0) == 0
        assert not outcome.audit.is_consistent()
        flight = outcome.audit.flight
        assert flight is not None
        assert flight.source_deltas.get(Source.COVERT) == 6_800_000

    def test_round_trip_shares_tracer_across_tracks(self):
        obs = Observability()
        program = compile_app(zero_array_source(elements=512))
        workload = build_nfs_workload(SplitMix64(2), num_requests=3)
        round_trip(build_nfs_program(), None, workload=workload, obs=obs)
        tracks = [e["args"]["name"] for e in obs.tracer.events
                  if e["ph"] == "M"]
        assert any(t.startswith("play:") for t in tracks)
        assert any(t.startswith("replay:") for t in tracks)
        names = {e["name"] for e in obs.tracer.events}
        assert {"machine.run", "vm.execute", "event.packet"} <= names

    def test_opcode_histogram_on_result(self):
        obs = Observability()
        program = compile_app(zero_array_source(elements=512))
        result = play(program, None, seed=0, obs=obs)
        assert result.opcodes
        assert sum(result.opcodes.values()) > 0

    def test_metrics_recorded_per_run(self):
        obs = Observability()
        program = compile_app(zero_array_source(elements=512))
        play(program, None, seed=0, obs=obs)
        snap = obs.registry.collect()
        assert snap["tdr_runs_total"] == 1
        assert snap["tdr_runs_play_total"] == 1
        assert snap["tdr_run_cycles_count"] == 1

    def test_obs_disabled_result_has_no_artifacts(self):
        program = compile_app(zero_array_source(elements=512))
        result = play(program, None, seed=0)
        assert result.ledger is None
        assert result.opcodes is None

"""Tests for the machine natives' guest-visible error behaviour.

Host-detected faults in native calls surface as *guest* exceptions, so a
guest program can catch them with try/catch — and, crucially for TDR, the
control flow taken is identical in play and replay (the fault is a
deterministic function of guest state).
"""

import pytest

from repro.apps import compile_app
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.errors import GuestError
from repro.machine import InteractiveClient, MachineConfig, Request


def run(source, workload=None, seed=0, covert_schedule=None):
    program = compile_app(source)
    return play(program, MachineConfig(), workload=workload, seed=seed,
                covert_schedule=covert_schedule)


class TestNativeFaults:
    def test_send_packet_bad_length_throws_catchable(self):
        result = run("""
        void main() {
            int[] buf = new int[4];
            try {
                send_packet(buf, 10);
            } catch (e) {
                print_int(e);
            }
            exit();
        }
        """)
        assert result.console == [-2]   # EXC_INDEX_OUT_OF_BOUNDS
        assert result.tx == []

    def test_send_packet_negative_length(self):
        result = run("""
        void main() {
            int[] buf = new int[4];
            try { send_packet(buf, 0 - 1); } catch (e) { print_int(e); }
            exit();
        }
        """)
        assert result.console == [-2]

    def test_storage_read_negative_block(self):
        result = run("""
        void main() {
            int[] buf = new int[64];
            try { storage_read(0 - 5, buf); } catch (e) { print_int(e); }
            exit();
        }
        """)
        assert result.console == [-2]

    def test_null_buffer_faults_when_packet_arrives(self):
        from repro.machine import ScriptedArrivals

        # recv into a null buffer is harmless while nothing is pending
        # (the copy never happens) and faults the moment a packet lands.
        result = run("""
        void main() {
            int[] nothing;
            print_int(recv_packet(nothing));    // nothing pending: -1
            try { wait_packet(nothing); } catch (e) { print_int(e); }
            exit();
        }
        """, workload=ScriptedArrivals([(1_000_000, b"ping")]))
        assert result.console == [-1, -3]   # then EXC_NULL_REFERENCE

    def test_covert_delay_negative(self):
        result = run("""
        void main() {
            try { covert_delay(0 - 100); } catch (e) { print_int(e); }
            exit();
        }
        """)
        assert result.console == [-2]

    def test_busy_cycles_negative(self):
        result = run("""
        void main() {
            try { busy_cycles(0 - 1); } catch (e) { print_int(e); }
            exit();
        }
        """)
        assert result.console == [-2]

    def test_spawn_bad_function_index(self):
        result = run("""
        void main() {
            // spawn() is type-checked in MiniJ, so exercise the raw
            // native path indirectly via a bad index computed at runtime
            // is impossible from MiniJ; instead check the checked path.
            print_int(1);
            exit();
        }
        """)
        assert result.console == [1]

    def test_uncaught_native_fault_kills_guest(self):
        with pytest.raises(GuestError):
            run("""
            void main() {
                int[] buf = new int[2];
                send_packet(buf, 99);
                exit();
            }
            """)


class TestNativeFaultReplayConsistency:
    def test_fault_path_replays_identically(self):
        """A guest that catches a native fault replays bit-identically:
        the fault is deterministic guest state, not noise."""
        source = """
        void main() {
            int[] buf = new int[4];
            int[] request = new int[64];
            int n = wait_packet(request);
            try {
                send_packet(buf, request[0]);   // too long: throws
            } catch (e) {
                buf[0] = 0 - e;
                send_packet(buf, 2);            // report the error code
            }
            exit();
        }
        """
        program = compile_app(source)
        workload = InteractiveClient([Request(bytes([99]))], SplitMix64(5))
        observed = play(program, MachineConfig(), workload=workload, seed=0)
        assert observed.tx[0][1][0] == 2   # -(-2)
        reference = replay(program, observed.log, MachineConfig(), seed=9)
        assert [p for _, p in reference.tx] == [p for _, p in observed.tx]
        assert reference.instructions == observed.instructions


class TestBusyCycles:
    def test_busy_cycles_advance_clock_not_instructions(self):
        quiet = run("void main() { exit(); }")
        busy = run("void main() { busy_cycles(5000000); exit(); }")
        assert busy.total_cycles > quiet.total_cycles + 4_000_000
        assert busy.instructions <= quiet.instructions + 3

    def test_busy_cycles_deterministic_with_zero_sigma(self):
        source = "void main() { busy_cycles(1000000); exit(); }"
        program = compile_app(source)
        config = MachineConfig(speculation_sigma=0.0)
        a = play(program, config, seed=1)
        b = play(program, config, seed=2)
        assert a.total_cycles == b.total_cycles

"""Unit tests for repro.obs.dist: tracer, SLO spec, exports.

Fleet-integration coverage (byte-identical traces under chaos, span
re-parenting across node death, tracing on/off verdict identity) lives
in tests/test_fleet_tracing.py; this file exercises the tracer and the
SLO machinery directly, with hand-built jobs.
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.dist import (FLEET_TRACK, DistTracer, SLOSpec,
                            derive_trace_id, evaluate_slo, nearest_rank)
from repro.service.queue import AuditJob


def _job(tenant="tenant-00", epoch=0, kind="spot", cause="segment:0",
         ready=10.0, start=12.0, completion=20.0, service=8.0):
    job = AuditJob(tenant_id=tenant, epoch=epoch, kind=kind, priority=2,
                   ready_ms=ready, deadline_ms=ready + 2000.0,
                   budget_instructions=1000, cause=cause)
    job.start_ms = start
    job.completion_ms = completion
    job.service_ms = service
    job.worker = 0
    return job


class _Event:
    """The slice of AuditEvent job_completed reads."""

    class _Cls:
        value = "clean"

    classification = _Cls()
    tenant_status = "normal"


class TestTraceId:
    def test_content_derived_and_stable(self):
        a = derive_trace_id(7, "tenant-00", 0)
        assert a == derive_trace_id(7, "tenant-00", 0)
        assert len(a) == 16 and int(a, 16) >= 0

    def test_distinct_per_session_and_seed(self):
        ids = {derive_trace_id(s, t, e)
               for s in (0, 7) for t in ("tenant-00", "tenant-01")
               for e in (0, 1)}
        assert len(ids) == 8


class TestNearestRank:
    def test_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert nearest_rank(values, 0.50) == 50.0
        assert nearest_rank(values, 0.99) == 99.0
        assert nearest_rank([5.0], 0.99) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ObservabilityError):
            nearest_rank([], 0.5)


class TestDistTracer:
    def test_session_and_job_lifecycle(self):
        tracer = DistTracer(seed=7)
        tracer.register_track("node-00")
        job = _job()
        tracer.session_start(job.tenant_id, job.epoch, 5.0)
        tracer.job_dispatched(job, "node-00")
        tracer.job_completed(job, "node-00", _Event())
        tracer.session_close(job.tenant_id, job.epoch, 20.0, "ok")

        by_name = {span.name: span for span in tracer.spans}
        root = by_name["session:tenant-00@e0"]
        wait = by_name["queue-wait"]
        audit = by_name["audit:spot"]
        assert root.track == FLEET_TRACK and root.status == "ok"
        assert wait.parent_id == root.span_id
        assert audit.parent_id == wait.span_id
        assert (wait.start_ms, wait.end_ms) == (10.0, 12.0)
        assert (audit.start_ms, audit.end_ms) == (12.0, 20.0)
        assert audit.attrs["classification"] == "clean"
        assert all(span.trace_id == derive_trace_id(7, "tenant-00", 0)
                   for span in tracer.spans)

    def test_kill_and_reparent_chain(self):
        tracer = DistTracer(seed=0)
        job = _job(kind="escalated", cause="spot-anomaly:segment:0")
        tracer.session_start(job.tenant_id, job.epoch, 5.0)
        tracer.job_dispatched(job, "node-02")
        tracer.job_killed(job, "node-02", 15.0)
        killed = [s for s in tracer.spans if s.status == "killed"]
        assert len(killed) == 1 and killed[0].end_ms == 15.0
        assert killed[0].attrs["killed_on"] == "node-02"

        # Redelivery: same identity, new owner, later times.
        redelivered = _job(kind="escalated",
                           cause="spot-anomaly:segment:0",
                           ready=30.0, start=31.0, completion=40.0)
        tracer.job_dispatched(redelivered, "node-00")
        tracer.job_completed(redelivered, "node-00", _Event())
        waits = [s for s in tracer.spans if s.name == "queue-wait"]
        assert waits[-1].parent_id == killed[0].span_id
        assert waits[-1].attrs["reparented_from"] == "node-02"
        assert tracer.killed_spans == 1 and tracer.reparented == 1
        audit = [s for s in tracer.spans
                 if s.name == "audit:escalated"][-1]
        assert audit.status == "ok" and audit.track == "node-00"

    def test_escalation_parents_on_spot_span(self):
        tracer = DistTracer()
        spot = _job(kind="spot", cause="segment:0")
        tracer.session_start(spot.tenant_id, spot.epoch, 5.0)
        tracer.job_dispatched(spot, "node-00")
        tracer.job_completed(spot, "node-00", _Event())
        spot_span = [s for s in tracer.spans if s.name == "audit:spot"][0]
        escalated = _job(kind="escalated", cause="spot-anomaly:segment:0",
                         ready=20.0, start=21.0, completion=30.0)
        tracer.job_dispatched(escalated, "node-01")
        wait = [s for s in tracer.spans if s.name == "queue-wait"][-1]
        assert wait.parent_id == spot_span.span_id

    def test_double_close_is_an_error(self):
        tracer = DistTracer()
        job = _job()
        tracer.job_dispatched(job, "node-00")
        tracer.job_completed(job, "node-00", _Event())
        with pytest.raises(ObservabilityError):
            tracer.session_close(job.tenant_id, job.epoch, 50.0, "ok")
            # the root closes fine; closing a *job* span twice raises
            tracer._close(tracer.spans[-1], 60.0, "ok")

    def test_chrome_trace_shape(self):
        tracer = DistTracer(seed=3)
        tracer.register_track("node-00")
        job = _job()
        tracer.session_start(job.tenant_id, job.epoch, 5.0)
        tracer.job_dispatched(job, "node-00")
        tracer.job_completed(job, "node-00", _Event())
        tracer.instant("crash:node-00", "node-00", 30.0, category="chaos")
        tracer.sample_queue_depth("node-00", 8.0, 2)
        trace = tracer.to_chrome_trace()
        events = trace["traceEvents"]
        phases = [event["ph"] for event in events]
        assert phases.count("M") == 2          # fleet + node-00 names
        assert "X" in phases and "i" in phases and "C" in phases
        names = {event["args"].get("name") for event in events
                 if event["ph"] == "M"}
        assert names == {"fleet", "node-00"}
        # Complete events carry µs timestamps and durations.
        audit = next(e for e in events if e["name"] == "audit:spot")
        assert audit["ts"] == 12000.0 and audit["dur"] == 8000.0
        # ts-sorted (metadata first at ts "-1").
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)
        json.dumps(trace, sort_keys=True)      # serializable

    def test_ndjson_round_trips(self):
        tracer = DistTracer()
        job = _job()
        tracer.job_dispatched(job, "node-00")
        tracer.job_completed(job, "node-00", _Event())
        lines = tracer.to_ndjson().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {record["kind"] for record in records}
        assert kinds == {"span", "instant"}
        spans = [r for r in records if r["kind"] == "span"]
        assert all(r["trace_id"] for r in spans)

    def test_summary_payload(self):
        tracer = DistTracer()
        for i, node in enumerate(("node-00", "node-01")):
            job = _job(tenant=f"tenant-{i:02d}", ready=10.0 + i,
                       start=12.0 + i, completion=20.0 + i)
            tracer.session_start(job.tenant_id, job.epoch, 5.0)
            tracer.job_dispatched(job, node)
            tracer.job_completed(job, node, _Event())
        summary = tracer.summary()
        assert summary["sessions"]["total"] == 2
        assert set(summary["latency"]) == {"queue_wait_ms", "service_ms",
                                           "verdict_ms"}
        assert summary["latency"]["verdict_ms"]["all"]["count"] == 2
        assert summary["heatmap"]["cells"] == [
            ["tenant-00", "node-00", 1, 15.0, 15.0],
            ["tenant-01", "node-01", 1, 16.0, 16.0]]
        assert len(summary["verdict_series"]) == 2

    def test_queue_depth_dedupes_stable_values(self):
        tracer = DistTracer()
        for ts, depth in ((1.0, 0), (2.0, 0), (3.0, 2), (4.0, 2),
                          (5.0, 0)):
            tracer.sample_queue_depth("node-00", ts, depth)
        assert tracer._queue_depth["node-00"] == [
            (1.0, 0), (3.0, 2), (5.0, 0)]


class TestSLOSpec:
    def test_parse_roundtrip(self):
        spec = SLOSpec.parse("p99_verdict_ms=400, max_unaudited=0.1")
        assert spec.p99_verdict_ms == 400.0
        assert spec.max_unaudited == 0.1
        assert spec.spec == "p99_verdict_ms=400,max_unaudited=0.1"

    @pytest.mark.parametrize("bad", ["", "p99_verdict_ms",
                                     "unknown_key=1",
                                     "p99_verdict_ms=abc",
                                     "p99_verdict_ms=-5"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ObservabilityError):
            SLOSpec.parse(bad)


class TestEvaluateSLO:
    OBS = {"verdict_series": [[ts, 10.0 + ts / 10.0]
                              for ts in range(0, 1000, 10)],
           "queue_series": [[100.0, 3.0], [600.0, 4.0]]}

    def test_latency_objective_met_and_breached(self):
        spec = SLOSpec.parse("p99_verdict_ms=200")
        report = evaluate_slo(spec, self.OBS, sessions_total=10,
                              unaudited=0, horizon_ms=1000.0)
        assert report.ok and report.breached == []
        tight = evaluate_slo(SLOSpec.parse("p99_verdict_ms=50"),
                             self.OBS, sessions_total=10, unaudited=0,
                             horizon_ms=1000.0)
        assert not tight.ok
        assert tight.breached == ["p99_verdict_ms"]
        burn = tight.objectives[0]["burn_rates"]
        assert len(burn) == 4
        # Latencies rise with virtual time: the later windows burn
        # budget faster than the earlier ones.
        assert burn[-1] > burn[0]

    def test_unaudited_fraction(self):
        spec = SLOSpec.parse("max_unaudited=0.2")
        ok = evaluate_slo(spec, self.OBS, sessions_total=10, unaudited=2,
                          horizon_ms=1000.0)
        assert ok.ok
        breach = evaluate_slo(spec, self.OBS, sessions_total=10,
                              unaudited=3, horizon_ms=1000.0)
        assert not breach.ok

    def test_empty_series_is_vacuously_ok(self):
        spec = SLOSpec.parse("p99_queue_ms=1")
        report = evaluate_slo(spec, {"queue_series": []},
                              sessions_total=0, unaudited=0,
                              horizon_ms=0.0)
        assert report.ok
        assert report.objectives[0]["detail"] == "no observations"

    def test_report_render_and_json(self):
        spec = SLOSpec.parse("p99_verdict_ms=50,max_unaudited=0.0")
        report = evaluate_slo(spec, self.OBS, sessions_total=4,
                              unaudited=1, horizon_ms=1000.0)
        lines = report.render_lines()
        assert "BREACH" in lines[0]
        payload = report.to_json_dict()
        assert payload["ok"] is False
        assert {o["name"] for o in payload["objectives"]} == {
            "p99_verdict_ms", "max_unaudited"}

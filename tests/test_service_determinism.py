"""The service run is a pure function of (seed, roster, policy).

These tests pin the ISSUE's acceptance bar: byte-identical verdicts,
queue metrics, and per-tenant ledgers across repeat runs and across
``--jobs`` settings.  Worker count is a *policy* knob that may legally
move virtual latencies, but never the flagged set or audit outcomes.
"""

import json

from repro.obs.metrics import MetricsRegistry
from repro.service import AuditService, default_tenants


def _run(jobs=1, num_workers=2, seed=7):
    service = AuditService(default_tenants(3, requests=4), epochs=2,
                           seed=seed, num_workers=num_workers,
                           registry=MetricsRegistry())
    return service.run(jobs=jobs)


def _canonical(report):
    return json.dumps(report.verdicts_dict(), sort_keys=True)


def test_repeat_runs_are_bit_identical():
    assert _canonical(_run()) == _canonical(_run())


def test_jobs_setting_never_changes_the_report():
    assert _canonical(_run(jobs=1)) == _canonical(_run(jobs=4))


def test_worker_count_never_changes_a_verdict():
    two = _run(num_workers=2)
    four = _run(num_workers=4)
    assert two.flagged_tenants == four.flagged_tenants == ["tenant-01"]
    for tid in two.ledgers:
        a, b = two.ledgers[tid], four.ledgers[tid]
        assert a.verdict == b.verdict
        assert [e.classification for e in a.events] \
            == [e.classification for e in b.events]


def test_different_seeds_move_the_timeline_not_the_verdicts():
    a, b = _run(seed=7), _run(seed=8)
    assert _canonical(a) != _canonical(b)            # seed actually matters
    assert a.flagged_tenants == b.flagged_tenants    # the channel still shows

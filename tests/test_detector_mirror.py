"""Tests for the mirror-VM baseline detector (Liu et al. [34], §8).

The comparison the paper's related-work section makes: without
determinism, a live mirror VM's noise floor is an order of magnitude
above TDR's replay residual, so subtle channels slip underneath it.
"""

import pytest

from repro.apps import build_nfs_program, build_nfs_workload
from repro.core.tdr import play
from repro.determinism import SplitMix64
from repro.detectors.mirror import MirrorDetector
from repro.detectors.tdr_detector import TdrDetector
from repro.errors import DetectorError
from repro.machine import MachineConfig

REQUESTS = 15
#: A subtle channel: one 0.6 ms delay (2.04 M cycles at 3.4 GHz).
SUBTLE_DELAY_CYCLES = 2_040_000


@pytest.fixture(scope="module")
def program():
    return build_nfs_program()


def workload_factory():
    return build_nfs_workload(SplitMix64(71), num_requests=REQUESTS)


@pytest.fixture(scope="module")
def floors(program):
    mirror = MirrorDetector()
    tdr = TdrDetector()
    mirror_floor = mirror.noise_floor(program, workload_factory, probes=2)
    clean = play(program, MachineConfig(), workload=workload_factory(),
                 seed=3)
    tdr_floor = tdr.score_execution(program, clean, MachineConfig())
    return mirror, tdr, mirror_floor, tdr_floor


class TestMirrorDetector:
    def test_mirror_noise_floor_dwarfs_tdr(self, floors):
        _, _, mirror_floor, tdr_floor = floors
        assert mirror_floor > 5 * tdr_floor

    def test_subtle_channel_beats_mirror_but_not_tdr(self, program, floors):
        mirror, tdr, mirror_floor, tdr_floor = floors
        schedule = [0] * REQUESTS
        schedule[7] = SUBTLE_DELAY_CYCLES
        covert = play(program, MachineConfig(),
                      workload=workload_factory(), seed=4,
                      covert_schedule=schedule)
        tdr_score = tdr.score_execution(program, covert, MachineConfig())
        mirror_score = mirror.score_execution(program, covert,
                                              workload_factory)
        # TDR: the 0.6 ms delay stands far above the replay residual.
        assert tdr_score > 4 * tdr_floor
        # Mirror: the same delay is inside the live-VM noise floor —
        # flagging it would flag clean machines too.
        assert mirror_score < 1.5 * mirror_floor

    def test_mirror_functional_divergence_is_infinite_score(self, program):
        """If the replicas transmit different packet counts, [34] has
        nothing meaningful to compare."""
        mirror = MirrorDetector()
        short = play(program, MachineConfig(),
                     workload=build_nfs_workload(SplitMix64(71),
                                                 num_requests=5),
                     seed=1)
        assert mirror.score_execution(program, short,
                                      workload_factory) == float("inf")

    def test_noise_floor_validation(self, program):
        with pytest.raises(DetectorError):
            MirrorDetector().noise_floor(program, workload_factory,
                                         probes=0)

"""Tests for the key-value store guest."""

import pytest

from repro.apps.kvstore import (OP_GET, OP_PUT, build_kvstore_program,
                                build_kvstore_workload, KV_SHUTDOWN)
from repro.core.tdr import play, round_trip
from repro.determinism import SplitMix64
from repro.machine import InteractiveClient, MachineConfig, Request


@pytest.fixture(scope="module")
def program():
    return build_kvstore_program()


def scripted_client(operations):
    requests = [Request(bytes(op)) for op in operations]
    return InteractiveClient(requests, SplitMix64(3),
                             mean_think_cycles=0.0,
                             shutdown_payload=KV_SHUTDOWN)


class TestKvStoreSemantics:
    def test_put_then_get(self, program):
        workload = scripted_client([
            [OP_PUT, 17, 99],
            [OP_GET, 17],
            [OP_GET, 18],
        ])
        result = play(program, MachineConfig(), workload=workload, seed=0)
        responses = [tuple(p) for _, p in result.tx]
        assert responses[0] == (1, 17, 99)   # put ok
        assert responses[1] == (1, 17, 99)   # found
        assert responses[2] == (0, 18, 0)    # missing

    def test_overwrite(self, program):
        workload = scripted_client([
            [OP_PUT, 5, 10],
            [OP_PUT, 5, 20],
            [OP_GET, 5],
        ])
        result = play(program, MachineConfig(), workload=workload, seed=0)
        assert tuple(result.tx[-1][1]) == (1, 5, 20)
        assert result.console == [1]   # one distinct key stored

    def test_collision_chains_resolve(self, program):
        # Keys spaced by TABLE_SIZE hash to nearby slots; linear probing
        # must keep them distinct.
        from repro.apps.kvstore import TABLE_SIZE

        operations = []
        for i in range(5):
            operations.append([OP_PUT, (7 + i * TABLE_SIZE) % 256, 100 + i])
        for i in range(5):
            operations.append([OP_GET, (7 + i * TABLE_SIZE) % 256])
        workload = scripted_client(operations)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        for i in range(5):
            found, _, value = result.tx[5 + i][1]
            assert (found, value) == (1, 100 + i)

    def test_random_workload_matches_reference_dict(self, program):
        rng = SplitMix64(42)
        workload = build_kvstore_workload(rng, num_requests=50)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        reference: dict[int, int] = {}
        for request, (_, response) in zip(workload.requests, result.tx):
            op = request.payload[0]
            if op == OP_PUT:
                key, value = request.payload[1], request.payload[2]
                reference[key] = value
                assert tuple(response) == (1, key, value)
            else:
                key = request.payload[1]
                expected = reference.get(key)
                if expected is None:
                    assert tuple(response) == (0, key, 0)
                else:
                    assert tuple(response) == (1, key, expected)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            build_kvstore_workload(SplitMix64(1), num_requests=0)
        with pytest.raises(ValueError):
            build_kvstore_workload(SplitMix64(1), put_fraction=1.5)


class TestKvStoreTdr:
    def test_round_trip_accuracy(self, program):
        workload = build_kvstore_workload(SplitMix64(9), num_requests=30)
        outcome = round_trip(program, MachineConfig(), workload=workload,
                             play_seed=0, replay_seed=55)
        assert outcome.audit.payloads_match
        assert outcome.audit.is_consistent()

    def test_state_dependent_timing_still_replays(self, program):
        """Later requests probe longer chains (higher load factor), so
        service time depends on the entire history — and replay still
        reproduces it."""
        workload = build_kvstore_workload(SplitMix64(10), num_requests=60,
                                          key_space=40, put_fraction=0.9)
        outcome = round_trip(program, MachineConfig(), workload=workload,
                             play_seed=1, replay_seed=77)
        assert outcome.audit.max_rel_ipd_diff < 0.0185

"""Tests for the §7 extensions: accountability (tamper-evident logs),
channel capacity analysis, and multi-tenancy with cache partitioning."""

import pytest

from repro.analysis.experiment import NfsTrafficModel
from repro.apps import build_nfs_program, build_nfs_workload
from repro.channels import Ipctc, NeedleChannel
from repro.channels.capacity import (bsc_capacity, binary_entropy,
                                     capacity_report, measure_error_rate)
from repro.core.attestation import (Authenticator, LogAttestor, LogVerifier,
                                    attest_execution)
from repro.core.audit import compare_traces
from repro.core.log import EventLog, LogEntry, EventKind
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.machine import MachineConfig
from repro.net import EAST_COAST_JITTER, WanLink

KEY = b"machine-signing-key"


def sample_log():
    log = EventLog()
    log.record_packet(10, b"request-1")
    log.record_time(20, 123456)
    log.record_packet(30, b"request-2")
    return log


class TestAttestation:
    def test_honest_log_verifies(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        assert auth.length == 3
        assert LogVerifier(KEY).verify(log, auth)

    def test_extension_of_attested_prefix_verifies(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        log.record_packet(40, b"later")   # appended after attestation
        assert LogVerifier(KEY).verify(log, auth)

    def test_tampered_payload_detected(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        log.entries[1] = LogEntry(EventKind.TIME, 20, value=999999)
        verifier = LogVerifier(KEY)
        assert not verifier.verify(log, auth)
        assert verifier.find_divergence(log, auth) is not None

    def test_dropped_entry_detected(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        del log.entries[0]
        assert not LogVerifier(KEY).verify(log, auth)

    def test_truncated_log_detected(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        del log.entries[2]
        assert not LogVerifier(KEY).verify(log, auth)

    def test_forged_authenticator_rejected(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        forged = Authenticator(auth.length, auth.chain_head,
                               b"\x00" * len(auth.signature))
        assert not LogVerifier(KEY).verify(log, forged)

    def test_wrong_key_rejected(self):
        log = sample_log()
        auth = attest_execution(log, KEY)
        assert not LogVerifier(b"other-key").verify(log, auth)

    def test_incremental_attestor_matches_batch(self):
        log = sample_log()
        attestor = LogAttestor(KEY)
        attestor.extend(log.entries[0])
        attestor.extend_all(log)          # folds the remaining two
        assert attestor.authenticator() == attest_execution(log, KEY)

    def test_intermediate_authenticators(self):
        """PeerReview-style periodic commitments: each one independently
        verifiable against the final log."""
        log = EventLog()
        attestor = LogAttestor(KEY)
        authenticators = []
        for i in range(10):
            log.record_packet(i * 10, bytes([i]))
            attestor.extend(log.entries[-1])
            authenticators.append(attestor.authenticator())
        verifier = LogVerifier(KEY)
        for auth in authenticators:
            assert verifier.verify(log, auth)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            LogAttestor(b"")

    def test_attested_machine_log_round_trip(self):
        """End to end: attest a real execution's log, verify, replay."""
        program = build_nfs_program()
        workload = build_nfs_workload(SplitMix64(11), num_requests=8)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        auth = attest_execution(result.log, KEY)
        assert LogVerifier(KEY).verify(result.log, auth)
        # The verified log replays cleanly.
        reference = replay(program, result.log, MachineConfig(), seed=5)
        assert compare_traces(result, reference).payloads_match


class TestCapacity:
    def test_binary_entropy_endpoints(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    def test_bsc_capacity(self):
        assert bsc_capacity(0.0) == pytest.approx(1.0)
        assert bsc_capacity(0.5) == pytest.approx(0.0)
        assert 0.0 < bsc_capacity(0.1) < 1.0

    def test_clean_channel_has_full_capacity(self):
        channel = Ipctc(slot_ms=10.0)
        rng = SplitMix64(1)
        natural = NfsTrafficModel().ipds(100, SplitMix64(2))
        channel.fit(natural, rng)
        error = measure_error_rate(channel, natural, link=None, rng=rng)
        assert error == 0.0
        report = capacity_report(channel, natural, link=None, rng=rng)
        assert report.capacity_bits_per_use == pytest.approx(1.0)
        assert report.bits_per_second > 0

    def test_jitter_degrades_subtle_channels(self):
        """§6.9 quantified: a needle at the noise floor loses most of its
        capacity to WAN jitter; a loud slot channel does not."""
        rng = SplitMix64(3)
        natural = [8.0] * 300
        link = WanLink(rtt_ms=10.0, jitter=EAST_COAST_JITTER)

        quiet = NeedleChannel(period=1, delta_ms=0.15)
        quiet.fit(natural, rng)
        quiet_report = capacity_report(quiet, natural, link, rng.fork("q"))

        loud = Ipctc(slot_ms=12.0)
        loud.fit(natural, rng)
        loud_report = capacity_report(loud, natural, link, rng.fork("l"))

        assert quiet_report.error_rate > 0.2
        assert loud_report.error_rate < 0.05
        assert quiet_report.capacity_bits_per_use < \
            0.5 * loud_report.capacity_bits_per_use

    def test_validation(self):
        channel = Ipctc()
        channel.fit([1.0], SplitMix64(1))
        with pytest.raises(ValueError):
            measure_error_rate(channel, [1.0] * 10, None, SplitMix64(1),
                               rounds=0)
        with pytest.raises(ValueError):
            bsc_capacity(1.5)


class TestMultiTenancy:
    @pytest.fixture(scope="class")
    def program(self):
        return build_nfs_program()

    def run_round_trip(self, program, **overrides):
        config = MachineConfig(**overrides)
        workload = build_nfs_workload(SplitMix64(21), num_requests=15)
        observed = play(program, config, workload=workload, seed=0)
        reference = replay(program, observed.log, config, seed=77)
        return compare_traces(observed, reference)

    def test_co_tenant_degrades_replay_accuracy(self, program):
        solo = self.run_round_trip(program)
        shared = self.run_round_trip(program, co_tenant_intensity=0.8)
        assert shared.max_abs_ipd_diff_ms > 2 * solo.max_abs_ipd_diff_ms

    def test_partitioning_restores_accuracy(self, program):
        """§7: 'techniques such as [33] could be used to partition the
        memory and the cache.'"""
        shared = self.run_round_trip(program, co_tenant_intensity=0.8)
        partitioned = self.run_round_trip(program, co_tenant_intensity=0.8,
                                          cache_partitioning=True)
        assert partitioned.max_abs_ipd_diff_ms < \
            0.5 * shared.max_abs_ipd_diff_ms
        assert partitioned.max_rel_ipd_diff < 0.0185

    def test_partitioning_costs_capacity(self, program):
        """The private partition is half-size: more misses, slower runs."""
        from repro.apps import build_kernel_program

        kernel = build_kernel_program("sor")
        full = play(kernel, MachineConfig(), seed=0)
        partitioned = play(kernel,
                           MachineConfig(cache_partitioning=True), seed=0)
        assert partitioned.total_cycles >= full.total_cycles

    def test_intensity_validation(self):
        from repro.errors import HardwareConfigError

        with pytest.raises(HardwareConfigError):
            MachineConfig(co_tenant_intensity=1.5)

"""Tests for the ASCII plot helpers."""

import pytest

from repro.analysis.plot import ascii_bars, ascii_cdf, ascii_scatter
from repro.errors import ReproError


class TestScatter:
    def test_diagonal_points_land_on_reference(self):
        points = [(float(i), float(i)) for i in range(10)]
        plot = ascii_scatter({"data": points}, diagonal=True,
                             width=20, height=10)
        assert "o = data" in plot
        # With points exactly on the diagonal, the reference dots are
        # fully covered on the plotted columns.
        assert "o" in plot

    def test_multiple_series_distinct_markers(self):
        plot = ascii_scatter({"a": [(0.0, 0.0)], "b": [(1.0, 1.0)]},
                             width=20, height=8)
        assert "o = a" in plot and "x = b" in plot

    def test_axis_ranges_in_output(self):
        plot = ascii_scatter({"s": [(2.0, 5.0), (4.0, 9.0)]},
                             width=20, height=8, xlabel="play",
                             ylabel="replay")
        assert "play (2 .. 4)" in plot
        assert "replay (5 .. 9)" in plot

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_scatter({})
        with pytest.raises(ReproError):
            ascii_scatter({"s": [(0.0, 0.0)]}, width=3)


class TestCdf:
    def test_monotone_curve(self):
        plot = ascii_cdf({"s": [1.0, 2.0, 3.0, 4.0]}, width=20, height=8)
        lines = [line for line in plot.splitlines()
                 if line.startswith("|")]
        # Leftmost column's marker must be at or below rightmost's row.
        first_rows = [i for i, line in enumerate(lines) if "o" in line]
        assert first_rows  # curve rendered

    def test_constant_sample(self):
        plot = ascii_cdf({"s": [5.0, 5.0, 5.0]})
        assert "value (5 .. 5)" in plot

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_cdf({"s": []})


class TestBars:
    def test_proportional_lengths(self):
        plot = ascii_bars({"big": 100.0, "small": 10.0}, width=50)
        big_line, small_line = plot.splitlines()
        assert big_line.count("#") > 4 * small_line.count("#")

    def test_zero_value_has_no_bar(self):
        plot = ascii_bars({"none": 0.0, "some": 5.0})
        none_line = plot.splitlines()[0]
        assert "#" not in none_line

    def test_unit_rendered(self):
        assert "%" in ascii_bars({"x": 1.0}, unit="%")

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_bars({})

"""Tests for the assembler and disassembler, focused on error handling
and the details the round-trip test in test_vm_interpreter.py skips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble
from repro.errors import AssemblerError, VMLoadError
from repro.vm import NullPlatform
from repro.vm.isa import Op


class TestAssemblerErrors:
    @pytest.mark.parametrize("text, fragment", [
        ("", "no functions"),
        ("iconst 1", "outside a function"),
        ("label:", "outside a function"),
        (".func main 0 0\n    frobnicate", "unknown mnemonic"),
        (".func main 0 0\n    iconst", "exactly one operand"),
        (".func main 0 0\n    iconst 1 2", "exactly one operand"),
        (".func main 0 0\n    pop 3", "takes no operand"),
        (".func main 0 0\n    iconst abc", "expected integer"),
        (".func main 0 0\n    fconst xyz", "expected float"),
        (".func main 0 0\n    goto nowhere", "undefined label"),
        (".func main 0 0\n    call ghost", "undefined function"),
        (".func main 0 0\nx:\nx:\n    ret", "duplicate label"),
        (".func main 0 0\n    newarray q", "must be 'i' or 'f'"),
        (".func main 0 0\n    newobj Ghost", "undefined class"),
        (".class C a\n.func main 0 0\n    getfield C.b", "no field"),
        (".class C a\n.func main 0 0\n    getfield D.a", "undefined class"),
        (".func main 0 0\n    .catch a b", "needs: start_label"),
        (".func main", "needs: name num_params num_locals"),
        (".global", "exactly one name"),
        (".global g\n.global g\n.func main 0 0\n    ret",
         "duplicate global"),
        (".class C\n.class C\n.func main 0 0\n    ret", "duplicate class"),
        (".func main 0 0\n    native warp", "no registry"),
    ])
    def test_rejected_listings(self, text, fragment):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(text)
        assert fragment in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(".func main 0 0\n    nop\n    frobnicate")
        assert excinfo.value.line == 3

    def test_undefined_native_with_registry(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(".func main 0 0\n    native warp",
                     natives=NullPlatform())
        assert "undefined native" in str(excinfo.value)

    def test_duplicate_function_rejected_at_link(self):
        with pytest.raises(VMLoadError):
            assemble(".func main 0 0\n    ret\n.func main 0 0\n    ret")

    def test_bad_slot_rejected_at_link(self):
        with pytest.raises(VMLoadError):
            assemble(".func main 0 1\n    load 5\n    ret")


class TestAssemblerFeatures:
    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; full-line comment

        .func main 0 0   ; trailing comment
            nop          ; another
            ret
        """)
        assert program.function("main").ops == [Op.NOP, Op.RET]

    def test_label_on_same_line_as_instruction(self):
        program = assemble("""
        .func main 0 0
        start: nop
            goto start
        """)
        function = program.function("main")
        assert function.args[1] == 0

    def test_hex_and_negative_literals(self):
        program = assemble("""
        .func main 0 0
            iconst 0xFF
            iconst -12
            pop
            pop
            ret
        """)
        assert program.function("main").args[:2] == [255, -12]

    def test_global_by_name_and_index(self):
        program = assemble("""
        .global alpha
        .global beta
        .func main 0 0
            iconst 1
            gstore beta
            iconst 2
            gstore 0
            ret
        """)
        args = program.function("main").args
        assert args[1] == 1   # beta
        assert args[3] == 0   # raw index

    def test_field_by_raw_offset(self):
        program = assemble("""
        .class P x y
        .func main 0 1
            newobj P
            store 0
            load 0
            iconst 5
            putfield 1
            ret
        """)
        assert Op.PUTFIELD in program.function("main").ops

    def test_custom_entry_point(self):
        program = assemble("""
        .func helper 0 0
            ret
        .func server 0 0
            ret
        """, entry="server")
        assert program.entry == "server"


class TestDisassembler:
    def test_exception_table_round_trips(self):
        source = """
        .func main 0 1
        t0:
            iconst 3
            throw
        t1:
            ret
        h:
            pop
            ret
        .catch t0 t1 h
        """
        program = assemble(source)
        listing = disassemble(program)
        assert ".catch" in listing
        again = assemble(listing)
        assert again.function("main").handlers == \
            program.function("main").handlers

    def test_natives_round_trip_by_index(self):
        platform = NullPlatform()
        program = assemble("""
        .func main 0 0
            iconst 1
            native print_int
            ret
        """, natives=platform)
        listing = disassemble(program)
        # The listing renders native indices numerically; reassembling
        # against a numeric-tolerant reader is not supported — the index
        # must appear.
        assert "native 0" in listing

    @given(st.lists(st.sampled_from(["nop", "iconst 1", "pop",
                                     "iconst 2\n    iconst 3\n    iadd\n"
                                     "    pop"]),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_straightline_programs_roundtrip(self, body_parts):
        body = "\n    ".join(part for part in body_parts)
        source = f".func main 0 0\n    {body}\n    ret"
        program = assemble(source)
        # Net stack effect of each part is zero, so this always loads.
        listing = disassemble(program)
        again = assemble(listing)
        assert again.function("main").ops == program.function("main").ops
        assert again.function("main").args == program.function("main").args

"""Tests for dirty-line writebacks and a reference-model property test
for the LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.determinism import SplitMix64, ZeroNoise
from repro.hw.bus import BusConfig, MemoryBus
from repro.hw.cache import Cache, CacheConfig, CacheHierarchy


def small_cache(ways=2, sets=4, writeback=60):
    return Cache(CacheConfig(size_bytes=64 * ways * sets, line_bytes=64,
                             ways=ways, writeback_cycles=writeback))


class TestWritebacks:
    def test_clean_evictions_cost_nothing(self):
        cache = small_cache()
        for i in range(64):
            cache.access(i * 64)
        assert cache.writebacks == 0
        assert cache.take_writeback_cost() == 0

    def test_evicting_polluted_line_costs_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.pollute(SplitMix64(1), 1)
        assert cache.occupancy == 1
        cache.access(0x0)  # evicts the dirty polluted line
        assert cache.writebacks == 1
        assert cache.take_writeback_cost() == 60
        # The cost is collected exactly once.
        assert cache.take_writeback_cost() == 0

    def test_flush_clears_dirty_state(self):
        cache = small_cache(ways=1, sets=1)
        cache.pollute(SplitMix64(1), 1)
        cache.flush()
        cache.access(0x0)
        assert cache.writebacks == 0

    def test_pollute_eviction_keeps_dirty_set_consistent(self):
        cache = small_cache(ways=1, sets=1)
        # Repeated pollution of a 1-way set evicts earlier dirty lines;
        # the dirty set must not grow without bound.
        for _ in range(50):
            cache.pollute(SplitMix64(7), 1)
        assert len(cache._dirty) <= 1

    def test_hierarchy_charges_writebacks(self):
        bus = MemoryBus(BusConfig(), ZeroNoise())
        l1 = small_cache(ways=1, sets=1)
        l2 = small_cache(ways=1, sets=1)
        clean = CacheHierarchy(small_cache(ways=1, sets=1),
                               small_cache(ways=1, sets=1), bus,
                               dram_cycles=100)
        dirty = CacheHierarchy(l1, l2, bus, dram_cycles=100)
        l1.pollute(SplitMix64(1), 1)
        l2.pollute(SplitMix64(2), 1)
        assert dirty.access(0x0) > clean.access(0x0)


class _ReferenceLru:
    """An obviously-correct LRU cache model to check the fast one."""

    def __init__(self, num_sets, ways, line_bytes):
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = [[] for _ in range(num_sets)]

    def access(self, paddr):
        line = paddr // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entries = self.sets[set_idx]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)   # most recent first
            return True
        if len(entries) >= self.ways:
            entries.pop()            # least recent last
        entries.insert(0, tag)
        return False


class TestAgainstReferenceModel:
    @given(st.integers(min_value=0, max_value=2 ** 32),
           st.integers(min_value=1, max_value=3).map(lambda w: 2 ** w),
           st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_lru_hit_miss_sequence_matches_reference(self, _seed, ways,
                                                     addrs):
        sets = 8
        fast = Cache(CacheConfig(size_bytes=64 * ways * sets,
                                 line_bytes=64, ways=ways))
        reference = _ReferenceLru(sets, ways, 64)
        for addr in addrs:
            assert fast.access(addr) == reference.access(addr), addr

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                    min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_monotone_in_associativity(self, addrs):
        """More ways never hurt an LRU cache of the same size in sets
        (stack property holds per set for LRU)."""
        small = Cache(CacheConfig(size_bytes=64 * 2 * 8, line_bytes=64,
                                  ways=2))
        large = Cache(CacheConfig(size_bytes=64 * 4 * 8, line_bytes=64,
                                  ways=4))
        for addr in addrs:
            small.access(addr)
            large.access(addr)
        assert large.hits >= small.hits

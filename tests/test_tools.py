"""Tests for the reproduce CLI."""

import pytest

from repro.tools.reproduce import EXPERIMENTS, main


class TestReproduceCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["figZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys):
        assert main(["sec65", "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "log size" in out
        assert "B/request" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "user-noisy" in out and "kernel-quiet" in out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {"fig2", "fig3", "table2", "fig6",
                                    "fig7", "sec65", "fig8", "chaos",
                                    "trace", "fleet"}

    def test_chaos_quick(self, capsys):
        assert main(["chaos", "--requests", "4", "--severities", "1",
                     "--chaos-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Chaos matrix" in out
        assert "tamper-detected" in out
        assert "transfer drop=0.9" in out

    @pytest.mark.parametrize("experiment,needle", [
        ("fig3", "naive replay"),
        ("table2", "SciMark"),
        ("fig6", "timing stability"),
        ("fig7", "replay accuracy"),
        ("fig8", "AUC"),
    ])
    def test_each_experiment_smokes(self, capsys, experiment, needle):
        assert main([experiment, "--runs", "2", "--requests", "3"]) == 0
        assert needle in capsys.readouterr().out

    def test_trace_quick(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--requests", "3",
                     "--trace-out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "accounting exact" in out
        assert "Table 1: fully mitigated" in out
        assert "sampled opcode profile" in out
        assert out_file.exists()
        import json
        trace = json.loads(out_file.read_text())
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert {"B", "E"} <= phases       # balanced spans present
        assert all("ts" in e or e["ph"] == "M" for e in events)

"""Tests for the reproduce CLI."""

import json
import re

import pytest

from repro.tools.reproduce import EXPERIMENTS, main


class TestReproduceCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["figZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys):
        assert main(["sec65", "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "log size" in out
        assert "B/request" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "user-noisy" in out and "kernel-quiet" in out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {"fig2", "fig3", "table2", "fig6",
                                    "fig7", "sec65", "fig8", "chaos",
                                    "trace", "fleet", "audit", "serve",
                                    "fleet-audit", "exec"}

    def test_exec_clean(self, capsys):
        assert main(["exec", "--scenario", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "accounting exact" in out
        assert "consistent (no timing deviation)" in out

    def test_exec_covert_flagged(self, capsys):
        assert main(["exec", "--scenario", "sched",
                     "--covert", "sched"]) == 1
        out = capsys.readouterr().out
        assert "FLAGGED" in out

    def test_exec_usage_errors(self, capsys):
        assert main(["exec", "--scenario", "nope"]) == 2
        assert main(["exec", "--covert", "ipctc"]) == 2
        assert main(["exec", "--slo", "frobs=1"]) == 2

    def test_chaos_quick(self, capsys):
        # Severity 1 injects tamper/corruption faults, so the exit-code
        # contract requires a non-zero status alongside the matrix.
        assert main(["chaos", "--requests", "4", "--severities", "1",
                     "--chaos-seed", "7"]) == 1
        out = capsys.readouterr().out
        assert "Chaos matrix" in out
        assert "tamper-detected" in out
        assert "transfer drop=0.9" in out

    @pytest.mark.parametrize("experiment,needle", [
        ("fig3", "naive replay"),
        ("table2", "SciMark"),
        ("fig6", "timing stability"),
        ("fig7", "replay accuracy"),
        ("fig8", "AUC"),
    ])
    def test_each_experiment_smokes(self, capsys, experiment, needle):
        assert main([experiment, "--runs", "2", "--requests", "3"]) == 0
        assert needle in capsys.readouterr().out

    def test_trace_quick(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--requests", "3",
                     "--trace-out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "accounting exact" in out
        assert "Table 1: fully mitigated" in out
        assert "sampled opcode profile" in out
        assert out_file.exists()
        import json
        trace = json.loads(out_file.read_text())
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert {"B", "E"} <= phases       # balanced spans present
        assert all("ts" in e or e["ph"] == "M" for e in events)


class TestExitCodeContract:
    """Every verdict-bearing subcommand: zero iff nothing was flagged."""

    def test_audit_clean_exits_zero(self, capsys):
        assert main(["audit", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "classification: clean" in out
        assert "verdict: clean" in out

    def test_audit_covert_exits_nonzero(self, capsys):
        assert main(["audit", "--requests", "4",
                     "--covert", "ipctc"]) == 1
        out = capsys.readouterr().out
        assert "covert channel 'ipctc' active" in out
        assert "FLAGGED -> non-zero exit" in out

    def test_audit_tamper_exits_nonzero(self, capsys):
        assert main(["audit", "--requests", "4", "--tamper"]) == 1
        out = capsys.readouterr().out
        assert "log tampered in transit" in out
        assert "classification: tamper-detected" in out

    def test_chaos_severity_zero_exits_zero(self, capsys):
        assert main(["chaos", "--requests", "4", "--severities", "0",
                     "--chaos-seed", "7"]) == 0
        assert "0/" in capsys.readouterr().out

    def test_serve_flags_the_covert_tenant(self, capsys):
        assert main(["serve", "--tenants", "3", "--epochs", "2",
                     "--requests", "4"]) == 1
        out = capsys.readouterr().out
        assert "FLAGGED covert-timing" in out
        assert "tenant-01" in out
        assert "flagged tenants -> non-zero exit" in out

    def test_serve_all_clean_exits_zero(self, capsys):
        # A single-tenant roster has no covert slot.
        assert main(["serve", "--tenants", "1", "--epochs", "1",
                     "--requests", "4"]) == 0
        assert "flagged: none" in capsys.readouterr().out

    def test_serve_store_persists_a_service_run(self, tmp_path, capsys):
        assert main(["serve", "--tenants", "3", "--epochs", "1",
                     "--requests", "4", "--store", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        match = re.search(r"\[stored (\S+) in ", out)
        assert match, out
        assert main(["runs", "list", "--store", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert match.group(1) in listing
        assert "service" in listing


class TestRunStoreCli:
    """--store persistence plus the runs/report subcommands.

    The acceptance bar: a persisted run, re-rendered through ``runs
    show`` or ``report``, reproduces the exact numbers the experiment
    printed at run time — same format strings, same values, verbatim.
    """

    def _fig6(self, tmp_path, capsys):
        assert main(["fig6", "--runs", "2", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        match = re.search(r"\[stored (\S+) in ", out)
        assert match, out
        return out, match.group(1)

    @staticmethod
    def _fig6_table(out):
        return [line for line in out.splitlines()
                if re.match(r"^  (kernel|SOR|SMM|MC|LU|FFT)\b", line)]

    def test_store_flag_persists_and_lists(self, tmp_path, capsys):
        _, run_id = self._fig6(tmp_path, capsys)
        assert (tmp_path / run_id / "manifest.json").exists()
        assert main(["runs", "list", "--store", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert run_id in listing
        assert "fig6" in listing

    def test_show_reproduces_runtime_fig6_numbers(self, tmp_path, capsys):
        out, run_id = self._fig6(tmp_path, capsys)
        table = self._fig6_table(out)
        assert len(table) == 6                  # header + five kernels
        assert main(["runs", "show", run_id,
                     "--store", str(tmp_path)]) == 0
        shown = capsys.readouterr().out
        for line in table:
            assert line in shown

    def test_show_reproduces_trace_attribution_tables(self, tmp_path,
                                                      capsys):
        assert main(["trace", "--requests", "3",
                     "--store", str(tmp_path),
                     "--trace-out", str(tmp_path / "t.json")]) == 0
        out = capsys.readouterr().out
        run_id = re.search(r"\[stored (\S+) in ", out).group(1)
        tables = re.findall(
            r"(?m)^\w[^\n]*\([^\n]*cycles\):\n(?:^  [^\n]*\n)*?"
            r"^  \(accounting [^\n]*\)$", out)
        assert len(tables) == 3          # play, replay, clean-room play
        assert main(["runs", "show", run_id,
                     "--store", str(tmp_path)]) == 0
        shown = capsys.readouterr().out
        for table in tables:
            assert table in shown

    def test_report_reprints_numbers_and_writes_html(self, tmp_path,
                                                     capsys):
        out, run_id = self._fig6(tmp_path, capsys)
        html_path = tmp_path / "report.html"
        assert main(["report", run_id, "--store", str(tmp_path),
                     "--out", str(html_path)]) == 0
        report_out = capsys.readouterr().out
        for line in self._fig6_table(out):
            assert line in report_out
        assert f"wrote {html_path}" in report_out
        document = html_path.read_text()
        for value in re.findall(r"\d+\.\d{3}(?=%)", out):
            assert f"{value}%" in document

    def test_report_latest_dedups_explicit_ref(self, tmp_path, capsys):
        _, run_id = self._fig6(tmp_path, capsys)
        html_path = tmp_path / "report.html"
        assert main(["report", run_id, "--latest", "3",
                     "--store", str(tmp_path),
                     "--out", str(html_path)]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_runs_prune_via_cli(self, tmp_path, capsys):
        from repro.obs.runstore import RunRecord, RunStore

        store = RunStore(tmp_path)
        for i in range(3):
            store.save(RunRecord(kind="unit", label=f"run {i}"))
        assert main(["runs", "prune", "--keep", "1",
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 run(s), kept 1" in out
        assert len(store) == 1

    def test_runs_show_unknown_ref(self, tmp_path, capsys):
        assert main(["runs", "show", "nope-404",
                     "--store", str(tmp_path)]) == 2
        assert "no run" in capsys.readouterr().err

    def test_report_without_refs(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path)]) == 2
        assert "needs run ids" in capsys.readouterr().err


class TestBenchGateCli:
    def _perf(self, tmp_path, value, name="perf.json"):
        path = tmp_path / name
        path.write_text(json.dumps(
            {"machine_run": {"batched": {"instr_per_sec": value}}}))
        return str(path)

    def _seed_history(self, tmp_path):
        """Two distinct historical points (identical records would
        content-dedup into one)."""
        for value in (1000.0, 1010.0):
            assert main(["bench-gate",
                         "--perf", self._perf(tmp_path, value),
                         "--store", str(tmp_path)]) == 0

    def test_missing_perf_report(self, tmp_path, capsys):
        assert main(["bench-gate", "--perf", str(tmp_path / "no.json"),
                     "--store", str(tmp_path)]) == 2
        assert "no perf report" in capsys.readouterr().err

    def test_advisory_until_two_history_points(self, tmp_path, capsys):
        for value, history in ((1000.0, 0), (1010.0, 1)):
            assert main(["bench-gate",
                         "--perf", self._perf(tmp_path, value),
                         "--store", str(tmp_path)]) == 0
            out = capsys.readouterr().out
            assert "ADVISORY" in out
            assert f"{history} history point(s)" in out
            assert "recorded bench-" in out

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        self._seed_history(tmp_path)
        capsys.readouterr()
        assert main(["bench-gate",
                     "--perf", self._perf(tmp_path, 500.0),
                     "--store", str(tmp_path), "--no-record"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "recorded" not in captured.out

    def test_advisory_flag_never_fails(self, tmp_path, capsys):
        self._seed_history(tmp_path)
        assert main(["bench-gate",
                     "--perf", self._perf(tmp_path, 500.0),
                     "--store", str(tmp_path),
                     "--advisory", "--no-record"]) == 0
        assert "advisory — not failing" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path, capsys):
        self._seed_history(tmp_path)
        assert main(["bench-gate",
                     "--perf", self._perf(tmp_path, 1200.0),
                     "--store", str(tmp_path), "--no-record"]) == 0
        out = capsys.readouterr().out
        assert "bench-gate: PASS" in out
        assert "+" in out                       # change reported signed

"""Tests for the fault-injection subsystem (plans + lossy transfer)."""

import pytest

from repro.core.log import EventLog
from repro.determinism import SplitMix64
from repro.errors import FaultPlanError, LogFormatError
from repro.faults import (BitFlip, ComposedPlan, DropEntries,
                          DuplicateEntries, HeaderFuzz, LogTransferChannel,
                          ReorderEntries, Truncate, standard_fault_kinds)
from repro.net.link import LossyWanLink


def sample_log(entries: int = 12) -> EventLog:
    log = EventLog()
    for i in range(entries):
        log.record_packet(100 * i, bytes([i % 256]) * 24)
        log.record_time(100 * i + 10, 1_000_000 + i)
    return log


@pytest.fixture
def data() -> bytes:
    return sample_log().to_bytes()


class TestFaultPlans:
    def test_deterministic_given_seed(self, data):
        for plan in standard_fault_kinds(2):
            assert (plan.apply_seeded(data, 99)
                    == plan.apply_seeded(data, 99)), plan.name

    def test_different_seeds_differ(self, data):
        damaged = {BitFlip(4).apply_seeded(data, seed)
                   for seed in range(8)}
        assert len(damaged) > 1

    def test_byte_level_damage_is_detected(self, data):
        for plan in (BitFlip(1), Truncate(0.6), HeaderFuzz(2)):
            damaged = plan.apply_seeded(data, 5)
            assert damaged != data
            with pytest.raises(LogFormatError):
                EventLog.from_bytes(damaged)

    def test_entry_level_damage_reframes_validly(self, data):
        original = EventLog.from_bytes(data)
        for plan in (DropEntries(2), DuplicateEntries(2),
                     ReorderEntries(2)):
            damaged = plan.apply_seeded(data, 5)
            rewritten = EventLog.from_bytes(damaged)  # must not raise
            assert rewritten.entries != original.entries, plan.name

    def test_entry_level_rejects_corrupt_input(self, data):
        broken = HeaderFuzz(3).apply_seeded(data, 1)
        with pytest.raises(FaultPlanError):
            DropEntries(1).apply_seeded(broken, 2)

    def test_composition(self, data):
        plan = DropEntries(1).then(BitFlip(1)).then(Truncate(0.9))
        assert isinstance(plan, ComposedPlan)
        assert len(plan.plans) == 3
        damaged = plan.apply_seeded(data, 3)
        assert damaged != data
        with pytest.raises(LogFormatError):
            EventLog.from_bytes(damaged)

    def test_zero_severity_is_identity(self, data):
        assert BitFlip(0).apply_seeded(data, 1) == data
        assert Truncate(1.0).apply_seeded(data, 1) == data
        assert HeaderFuzz(0).apply_seeded(data, 1) == data

    def test_invalid_parameters(self, data):
        rng = SplitMix64(0)
        with pytest.raises(FaultPlanError):
            BitFlip(-1).apply(data, rng)
        with pytest.raises(FaultPlanError):
            Truncate(1.5).apply(data, rng)
        with pytest.raises(FaultPlanError):
            standard_fault_kinds(0)

    def test_standard_kinds_cover_all_families(self):
        names = {plan.name for plan in standard_fault_kinds(1)}
        assert names == {"bit-flip", "truncate", "header-fuzz",
                         "drop-entries", "duplicate-entries",
                         "reorder-entries"}


class TestLossyWanLink:
    def test_base_link_never_drops(self):
        from repro.net.link import WanLink
        rng = SplitMix64(1)
        assert all(WanLink().delivers(rng) for _ in range(50))

    def test_drop_rate_validated(self):
        with pytest.raises(ValueError):
            LossyWanLink(drop_rate=1.0)
        with pytest.raises(ValueError):
            LossyWanLink(drop_rate=-0.1)

    def test_drop_rate_honoured(self):
        rng = SplitMix64(2)
        link = LossyWanLink(drop_rate=0.5)
        delivered = sum(link.delivers(rng) for _ in range(2000))
        assert 850 < delivered < 1150


class TestLogTransferChannel:
    def test_lossless_transfer_is_identity(self, data):
        outcome = LogTransferChannel(mtu_bytes=128).transfer(
            data, SplitMix64(3))
        assert outcome.delivered
        assert outcome.data == data
        assert outcome.retransmissions == 0
        assert outcome.elapsed_ms > 0

    def test_delivers_within_budget_at_20_percent_drop(self, data):
        # Acceptance bound: a 20% lossy path must still deliver within
        # the default retry budget, for every seed we sweep.
        for seed in range(10):
            channel = LogTransferChannel(drop_rate=0.2, mtu_bytes=128)
            outcome = channel.transfer(data, SplitMix64(seed))
            assert outcome.delivered, seed
            assert outcome.data == data

    def test_degrades_structurally_beyond_budget(self, data):
        channel = LogTransferChannel(drop_rate=0.95, mtu_bytes=64,
                                     max_retries=2)
        outcome = channel.transfer(data, SplitMix64(4))
        assert not outcome.delivered
        assert outcome.degraded
        assert outcome.frames_delivered < outcome.total_frames
        # What arrived is a contiguous prefix of the original bytes.
        assert data.startswith(outcome.data)

    def test_retransmissions_counted_and_backoff_paid(self, data):
        channel = LogTransferChannel(drop_rate=0.5, mtu_bytes=64,
                                     max_retries=16)
        outcome = channel.transfer(data, SplitMix64(5))
        assert outcome.delivered
        assert outcome.retransmissions > 0
        lossless = LogTransferChannel(mtu_bytes=64).transfer(
            data, SplitMix64(5))
        assert outcome.elapsed_ms > lossless.elapsed_ms

    def test_exponential_backoff_schedule(self):
        channel = LogTransferChannel(backoff_base_ms=5.0,
                                     backoff_factor=2.0,
                                     backoff_cap_ms=30.0)
        delays = [channel._backoff_ms(a) for a in range(1, 6)]
        assert delays == [5.0, 10.0, 20.0, 30.0, 30.0]

    def test_transfer_deterministic(self, data):
        channel = LogTransferChannel(drop_rate=0.3, mtu_bytes=64)
        first = channel.transfer(data, SplitMix64(6))
        second = channel.transfer(data, SplitMix64(6))
        assert first == second

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogTransferChannel(mtu_bytes=0)
        with pytest.raises(ValueError):
            LogTransferChannel(max_retries=-1)
        with pytest.raises(ValueError):
            LogTransferChannel(backoff_factor=0.5)

    def test_empty_payload_transfers(self):
        outcome = LogTransferChannel().transfer(b"", SplitMix64(7))
        assert outcome.delivered
        assert outcome.data == b""

"""Tests for the MiniJ compiler (lexer, parser, codegen) end to end."""

import pytest

from repro.errors import CompileError, GuestError
from repro.lang import compile_minij, compile_to_assembly
from repro.lang.lexer import Lexer, TokenKind
from repro.vm import Interpreter, NullPlatform

NULL_SIGS = {
    "print_int": (("int",), "void"),
    "print_float": (("float",), "void"),
    "nano_time": ((), "int"),
}


def run_minij(source, max_instructions=5_000_000):
    platform = NullPlatform()
    program = compile_minij(source, natives=platform,
                            native_signatures=NULL_SIGS)
    vm = Interpreter(program, platform)
    vm.run(max_instructions)
    return platform.printed


class TestLexer:
    def test_basic_tokens(self):
        tokens = Lexer("int x = 42;").tokens()
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                         TokenKind.INT_LIT, TokenKind.PUNCT, TokenKind.EOF]
        assert tokens[3].value == 42

    def test_float_and_hex_literals(self):
        tokens = Lexer("3.5 1e3 2.5e-2 0xFF").tokens()
        assert tokens[0].value == 3.5
        assert tokens[1].value == 1000.0
        assert tokens[2].value == 0.025
        assert tokens[3].value == 255

    def test_comments_skipped(self):
        tokens = Lexer("a // line\n /* block\nmore */ b").tokens()
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_multichar_operators(self):
        tokens = Lexer("<= >= == != && || << >>").tokens()
        assert [t.text for t in tokens[:-1]] == \
            ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            Lexer("/* no end").tokens()

    def test_bad_character(self):
        with pytest.raises(CompileError):
            Lexer("int $x;").tokens()

    def test_line_and_col_tracking(self):
        tokens = Lexer("a\n  b").tokens()
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)


class TestBasicPrograms:
    def test_hello_arithmetic(self):
        assert run_minij("""
        void main() {
            print_int(2 + 3 * 4);
            print_int((2 + 3) * 4);
            print_int(10 / 3);
            print_int(10 % 3);
        }
        """) == [14, 20, 3, 1]

    def test_precedence_and_unary(self):
        assert run_minij("""
        void main() {
            print_int(-3 + 4);
            print_int(~0);
            print_int(1 << 4 | 1);
            print_int(6 & 3 ^ 1);
        }
        """) == [1, -1, 17, 3]

    def test_float_arithmetic(self):
        printed = run_minij("""
        void main() {
            float x = 1.5;
            float y = x * 2.0 + 0.25;
            print_float(y);
            print_float(sqrt(16.0));
            print_int(ftoi(3.99));
            print_float(itof(7));
        }
        """)
        assert printed == [3.25, 4.0, 3, 7.0]

    def test_variables_and_scoping(self):
        assert run_minij("""
        void main() {
            int x = 1;
            if (x == 1) {
                int y = 10;
                x = x + y;
            }
            int y = 100;
            print_int(x + y);
        }
        """) == [111]

    def test_globals_with_initializers(self):
        assert run_minij("""
        global int base = 40;
        global float rate = 0.5;
        global int uninitialized;
        void main() {
            print_int(base + 2);
            print_float(rate);
            print_int(uninitialized);
        }
        """) == [42, 0.5, 0]

    def test_booleans_and_logic(self):
        assert run_minij("""
        void main() {
            print_int(true);
            print_int(false);
            print_int(1 < 2 && 3 < 4);
            print_int(1 > 2 || 3 > 4);
            print_int(!(1 == 1));
        }
        """) == [1, 0, 1, 0, 0]

    def test_short_circuit_evaluation(self):
        # The right operand would divide by zero if evaluated.
        assert run_minij("""
        int boom() {
            return 1 / 0;
        }
        void main() {
            int x = 0;
            if (x != 0 && boom() > 0) {
                print_int(-1);
            } else {
                print_int(1);
            }
            if (x == 0 || boom() > 0) {
                print_int(2);
            }
        }
        """) == [1, 2]


class TestControlFlow:
    def test_while_loop(self):
        assert run_minij("""
        void main() {
            int total = 0;
            int i = 1;
            while (i <= 100) {
                total = total + i;
                i = i + 1;
            }
            print_int(total);
        }
        """) == [5050]

    def test_for_loop_with_break_continue(self):
        assert run_minij("""
        void main() {
            int total = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                total = total + i;
            }
            print_int(total);
        }
        """) == [1 + 3 + 5 + 7 + 9]

    def test_nested_loops(self):
        assert run_minij("""
        void main() {
            int count = 0;
            for (int i = 0; i < 5; i = i + 1) {
                for (int j = 0; j < 5; j = j + 1) {
                    if (j > i) { break; }
                    count = count + 1;
                }
            }
            print_int(count);
        }
        """) == [15]

    def test_else_if_chain(self):
        source_template = """
        void classify(int x) {{
            if (x < 0) {{ print_int(-1); }}
            else if (x == 0) {{ print_int(0); }}
            else if (x < 10) {{ print_int(1); }}
            else {{ print_int(2); }}
        }}
        void main() {{ classify({value}); }}
        """
        assert run_minij(source_template.format(value=-5)) == [-1]
        assert run_minij(source_template.format(value=0)) == [0]
        assert run_minij(source_template.format(value=5)) == [1]
        assert run_minij(source_template.format(value=50)) == [2]

    def test_compound_assignment(self):
        assert run_minij("""
        void main() {
            int x = 10;
            x += 5;
            print_int(x);
            x -= 3;
            print_int(x);
            x *= 2;
            print_int(x);
            x /= 4;
            print_int(x);
            x %= 4;
            print_int(x);
            float f = 1.5;
            f *= 2.0;
            print_float(f);
        }
        """) == [15, 12, 24, 6, 2, 3.0]

    def test_compound_assignment_in_for_update(self):
        assert run_minij("""
        void main() {
            int total = 0;
            for (int i = 0; i < 10; i += 2) {
                total += i;
            }
            print_int(total);
        }
        """) == [20]

    def test_compound_assignment_rejects_array_target(self):
        with pytest.raises(CompileError) as excinfo:
            compile_to_assembly(
                "void main() { int[] a = new int[2]; a[0] += 1; }",
                NULL_SIGS)
        assert "must be a variable" in str(excinfo.value)

    def test_empty_for_clauses(self):
        assert run_minij("""
        void main() {
            int i = 0;
            for (;;) {
                i = i + 1;
                if (i >= 5) { break; }
            }
            print_int(i);
        }
        """) == [5]


class TestFunctions:
    def test_recursion(self):
        assert run_minij("""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { print_int(fib(15)); }
        """) == [610]

    def test_mutual_recursion(self):
        assert run_minij("""
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        void main() {
            print_int(is_even(10));
            print_int(is_odd(10));
        }
        """) == [1, 0]

    def test_float_parameters_and_return(self):
        assert run_minij("""
        float hypot(float a, float b) {
            return sqrt(a * a + b * b);
        }
        void main() { print_float(hypot(3.0, 4.0)); }
        """) == [5.0]

    def test_fall_off_end_returns_zero(self):
        assert run_minij("""
        int maybe(int x) {
            if (x > 0) { return 7; }
        }
        void main() {
            print_int(maybe(1));
            print_int(maybe(-1));
        }
        """) == [7, 0]


class TestArraysAndClasses:
    def test_array_sum(self):
        assert run_minij("""
        void main() {
            int[] values = new int[10];
            for (int i = 0; i < len(values); i = i + 1) {
                values[i] = i * i;
            }
            int total = 0;
            for (int i = 0; i < len(values); i = i + 1) {
                total = total + values[i];
            }
            print_int(total);
        }
        """) == [285]

    def test_float_arrays(self):
        assert run_minij("""
        void main() {
            float[] xs = new float[4];
            xs[0] = 0.5;
            xs[1] = xs[0] * 4.0;
            print_float(xs[0] + xs[1]);
        }
        """) == [2.5]

    def test_arrays_as_arguments(self):
        assert run_minij("""
        int sum(int[] values, int count) {
            int total = 0;
            for (int i = 0; i < count; i = i + 1) {
                total = total + values[i];
            }
            return total;
        }
        void main() {
            int[] data = new int[5];
            data[0] = 10; data[1] = 20; data[2] = 30;
            print_int(sum(data, 3));
        }
        """) == [60]

    def test_classes(self):
        assert run_minij("""
        class Point { int x; int y; }
        class Circle { Point center; float radius; }
        void main() {
            Circle c = new Circle();
            c.center = new Point();
            c.center.x = 3;
            c.center.y = 4;
            c.radius = 5.0;
            Point p = c.center;
            print_int(p.x + p.y);
            print_float(c.radius);
        }
        """) == [7, 5.0]

    def test_object_identity(self):
        assert run_minij("""
        class Box { int value; }
        void main() {
            Box a = new Box();
            Box b = a;
            b.value = 42;
            print_int(a.value);
        }
        """) == [42]


class TestExceptions:
    def test_try_catch(self):
        assert run_minij("""
        void main() {
            try {
                throw 5;
            } catch (e) {
                print_int(e);
            }
            print_int(99);
        }
        """) == [5, 99]

    def test_catch_runtime_error(self):
        assert run_minij("""
        void main() {
            int[] a = new int[2];
            try {
                a[10] = 1;
            } catch (e) {
                print_int(e);
            }
        }
        """) == [-2]  # EXC_INDEX_OUT_OF_BOUNDS

    def test_exception_crosses_functions(self):
        assert run_minij("""
        void inner() { throw 77; }
        void main() {
            try {
                inner();
            } catch (e) {
                print_int(e);
            }
        }
        """) == [77]

    def test_uncaught_raises(self):
        with pytest.raises(GuestError):
            run_minij("void main() { throw 1; }")


class TestTypeErrors:
    @pytest.mark.parametrize("source, fragment", [
        ("void main() { int x = 1.5; }", "cannot assign"),
        ("void main() { float f = 1; }", "cannot assign"),
        ("void main() { int x = 1 + 1.5; }", "matching numeric"),
        ("void main() { print_int(1.5); }", "argument 1"),
        ("void main() { undefined_fn(); }", "undefined function"),
        ("void main() { print_int(x); }", "undefined variable"),
        ("void main() { if (1.5) { } }", "condition must be int"),
        ("void main() { int x = 1; x[0] = 2; }", "cannot index"),
        ("void main() { int[] a = new int[1.5]; }", "length must be int"),
        ("void main() { break; }", "break outside"),
        ("void main() { continue; }", "continue outside"),
        ("void main() { throw 1.5; }", "int code"),
        ("int f() { return; } void main() { }", "must return"),
        ("void f() { return 1; } void main() { }", "returns void"),
        ("void main() { int x = 1; int x = 2; }", "duplicate variable"),
        ("void main() { return; print_int(1); }", "unreachable"),
        ("int main() { return 1; }", "must be 'void main()'"),
        ("void other() { }", "missing entry function"),
        ("void f() {} void f() {} void main() {}", "duplicate function"),
        ("global int g; global int g; void main() {}", "duplicate global"),
        ("class C { int a; int a; } void main() {}", "duplicate field"),
        ("void main() { float f = 0.0; f = f % 2.0; }", "needs int"),
        ("void main() { int v = print_int(1); }", "used as a value"),
        ("class C { int a; } void main() { C c = new C(); print_int(c.b); }",
         "no field"),
        ("void sqrt(float f) { } void main() { }", "shadows a builtin"),
    ])
    def test_rejected(self, source, fragment):
        with pytest.raises(CompileError) as excinfo:
            compile_to_assembly(source, NULL_SIGS)
        assert fragment in str(excinfo.value)

    def test_error_carries_line_number(self):
        source = "void main() {\n  int x = 1;\n  x = 1.5;\n}"
        with pytest.raises(CompileError) as excinfo:
            compile_to_assembly(source, NULL_SIGS)
        assert excinfo.value.source_line == 3


class TestCodegenDetails:
    def test_assembly_is_deterministic(self):
        source = """
        int f(int a) { return a * 2; }
        void main() { print_int(f(21)); }
        """
        assert compile_to_assembly(source, NULL_SIGS) == \
            compile_to_assembly(source, NULL_SIGS)

    def test_slot_reuse_across_sibling_blocks(self):
        # Two sibling blocks may reuse the same slots; this must stay
        # within the 64-slot frame even with many sequential declarations.
        blocks = "\n".join(
            f"if (1 == 1) {{ int v{i} = {i}; print_int(v{i}); }}"
            for i in range(100))
        printed = run_minij("void main() {\n" + blocks + "\n}")
        assert printed == list(range(100))

    def test_too_many_locals_rejected(self):
        decls = "\n".join(f"int v{i} = {i};" for i in range(70))
        with pytest.raises(CompileError) as excinfo:
            compile_to_assembly("void main() {\n" + decls + "\n}", NULL_SIGS)
        assert "local slots" in str(excinfo.value)

    def test_wrapping_semantics_match_vm(self):
        assert run_minij("""
        void main() {
            int big = 0x7FFFFFFFFFFFFFFF;
            print_int(big + 1);
        }
        """) == [-(1 << 63)]

"""Cross-cutting integration tests: disassembly of real apps, GC over
object graphs, and the PacketTrace API against real executions."""

import pytest

from repro.apps import (build_kernel_program, build_nfs_program,
                        build_nfs_workload, compile_app)
from repro.apps.kvstore import build_kvstore_program
from repro.asm import assemble, disassemble
from repro.core.tdr import play
from repro.determinism import SplitMix64
from repro.detectors import ShapeDetector
from repro.machine import MachineConfig
from repro.machine.natives import MACHINE_REGISTRY
from repro.net import PacketTrace
from repro.vm import Interpreter, NullPlatform, VmConfig
from repro.vm.heap import HeapConfig


class TestAppDisassembly:
    """Every compiled guest must survive a disassemble/reassemble cycle —
    a regression net over the whole codegen → assembler pipeline."""

    @pytest.mark.parametrize("build", [
        build_nfs_program,
        build_kvstore_program,
        lambda: build_kernel_program("fft"),
        lambda: build_kernel_program("lu"),
    ])
    def test_roundtrip(self, build):
        program = build()
        listing = disassemble(program)
        again = assemble(listing, natives=MACHINE_REGISTRY,
                         entry=program.entry)
        for original, rebuilt in zip(program.functions, again.functions):
            assert original.ops == rebuilt.ops
            assert original.args == rebuilt.args
            assert original.handlers == rebuilt.handlers

    def test_kernel_code_sizes_reported(self):
        program = build_kernel_program("sor")
        assert program.total_instructions() > 50


class TestGcObjectGraphs:
    def test_objects_keep_their_referenced_arrays_alive(self):
        source = """
        class Node { int payload; int next; }
        global Node head;
        void main() {
            head = new Node();
            int[] data = new int[8];
            data[0] = 4242;
            head.payload = 777;
            // Stash the array handle in a field: reachable only through
            // the object graph.
            int[] stash = data;
            head.next = 0;
            // Churn the heap to force collections.
            for (int i = 0; i < 400; i = i + 1) {
                int[] junk = new int[64];
                junk[0] = i;
            }
            print_int(head.payload);
            print_int(stash[0]);
        }
        """
        from repro.lang import compile_minij

        platform = NullPlatform()
        program = compile_minij(
            source, natives=platform,
            native_signatures={"print_int": (("int",), "void")})
        vm = Interpreter(program, platform,
                         VmConfig(heap=HeapConfig(gc_threshold_bytes=16_384)))
        vm.run()
        assert vm.heap.gc_runs > 0
        assert platform.printed == [777, 4242]

    def test_cyclic_garbage_is_collected(self):
        source = """
        class Pair { int left; int right; }
        void main() {
            for (int i = 0; i < 300; i = i + 1) {
                Pair a = new Pair();
                Pair b = new Pair();
                // A cycle that becomes garbage every iteration: mark &
                // sweep must reclaim it (refcounting could not).
                a.left = 0; // placeholder
            }
            print_int(1);
        }
        """
        from repro.lang import compile_minij

        platform = NullPlatform()
        program = compile_minij(
            source, natives=platform,
            native_signatures={"print_int": (("int",), "void")})
        vm = Interpreter(program, platform,
                         VmConfig(heap=HeapConfig(gc_threshold_bytes=8_192)))
        vm.run()
        assert vm.heap.objects_collected > 100
        assert platform.printed == [1]


class TestPacketTraceApi:
    def test_trace_from_real_execution_feeds_detectors(self):
        program = build_nfs_program()
        workload = build_nfs_workload(SplitMix64(31), num_requests=12)
        result = play(program, MachineConfig(), workload=workload, seed=0)
        trace = PacketTrace.from_result(result)
        assert len(trace) == len(result.tx)
        ipds = trace.ipds_ms()
        assert ipds == pytest.approx(result.ipds_ms())
        # The trace serializes, parses, and scores without loss.
        restored = PacketTrace.from_json(trace.to_json())
        assert restored.ipds_ms() == pytest.approx(ipds)
        detector = ShapeDetector()
        detector.fit([ipds])
        assert detector.score(ipds) == detector.score(restored.ipds_ms())

    def test_shifted_trace_matches_covert_execution_shape(self):
        """PacketTrace.shifted models covert_delay's cumulative effect:
        delaying packet k shifts every later packet too."""
        program = build_nfs_program()
        workload_a = build_nfs_workload(SplitMix64(32), num_requests=10)
        workload_b = build_nfs_workload(SplitMix64(32), num_requests=10)
        clean = play(program, MachineConfig(), workload=workload_a, seed=0)
        schedule = [0] * 10
        schedule[4] = 3_400_000   # 1 ms
        covert = play(program, MachineConfig(), workload=workload_b,
                      seed=0, covert_schedule=schedule)
        clean_times = clean.tx_times_ms()
        covert_times = covert.tx_times_ms()
        # Before the delayed packet: identical; after: shifted by ~1 ms.
        for i in range(4):
            assert covert_times[i] == pytest.approx(clean_times[i],
                                                    abs=0.01)
        for i in range(4, 10):
            assert covert_times[i] - clean_times[i] == pytest.approx(
                1.0, abs=0.05)

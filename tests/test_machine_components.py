"""Tests for machine-level components: ring buffers, workloads, noise
presets, and configuration validation."""

import pytest

from repro.determinism import SplitMix64
from repro.errors import HardwareConfigError
from repro.machine import (InteractiveClient, MachineConfig, Request,
                           ScriptedArrivals, scenario_config)
from repro.machine.config import RuntimeKind, StorageKind
from repro.machine.natives import MACHINE_REGISTRY
from repro.machine.noise import NOISE_SCENARIOS, NoiseScenario
from repro.machine.ringbuf import (ENTRY_STRIDE, NUM_ENTRIES, STBuffer,
                                   TSBuffer)
from repro.net.jitter import EAST_COAST_JITTER


class TestSTBuffer:
    def test_fifo_semantics(self):
        buffer = STBuffer()
        assert buffer.head() is None
        buffer.stage(b"a")
        buffer.stage(b"b")
        assert buffer.pending == 2
        assert buffer.head() == b"a"
        assert buffer.consume() == b"a"
        assert buffer.consume() == b"b"
        assert buffer.head() is None

    def test_ring_addresses_advance_and_wrap(self):
        buffer = STBuffer()
        first = buffer.head_vaddr()
        for i in range(NUM_ENTRIES):
            buffer.stage(bytes([i % 256]))
            buffer.consume()
        assert buffer.head_vaddr() == first  # wrapped a full ring

    def test_check_addresses_same_while_empty(self):
        """§3.5: the next-entry check touches the same addresses whether
        or not an entry is present (the fake-timestamp trick)."""
        buffer = STBuffer()
        empty_check = buffer.check_addresses()
        buffer.stage(b"x")
        assert buffer.check_addresses() == empty_check

    def test_copy_addresses_word_granularity(self):
        buffer = STBuffer()
        assert len(buffer.copy_addresses(1)) == 1
        assert len(buffer.copy_addresses(8)) == 1
        assert len(buffer.copy_addresses(9)) == 2

    def test_oversized_packet_rejected(self):
        buffer = STBuffer()
        with pytest.raises(HardwareConfigError):
            buffer.stage(b"x" * ENTRY_STRIDE)

    def test_counters(self):
        buffer = STBuffer()
        buffer.stage(b"a")
        buffer.consume()
        assert buffer.staged_total == 1
        assert buffer.consumed_total == 1


class TestTSBuffer:
    def test_write_addresses_include_header(self):
        buffer = TSBuffer()
        addresses = buffer.write_addresses(16)
        assert len(addresses) == 2 + 2  # header words + payload words

    def test_tail_advances(self):
        buffer = TSBuffer()
        first = buffer.write_addresses(8)
        buffer.advance()
        second = buffer.write_addresses(8)
        assert first != second
        assert buffer.written_total == 1


class TestScriptedArrivals:
    def test_sorted_and_finished(self):
        class FakeMachine:
            def __init__(self):
                self.scheduled = []

            def schedule_arrival(self, cycle, payload):
                self.scheduled.append((cycle, payload))

        workload = ScriptedArrivals([(200, b"b"), (100, b"a")])
        assert not workload.finished()
        machine = FakeMachine()
        workload.start(machine)
        assert machine.scheduled == [(100, b"a"), (200, b"b")]
        assert workload.finished()
        workload.on_transmit(machine, 300, b"resp")  # no-op
        assert machine.scheduled == [(100, b"a"), (200, b"b")]


class TestInteractiveClient:
    class FakeMachine:
        def __init__(self):
            self.scheduled = []

        def schedule_arrival(self, cycle, payload):
            self.scheduled.append((cycle, payload))

    def test_request_response_pacing(self):
        requests = [Request(b"q1"), Request(b"q2")]
        client = InteractiveClient(requests, SplitMix64(1),
                                   one_way_delay_cycles=1000,
                                   mean_think_cycles=0.0,
                                   first_arrival_cycle=50)
        machine = self.FakeMachine()
        client.start(machine)
        assert len(machine.scheduled) == 1
        assert machine.scheduled[0][1] == b"q1"
        assert not client.finished()
        # Server answers request 1 -> request 2 scheduled after the
        # response, delayed by the one-way time.
        client.on_transmit(machine, 5000, b"r1")
        assert machine.scheduled[1][1] == b"q2"
        assert machine.scheduled[1][0] >= 6000
        client.on_transmit(machine, 9000, b"r2")
        assert client.finished()

    def test_multi_packet_responses(self):
        requests = [Request(b"q1", responses_expected=3), Request(b"q2")]
        client = InteractiveClient(requests, SplitMix64(2),
                                   mean_think_cycles=0.0)
        machine = self.FakeMachine()
        client.start(machine)
        client.on_transmit(machine, 100, b"part1")
        client.on_transmit(machine, 200, b"part2")
        assert len(machine.scheduled) == 1   # still waiting for part 3
        client.on_transmit(machine, 300, b"part3")
        assert len(machine.scheduled) == 2   # q2 released

    def test_shutdown_payload_scheduled_last(self):
        client = InteractiveClient([Request(b"q")], SplitMix64(3),
                                   mean_think_cycles=0.0,
                                   shutdown_payload=b"\xff")
        machine = self.FakeMachine()
        client.start(machine)
        assert not client.finished()
        client.on_transmit(machine, 100, b"r")
        assert machine.scheduled[-1][1] == b"\xff"
        assert client.finished()

    def test_receiver_records_transmissions(self):
        client = InteractiveClient([Request(b"q")], SplitMix64(4),
                                   mean_think_cycles=0.0)
        machine = self.FakeMachine()
        client.start(machine)
        client.on_transmit(machine, 123, b"resp")
        assert client.received == [(123, b"resp")]

    def test_jitter_model_applied(self):
        client = InteractiveClient([Request(b"q")], SplitMix64(5),
                                   jitter_model=EAST_COAST_JITTER,
                                   mean_think_cycles=0.0,
                                   first_arrival_cycle=0)
        machine = self.FakeMachine()
        client.start(machine)
        # Jitter pushes the arrival past the base cycle.
        assert machine.scheduled[0][0] > 0

    def test_needs_requests(self):
        with pytest.raises(ValueError):
            InteractiveClient([], SplitMix64(1))


class TestNoisePresets:
    def test_all_scenarios_buildable(self):
        for scenario in NOISE_SCENARIOS:
            config = scenario_config(scenario)
            assert isinstance(config, MachineConfig)
            assert config.name == scenario.value

    def test_string_lookup(self):
        assert scenario_config("sanity").name == "sanity"
        with pytest.raises(HardwareConfigError):
            scenario_config("cosmic")

    def test_sanity_is_fully_mitigated(self):
        config = scenario_config(NoiseScenario.SANITY)
        assert config.irqs_to_supporting_core
        assert not config.preemption_enabled
        assert config.flush_caches_at_start
        assert config.deterministic_frames
        assert not config.freq_scaling and not config.turbo
        assert config.pad_storage

    def test_dirty_is_noisy(self):
        config = scenario_config("dirty")
        assert config.preemption_enabled
        assert not config.flush_caches_at_start
        assert config.turbo

    def test_kernel_quiet_disables_irqs(self):
        config = scenario_config("kernel-quiet")
        assert not config.irqs_enabled


class TestMachineConfig:
    def test_flush_and_random_cache_exclusive(self):
        with pytest.raises(HardwareConfigError):
            MachineConfig(flush_caches_at_start=True,
                          random_initial_cache=True)

    def test_with_overrides_preserves_rest(self):
        base = MachineConfig()
        changed = base.with_overrides(frequency_hz=1e9)
        assert changed.frequency_hz == 1e9
        assert changed.l1_config == base.l1_config
        assert base.frequency_hz == 3.4e9  # original untouched

    def test_cost_table_follows_runtime(self):
        from repro.hw.cpu import CostClass

        interpreted = MachineConfig().cost_table
        jitted = MachineConfig(runtime=RuntimeKind.ORACLE_JIT).cost_table
        assert jitted[CostClass.ALU] < interpreted[CostClass.ALU]

    def test_validation(self):
        with pytest.raises(HardwareConfigError):
            MachineConfig(frequency_hz=0)
        with pytest.raises(HardwareConfigError):
            MachineConfig(poll_stride_cycles=0)

    def test_storage_kinds(self):
        assert MachineConfig(storage=StorageKind.HDD).storage == \
            StorageKind.HDD


class TestNativeRegistry:
    def test_machine_abi_is_stable(self):
        """Programs are assembled against native indices; the registry
        order is part of the machine ABI and must not silently change."""
        names = MACHINE_REGISTRY.names
        assert names[:3] == ["print_int", "print_float", "nano_time"]
        assert "covert_delay" in names
        assert "covert_next_delay" in names
        assert "busy_cycles" in names
        # The pre-executive ABI prefix is frozen: new natives may only be
        # appended (programs assembled against the old table keep their
        # indices), and "exit" closes that original prefix.
        assert MACHINE_REGISTRY.native_index("exit") == 11
        assert names.index("exec_yield") > names.index("exit")

    def test_specs_match_arity(self):
        spec = MACHINE_REGISTRY.spec(
            MACHINE_REGISTRY.native_index("send_packet"))
        assert spec.num_args == 2
        assert not spec.returns_value
        spec = MACHINE_REGISTRY.spec(
            MACHINE_REGISTRY.native_index("nano_time"))
        assert spec.num_args == 0
        assert spec.returns_value

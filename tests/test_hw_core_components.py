"""Tests for clock, bus, memory/TLB, branch predictor, CPU model,
interrupts, storage, and NIC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError
from repro.hw.branch import BranchPredictor, BranchPredictorConfig
from repro.hw.bus import BusConfig, MemoryBus
from repro.hw.clock import VirtualClock
from repro.hw.cpu import (CostClass, CpuModel, CpuTimingConfig,
                          INTERPRETER_COSTS, JIT_COSTS)
from repro.hw.interrupts import InterruptController, IrqSource, standard_sources
from repro.hw.memory import AddressSpace, FrameAllocator, PAGE_SIZE
from repro.hw.nic import Nic
from repro.hw.storage import Hdd, PaddedStorage, Ssd
from repro.hw.tlb import Tlb, TlbConfig


class TestVirtualClock:
    def test_advance_accumulates(self):
        clk = VirtualClock()
        clk.advance(100)
        clk.advance(50)
        assert clk.cycles == 150

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_ns_conversion(self):
        clk = VirtualClock(frequency_hz=1e9)
        clk.advance(1000)
        assert clk.now_ns() == pytest.approx(1000.0)
        assert clk.now_ms() == pytest.approx(1e-3)

    def test_cycles_for_ns_roundtrip(self):
        clk = VirtualClock(frequency_hz=3.4e9)
        assert clk.cycles_for_ns(0) == 0
        assert clk.cycles_for_ms(1.0) == pytest.approx(3.4e6, rel=1e-6)

    def test_reset(self):
        clk = VirtualClock()
        clk.advance(5)
        clk.reset()
        assert clk.cycles == 0

    def test_bad_frequency_rejected(self):
        with pytest.raises(HardwareConfigError):
            VirtualClock(frequency_hz=0)


class TestMemoryBus:
    def test_no_traffic_no_penalty(self):
        bus = MemoryBus(BusConfig(), SplitMix64(1))
        assert all(bus.transfer_penalty() == 0 for _ in range(100))

    def test_traffic_induces_stalls(self):
        bus = MemoryBus(BusConfig(contention_probability=0.5), SplitMix64(1))
        bus.set_traffic_level(1.0)
        stalls = [bus.transfer_penalty() for _ in range(500)]
        assert any(s > 0 for s in stalls)
        assert bus.collisions > 0
        assert bus.total_stall_cycles == sum(stalls)

    def test_stall_bounded(self):
        cfg = BusConfig(contention_probability=1.0, max_stall_cycles=7)
        bus = MemoryBus(cfg, SplitMix64(2))
        bus.set_traffic_level(1.0)
        assert all(1 <= bus.transfer_penalty() <= 7 for _ in range(200))

    def test_traffic_clamped(self):
        bus = MemoryBus(BusConfig(), ZeroNoise())
        bus.add_traffic(5.0)
        assert bus.traffic_level == 1.0
        bus.decay_traffic(0.0)
        assert bus.traffic_level == 0.0

    def test_decay(self):
        bus = MemoryBus(BusConfig(), ZeroNoise())
        bus.set_traffic_level(0.8)
        bus.decay_traffic(0.5)
        assert bus.traffic_level == pytest.approx(0.4)

    def test_zero_noise_never_stalls(self):
        bus = MemoryBus(BusConfig(contention_probability=0.9), ZeroNoise())
        bus.set_traffic_level(1.0)
        # ZeroNoise.random()==0.0 < p, so a collision fires but with the
        # minimum stall; determinism still holds.
        first = [bus.transfer_penalty() for _ in range(5)]
        assert first == [1, 1, 1, 1, 1]

    def test_invalid_config(self):
        with pytest.raises(HardwareConfigError):
            BusConfig(contention_probability=1.5)
        with pytest.raises(HardwareConfigError):
            BusConfig(max_stall_cycles=-1)


class TestMemoryAndTlb:
    def test_deterministic_allocator_sequence(self):
        a = FrameAllocator(16, deterministic=True, noise_rng=SplitMix64(1))
        assert [a.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_random_allocator_is_seed_dependent(self):
        a = FrameAllocator(64, deterministic=False, noise_rng=SplitMix64(1))
        b = FrameAllocator(64, deterministic=False, noise_rng=SplitMix64(2))
        seq_a = [a.allocate() for _ in range(16)]
        seq_b = [b.allocate() for _ in range(16)]
        assert seq_a != seq_b

    def test_allocator_exhaustion(self):
        a = FrameAllocator(1, deterministic=True, noise_rng=ZeroNoise())
        a.allocate()
        with pytest.raises(HardwareConfigError):
            a.allocate()

    def test_translation_is_stable(self):
        alloc = FrameAllocator(32, deterministic=True, noise_rng=ZeroNoise())
        space = AddressSpace(alloc)
        p1 = space.translate(0x1234)
        p2 = space.translate(0x1234)
        assert p1 == p2
        assert p1 & (PAGE_SIZE - 1) == 0x234

    def test_same_frames_same_physical_addresses(self):
        def build():
            alloc = FrameAllocator(32, deterministic=True,
                                   noise_rng=ZeroNoise())
            space = AddressSpace(alloc)
            return [space.translate(v) for v in
                    (0x0, 0x1000, 0x2000, 0x10, 0x3000)]
        assert build() == build()

    def test_random_frames_differ_across_seeds(self):
        def build(seed):
            alloc = FrameAllocator(256, deterministic=False,
                                   noise_rng=SplitMix64(seed))
            space = AddressSpace(alloc)
            return [space.translate(v * PAGE_SIZE) for v in range(16)]
        assert build(1) != build(2)

    def test_mapping_fingerprint(self):
        alloc = FrameAllocator(8, deterministic=True, noise_rng=ZeroNoise())
        space = AddressSpace(alloc)
        fp0 = space.mapping_fingerprint()
        space.translate(0)
        assert space.mapping_fingerprint() != fp0
        assert space.mapped_pages == 1

    def test_bad_page_size(self):
        alloc = FrameAllocator(8, deterministic=True, noise_rng=ZeroNoise())
        with pytest.raises(HardwareConfigError):
            AddressSpace(alloc, page_size=3000)

    def test_tlb_hit_miss(self):
        tlb = Tlb(TlbConfig(entries=2, miss_cycles=30))
        assert tlb.access(1) == 30
        assert tlb.access(1) == 0
        assert tlb.access(2) == 30
        assert tlb.access(3) == 30  # evicts vpn 1 (LRU)
        assert tlb.access(1) == 30
        assert tlb.hits == 1 and tlb.misses == 4

    def test_tlb_lru_recency(self):
        tlb = Tlb(TlbConfig(entries=2))
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)   # 2 is now LRU
        tlb.access(3)   # evicts 2
        assert tlb.access(1) == 0
        assert tlb.access(2) != 0

    def test_tlb_flush(self):
        tlb = Tlb(TlbConfig())
        tlb.access(5)
        tlb.flush()
        assert tlb.occupancy == 0
        assert tlb.access(5) == tlb.config.miss_cycles

    def test_tlb_config_validation(self):
        with pytest.raises(HardwareConfigError):
            TlbConfig(entries=0)
        with pytest.raises(HardwareConfigError):
            TlbConfig(miss_cycles=-1)


class TestBranchPredictor:
    def test_learns_a_loop(self):
        bp = BranchPredictor(BranchPredictorConfig())
        # A loop branch at pc=100, taken 50 times: after warm-up the
        # predictor should stop mispredicting.
        penalties = [bp.record(100, True) for _ in range(50)]
        assert penalties[0] > 0          # initial weak-not-taken state
        assert all(p == 0 for p in penalties[5:])

    def test_alternating_pattern_hurts(self):
        bp = BranchPredictor(BranchPredictorConfig())
        penalties = [bp.record(100, i % 2 == 0) for i in range(100)]
        assert sum(1 for p in penalties if p > 0) > 20

    def test_flush_resets_state(self):
        bp = BranchPredictor(BranchPredictorConfig())
        for _ in range(10):
            bp.record(7, True)
        fp = bp.state_fingerprint()
        assert fp != 0
        bp.flush()
        assert bp.state_fingerprint() == 0

    def test_miss_rate(self):
        bp = BranchPredictor(BranchPredictorConfig())
        assert bp.miss_rate == 0.0
        bp.record(0, True)
        assert 0.0 <= bp.miss_rate <= 1.0

    def test_config_validation(self):
        with pytest.raises(HardwareConfigError):
            BranchPredictorConfig(table_entries=1000)
        with pytest.raises(HardwareConfigError):
            BranchPredictorConfig(mispredict_cycles=-5)

    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_identical_branch_streams_identical_state(self, stream):
        a = BranchPredictor(BranchPredictorConfig())
        b = BranchPredictor(BranchPredictorConfig())
        for pc, taken in stream:
            assert a.record(pc, taken) == b.record(pc, taken)
        assert a.state_fingerprint() == b.state_fingerprint()


class TestCpuModel:
    def test_noise_free_costs_are_base(self):
        cpu = CpuModel(CpuTimingConfig(speculation_sigma=0.0), ZeroNoise())
        for cls in CostClass:
            assert cpu.instruction_cost(cls) == INTERPRETER_COSTS[cls]

    def test_jit_table_is_cheaper(self):
        for cls in CostClass:
            assert JIT_COSTS[cls] <= INTERPRETER_COSTS[cls]

    def test_freq_scaling_perturbs_costs(self):
        cfg = CpuTimingConfig(freq_scaling_enabled=True, freq_quantum=10,
                              speculation_sigma=0.0, speculation_period=8)
        cpu = CpuModel(cfg, SplitMix64(3))
        costs = {cpu.instruction_cost(CostClass.ALU) for _ in range(2000)}
        assert len(costs) > 1

    def test_disabled_scaling_is_stable(self):
        cfg = CpuTimingConfig(speculation_sigma=0.0)
        cpu = CpuModel(cfg, SplitMix64(3))
        costs = {cpu.instruction_cost(CostClass.ALU) for _ in range(2000)}
        assert costs == {INTERPRETER_COSTS[CostClass.ALU]}

    def test_turbo_adds_jitter(self):
        cfg = CpuTimingConfig(turbo_enabled=True, speculation_sigma=0.002,
                              speculation_period=16)
        cpu = CpuModel(cfg, SplitMix64(9))
        total = sum(cpu.instruction_cost(CostClass.ALU) for _ in range(5000))
        base = INTERPRETER_COSTS[CostClass.ALU] * 5000
        assert total != base

    def test_seed_determinism(self):
        def total(seed):
            cfg = CpuTimingConfig(freq_scaling_enabled=True,
                                  turbo_enabled=True)
            cpu = CpuModel(cfg, SplitMix64(seed))
            return sum(cpu.instruction_cost(CostClass.MEM)
                       for _ in range(3000))
        assert total(4) == total(4)
        assert total(4) != total(5)

    def test_config_validation(self):
        with pytest.raises(HardwareConfigError):
            CpuTimingConfig(freq_quantum=0)
        with pytest.raises(HardwareConfigError):
            CpuTimingConfig(speculation_sigma=-0.1)


class TestInterrupts:
    def test_no_sources_no_interference(self):
        ic = InterruptController([], SplitMix64(1), routed_to_timed_core=True)
        assert ic.pending_interference(10**9) == (0, 0, 0.0)

    def test_timed_core_routing_charges_cycles(self):
        src = IrqSource("t", mean_interval_cycles=1000.0, handler_cycles=500,
                        cache_lines=8, bus_traffic=0.1)
        ic = InterruptController([src], SplitMix64(2),
                                 routed_to_timed_core=True)
        direct, lines, traffic = ic.pending_interference(100_000)
        assert direct > 0 and lines > 0 and traffic > 0
        assert ic.firings > 10

    def test_sc_routing_only_leaks_bus_traffic(self):
        src = IrqSource("t", mean_interval_cycles=1000.0, handler_cycles=500)
        ic = InterruptController([src], SplitMix64(2),
                                 routed_to_timed_core=False)
        direct, lines, traffic = ic.pending_interference(100_000)
        assert direct == 0 and lines == 0
        assert traffic > 0

    def test_zero_noise_never_fires(self):
        ic = InterruptController(standard_sources(), ZeroNoise(),
                                 routed_to_timed_core=True)
        assert ic.pending_interference(10**12) == (0, 0, 0.0)
        assert ic.firings == 0

    def test_monotonic_consumption(self):
        src = IrqSource("t", mean_interval_cycles=1000.0, handler_cycles=1)
        ic = InterruptController([src], SplitMix64(7),
                                 routed_to_timed_core=True)
        ic.pending_interference(50_000)
        fired_once = ic.firings
        direct, _, _ = ic.pending_interference(50_000)
        assert ic.firings == fired_once  # same instant: nothing new
        assert direct == 0

    def test_source_validation(self):
        with pytest.raises(HardwareConfigError):
            IrqSource("bad", mean_interval_cycles=0, handler_cycles=1)
        with pytest.raises(HardwareConfigError):
            IrqSource("bad", mean_interval_cycles=10, handler_cycles=-1)

    def test_standard_sources_shape(self):
        sources = standard_sources()
        assert {s.name for s in sources} == {"timer", "nic", "disk", "misc"}


class TestStorage:
    def test_ssd_latency_range(self):
        ssd = Ssd(SplitMix64(1), base_cycles=100, jitter_cycles=10)
        costs = [ssd.read(i) for i in range(200)]
        assert all(100 <= c <= 110 for c in costs)
        assert ssd.reads == 200
        assert ssd.total_cycles == sum(costs)

    def test_ssd_zero_noise_constant(self):
        ssd = Ssd(ZeroNoise(), base_cycles=100, jitter_cycles=10)
        assert len({ssd.read(i) for i in range(50)}) == 1

    def test_hdd_variance_exceeds_ssd(self):
        hdd = Hdd(SplitMix64(2))
        ssd = Ssd(SplitMix64(2))
        hdd_costs = [hdd.read(i * 1000) for i in range(100)]
        ssd_costs = [ssd.read(i * 1000) for i in range(100)]
        spread = lambda xs: max(xs) - min(xs)
        assert spread(hdd_costs) > 100 * spread(ssd_costs)

    def test_hdd_seek_depends_on_distance(self):
        hdd = Hdd(ZeroNoise(), seek_cycles_per_block=10,
                  rotation_cycles=1)  # rotation -> randint(0,0)=0
        hdd.read(0)
        near = hdd.read(10)
        hdd.read(0)
        far = hdd.read(10_000)
        assert far > near

    def test_padding_makes_latency_constant(self):
        padded = PaddedStorage(Hdd(SplitMix64(3)))
        costs = {padded.read(i * 5000) for i in range(50)}
        assert len(costs) == 1
        assert costs.pop() == padded.pad_to_cycles

    def test_padding_below_worst_case_rejected(self):
        with pytest.raises(HardwareConfigError):
            PaddedStorage(Ssd(ZeroNoise(), base_cycles=100, jitter_cycles=10),
                          pad_to_cycles=50)

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            Ssd(ZeroNoise()).read(-1)

    def test_parameter_validation(self):
        with pytest.raises(HardwareConfigError):
            Ssd(ZeroNoise(), base_cycles=0)
        with pytest.raises(HardwareConfigError):
            Hdd(ZeroNoise(), rotation_cycles=0)


class TestNic:
    def test_arrival_ordering(self):
        nic = Nic()
        nic.schedule_rx(200, b"b")
        nic.schedule_rx(100, b"a")
        assert nic.pending_rx == 2
        assert nic.next_arrival_cycle() == 100
        assert nic.poll_rx(150) == [b"a"]
        assert nic.poll_rx(250) == [b"b"]
        assert nic.rx_delivered == 2

    def test_poll_before_arrival_empty(self):
        nic = Nic()
        nic.schedule_rx(1000, b"x")
        assert nic.poll_rx(999) == []

    def test_fifo_among_simultaneous(self):
        nic = Nic()
        nic.schedule_rx(100, b"first")
        nic.schedule_rx(100, b"second")
        assert nic.poll_rx(100) == [b"first", b"second"]

    def test_transmit_records_time(self):
        nic = Nic()
        nic.transmit(42, b"out")
        assert nic.tx_packets == [(42, b"out")]

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Nic().schedule_rx(-1, b"x")

"""Replay memoization: hits are bit-identical, keys are content-addressed.

Replay is a pure function of (program, log, config, seed, budget), so a
cache hit must be indistinguishable from re-execution — and anything
that could change the result (a different log byte, seed, or config
knob) must miss.
"""

from __future__ import annotations

import pytest

from repro.apps import (build_nfs_program, build_nfs_workload, compile_app,
                        zero_array_source)
from repro.core.replay_cache import ReplayCache
from repro.core.resilience import audit_resilient
from repro.core.tdr import play, replay, round_trip
from repro.determinism import SplitMix64
from repro.machine import MachineConfig
from repro.obs.metrics import MetricsRegistry

REQUESTS = 4


@pytest.fixture(scope="module")
def nfs_program():
    return build_nfs_program()


@pytest.fixture(scope="module")
def zero_program():
    return compile_app(zero_array_source(512))


@pytest.fixture(scope="module")
def zero_play(zero_program):
    return play(zero_program, MachineConfig(), seed=2)


def test_hit_is_bit_identical(zero_program, zero_play):
    cache = ReplayCache()
    first = cache.replay(zero_program, zero_play.log, MachineConfig(),
                         seed=5)
    assert (cache.hits, cache.misses) == (0, 1)
    second = cache.replay(zero_program, zero_play.log, MachineConfig(),
                          seed=5)
    assert (cache.hits, cache.misses) == (1, 1)
    fresh = replay(zero_program, zero_play.log, MachineConfig(), seed=5)
    for result in (first, second):
        assert result.total_cycles == fresh.total_cycles
        assert result.instructions == fresh.instructions
        assert result.tx == fresh.tx


def test_key_sensitivity(zero_program, zero_play, nfs_program):
    cache = ReplayCache()
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
    # Different seed and different config knob: both miss.
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=6)
    slow = MachineConfig().with_overrides(frequency_hz=2.0e9)
    cache.replay(zero_program, zero_play.log, slow, seed=5)
    assert (cache.hits, cache.misses) == (0, 3)
    # Different logged inputs (distinct workloads) miss too.
    for wseed in (7300, 7301):
        workload = build_nfs_workload(SplitMix64(wseed),
                                      num_requests=REQUESTS)
        observed = play(nfs_program, MachineConfig(), workload=workload,
                        seed=2)
        cache.replay(nfs_program, observed.log, MachineConfig(), seed=5)
    assert (cache.hits, cache.misses) == (0, 5)
    assert len(cache) == 5


def test_hits_are_isolated_from_mutation(zero_program, zero_play):
    cache = ReplayCache()
    first = cache.replay(zero_program, zero_play.log, MachineConfig(),
                         seed=5)
    first.tx.append((10 ** 12, b"poison"))
    second = cache.replay(zero_program, zero_play.log, MachineConfig(),
                          seed=5)
    assert cache.hits == 1
    assert second.tx != first.tx
    assert not any(payload == b"poison" for _, payload in second.tx)


def test_lru_eviction(zero_program, zero_play):
    cache = ReplayCache(maxsize=2)
    for seed in (5, 6, 7):
        cache.replay(zero_program, zero_play.log, MachineConfig(),
                     seed=seed)
    assert len(cache) == 2
    # seed=5 was least recently used, so it re-misses; seed=7 hits.
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=7)
    assert cache.hits == 1
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
    assert cache.misses == 4


def test_metrics_counters(zero_program, zero_play):
    registry = MetricsRegistry()
    cache = ReplayCache(registry=registry)
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
    cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
    snapshot = registry.collect()
    assert snapshot["tdr_replay_cache_hits_total"] == 1
    assert snapshot["tdr_replay_cache_misses_total"] == 1
    assert snapshot["tdr_replay_cache_entries"] == 1


def test_round_trip_reuses_reference_replay(nfs_program):
    program = nfs_program
    cache = ReplayCache()

    def trip():
        workload = build_nfs_workload(SplitMix64(7100),
                                      num_requests=REQUESTS)
        return round_trip(program, MachineConfig(), workload=workload,
                          play_seed=2, replay_seed=8, replay_cache=cache)

    first, second = trip(), trip()
    # Same seeds -> same log -> the second trip's reference replay hits.
    assert (cache.hits, cache.misses) == (1, 1)
    assert second.replay.total_cycles == first.replay.total_cycles
    assert second.audit.deviation_score() == first.audit.deviation_score()


def test_audit_resilient_verdict_unchanged_by_cache(nfs_program):
    program = nfs_program
    workload = build_nfs_workload(SplitMix64(7200), num_requests=REQUESTS)
    observed = play(program, MachineConfig(), workload=workload, seed=2)
    log_bytes = observed.log.to_bytes()

    plain = audit_resilient(program, observed, log_bytes,
                            config=MachineConfig(), replay_seed=8)
    cache = ReplayCache()
    cached = [audit_resilient(program, observed, log_bytes,
                              config=MachineConfig(), replay_seed=8,
                              replay_cache=cache)
              for _ in range(2)]
    assert cache.hits == 1
    for outcome in cached:
        assert outcome.classification == plain.classification
        assert outcome.consistent == plain.consistent
        assert outcome.coverage == plain.coverage


class TestNodeNamespacedMetrics:
    """Per-node hit/miss attribution for the fleet's shared tier."""

    def test_node_label_namespaces_series(self, zero_program, zero_play):
        registry = MetricsRegistry()
        cache = ReplayCache(registry=registry, node="node-03")
        cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
        cache.replay(zero_program, zero_play.log, MachineConfig(), seed=5)
        snapshot = registry.collect()
        assert snapshot['tdr_replay_cache_hits_total{node="node-03"}'] == 1
        assert snapshot['tdr_replay_cache_misses_total{node="node-03"}'] == 1
        # The plain series belongs to the unlabelled single-node path.
        assert "tdr_replay_cache_hits_total" not in snapshot

    def test_views_share_the_store(self, zero_program, zero_play):
        registry = MetricsRegistry()
        tier = ReplayCache(registry=registry)
        node_a, node_b = tier.view("node-00"), tier.view("node-01")
        log = zero_play.log
        assert node_a.fetch_value(zero_program, log, seed=5) is None
        node_a.store_value(zero_program, log, "payload", seed=5)
        # Stored through A, visible through B: one content-addressed tier.
        assert node_b.fetch_value(zero_program, log, seed=5) == "payload"
        assert len(node_a) == len(node_b) == len(tier) == 1

    def test_views_attribute_hits_per_node(self, zero_program, zero_play):
        registry = MetricsRegistry()
        tier = ReplayCache(registry=registry)
        node_a, node_b = tier.view("node-00"), tier.view("node-01")
        log = zero_play.log
        node_a.fetch_value(zero_program, log, seed=5)          # miss (A)
        node_a.store_value(zero_program, log, "payload", seed=5)
        node_b.fetch_value(zero_program, log, seed=5)          # hit (B)
        node_b.fetch_value(zero_program, log, seed=5)          # hit (B)
        assert (node_a.hits, node_a.misses) == (0, 1)
        assert (node_b.hits, node_b.misses) == (2, 0)
        snapshot = registry.collect()
        assert snapshot['tdr_replay_cache_misses_total{node="node-00"}'] == 1
        assert snapshot['tdr_replay_cache_hits_total{node="node-01"}'] == 2

    def test_tier_aggregate_sums_view_traffic(self, zero_program,
                                              zero_play):
        registry = MetricsRegistry()
        tier = ReplayCache(registry=registry)
        views = [tier.view(f"node-{i:02d}") for i in range(3)]
        log = zero_play.log
        views[0].fetch_value(zero_program, log, seed=5)
        views[0].store_value(zero_program, log, "payload", seed=5)
        for view in views[1:]:
            view.fetch_value(zero_program, log, seed=5)
        assert (tier.hits, tier.misses) == (2, 1)
        assert tier.hits == sum(v.hits for v in views)
        assert tier.misses == sum(v.misses for v in views)
        # The unlabelled aggregate series stays the fallback total.
        snapshot = registry.collect()
        assert snapshot["tdr_replay_cache_hits_total"] == 2
        assert snapshot["tdr_replay_cache_misses_total"] == 1

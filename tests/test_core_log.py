"""Tests for the event log, symmetric access, and sessions."""

import pytest

from repro.core.log import EventKind, EventLog, LogEntry
from repro.core.session import (NaiveReplaySession, PlaySession,
                                ReplaySession)
from repro.core.symmetric import (PLAY_MASK, REPLAY_MASK, SymmetricCell,
                                  symmetric_access)
from repro.errors import LogFormatError, ReplayDivergenceError


class TestEventLog:
    def test_roundtrip_serialization(self):
        log = EventLog()
        log.record_packet(100, b"hello")
        log.record_time(150, 123456789)
        log.record_packet(200, b"\x00\xff" * 30)
        data = log.to_bytes()
        parsed = EventLog.from_bytes(data)
        assert len(parsed) == 3
        assert parsed.entries[0] == LogEntry(EventKind.PACKET, 100,
                                             payload=b"hello")
        assert parsed.entries[1] == LogEntry(EventKind.TIME, 150,
                                             value=123456789)
        assert parsed.entries[2].payload == b"\x00\xff" * 30

    def test_negative_time_value_roundtrips(self):
        log = EventLog()
        log.record_time(1, -42)
        assert EventLog.from_bytes(log.to_bytes()).entries[0].value == -42

    def test_empty_log_roundtrips(self):
        assert len(EventLog.from_bytes(EventLog().to_bytes())) == 0

    def test_monotonicity_enforced(self):
        log = EventLog()
        log.record_packet(100, b"a")
        with pytest.raises(LogFormatError):
            log.record_packet(50, b"b")

    def test_same_count_allowed(self):
        log = EventLog()
        log.record_packet(100, b"a")
        log.record_time(100, 5)
        assert len(log) == 2

    def test_size_accounting(self):
        log = EventLog()
        log.record_packet(1, b"x" * 100)
        log.record_time(2, 7)
        assert log.size_bytes() == len(log.to_bytes())
        breakdown = log.size_breakdown()
        assert breakdown["packet"] > breakdown["time"]
        assert sum(breakdown.values()) == log.size_bytes()

    def test_growth_rate(self):
        log = EventLog()
        log.record_packet(1, b"x" * 1024)
        # 1 KiB-plus in 60 seconds ≈ just over 1 kB/minute.
        rate = log.growth_rate_kb_per_minute(60e9)
        assert rate == pytest.approx(log.size_bytes() / 1024, rel=1e-6)
        with pytest.raises(ValueError):
            log.growth_rate_kb_per_minute(0)

    @pytest.mark.parametrize("corruption", [
        b"",                                  # empty
        b"XXXX\x01\x00\x00\x00\x00\x00",      # bad magic
        b"TDRL\x63\x00\x01\x00\x00\x00",      # bad version
    ])
    def test_rejects_corrupt_headers(self, corruption):
        with pytest.raises(LogFormatError):
            EventLog.from_bytes(corruption)

    def test_rejects_truncated_body(self):
        log = EventLog()
        log.record_packet(1, b"hello world")
        data = log.to_bytes()
        with pytest.raises(LogFormatError):
            EventLog.from_bytes(data[:-3])

    def test_rejects_trailing_garbage(self):
        log = EventLog()
        log.record_time(1, 2)
        with pytest.raises(LogFormatError):
            EventLog.from_bytes(log.to_bytes() + b"zz")


class TestSymmetricAccess:
    def test_play_selects_live_value(self):
        cell = SymmetricCell(0x1000, stored=999)
        value, addrs = symmetric_access(42, cell, PLAY_MASK)
        assert value == 42
        assert cell.stored == 42      # "logged" into the buffer
        assert addrs == (0x1000, 0x1000)

    def test_replay_selects_stored_value(self):
        cell = SymmetricCell(0x1000, stored=777)
        value, _ = symmetric_access(42, cell, REPLAY_MASK)
        assert value == 777
        assert cell.stored == 777

    def test_same_addresses_both_modes(self):
        cell_play = SymmetricCell(0x2000)
        cell_replay = SymmetricCell(0x2000)
        _, addrs_play = symmetric_access(5, cell_play, PLAY_MASK)
        _, addrs_replay = symmetric_access(5, cell_replay, REPLAY_MASK)
        assert addrs_play == addrs_replay

    def test_rejects_partial_mask(self):
        with pytest.raises(ValueError):
            symmetric_access(1, SymmetricCell(0), 0xFF)

    def test_64_bit_values(self):
        cell = SymmetricCell(0)
        big = (1 << 63) + 12345
        value, _ = symmetric_access(big, cell, PLAY_MASK)
        assert value == big & ((1 << 64) - 1)


class TestSessions:
    def make_log(self):
        log = EventLog()
        log.record_packet(10, b"req1")
        log.record_time(20, 5000)
        log.record_packet(30, b"req2")
        return log

    def test_play_session_records(self):
        session = PlaySession()
        assert session.packet_due(10, b"req1") == b"req1"
        value = session.observe_time(20, 5000)
        assert value == 5000
        assert session.packet_due(25, None) is None
        assert [e.kind for e in session.log] == [EventKind.PACKET,
                                                 EventKind.TIME]
        assert not session.exhausted()
        assert session.events_handled == 2

    def test_replay_injects_at_recorded_points(self):
        session = ReplaySession(self.make_log())
        assert session.packet_due(5, None) is None      # too early
        assert session.packet_due(10, None) == b"req1"  # exactly on time
        assert session.observe_time(20, 99999) == 5000  # logged value wins
        assert session.packet_due(29, None) is None
        assert session.packet_due(31, None) == b"req2"
        assert session.max_injection_slack == 1
        assert session.exhausted()

    def test_replay_time_divergence_wrong_count(self):
        log = EventLog()
        log.record_time(20, 5000)
        session = ReplaySession(log)
        with pytest.raises(ReplayDivergenceError):
            session.observe_time(21, 0)

    def test_replay_time_divergence_wrong_kind(self):
        log = EventLog()
        log.record_packet(10, b"x")
        session = ReplaySession(log)
        with pytest.raises(ReplayDivergenceError):
            session.observe_time(10, 0)

    def test_replay_time_divergence_empty_log(self):
        session = ReplaySession(EventLog())
        with pytest.raises(ReplayDivergenceError):
            session.observe_time(1, 0)

    def test_tdr_session_has_no_overhead(self):
        session = ReplaySession(self.make_log())
        assert session.injection_overhead_cycles == 0
        assert not session.skips_waits
        assert session.wait_target(0) is None

    def test_naive_session_skips_waits(self):
        session = NaiveReplaySession(self.make_log())
        assert session.skips_waits
        assert session.injection_overhead_cycles > 0
        assert session.wait_target(0) == 10
        assert session.packet_due(10, None) == b"req1"
        session.observe_time(20, 0)
        assert session.wait_target(25) == 30
        # Already-due events do not move the counter backwards.
        assert session.wait_target(50) == 50

    def test_naive_wait_target_none_when_done(self):
        session = NaiveReplaySession(EventLog())
        assert session.wait_target(0) is None

    def test_remaining_events(self):
        session = ReplaySession(self.make_log())
        assert session.remaining_events() == 3
        session.packet_due(10, None)
        assert session.remaining_events() == 2

"""Differential tests: batched cycle charging vs the unbatched reference.

The batched fast path accumulates integer cycle costs between poll/event
boundaries and flushes them as one ``VirtualClock.advance`` per source.
Integer addition is associative, so everything observable — total
cycles, per-source ledger sums, transmission times, audit verdicts —
must be bit-identical to the unbatched implementation, which stays
available behind ``REPRO_NO_BATCH=1`` as the reference.
"""

from __future__ import annotations

import pytest

from repro.apps import build_nfs_program, build_nfs_workload
from repro.core.resilience import audit_resilient
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.hw.cpu import CostClass
from repro.machine import MachineConfig
from repro.machine.machine import Machine
from repro.machine.platform import _ACC_INSTR, _ACC_SOURCES, batching_enabled
from repro.obs import Observability

REQUESTS = 5


@pytest.fixture(scope="module")
def nfs_program():
    return build_nfs_program()


def _round_trip(nfs_program, obs=None, schedule=None):
    workload = build_nfs_workload(SplitMix64(7042), num_requests=REQUESTS)
    return round_trip(nfs_program, MachineConfig(), workload=workload,
                      play_seed=3, replay_seed=9,
                      covert_schedule=schedule, obs=obs)


def _snapshot(result):
    return (result.total_cycles, result.instructions, result.tx,
            result.tx_times_ms(), result.ledger)


def test_batched_matches_unbatched_with_ledger(nfs_program, monkeypatch):
    batched = _round_trip(nfs_program, obs=Observability())
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = _round_trip(nfs_program, obs=Observability())

    assert _snapshot(batched.play) == _snapshot(unbatched.play)
    assert _snapshot(batched.replay) == _snapshot(unbatched.replay)
    # The ledger's per-source sums survive batching exactly (only the
    # number of charge *events* changes, never the cycles they carry).
    assert batched.play.ledger == unbatched.play.ledger
    assert batched.play.ledger is not None


def test_batched_matches_unbatched_no_obs(nfs_program, monkeypatch):
    batched = _round_trip(nfs_program)
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = _round_trip(nfs_program)
    assert _snapshot(batched.play) == _snapshot(unbatched.play)
    assert _snapshot(batched.replay) == _snapshot(unbatched.replay)


def test_covert_schedule_matches_unbatched(nfs_program, monkeypatch):
    schedule = [1_500, 4_000, 2_500, 6_000]
    batched = _round_trip(nfs_program, schedule=list(schedule))
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = _round_trip(nfs_program, schedule=list(schedule))
    assert _snapshot(batched.play) == _snapshot(unbatched.play)


def test_audit_verdicts_match_unbatched(nfs_program, monkeypatch):
    def verdicts():
        trip = _round_trip(nfs_program)
        report = trip.audit
        outcome = audit_resilient(nfs_program, trip.play,
                                  trip.play.log.to_bytes(),
                                  config=MachineConfig(), replay_seed=9)
        return (report.payloads_match, report.deviation_score(),
                report.total_time_error, report.is_consistent(),
                outcome.classification, outcome.consistent,
                outcome.coverage)

    batched = verdicts()
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    assert verdicts() == batched


def test_no_batch_escape_hatch(monkeypatch):
    machine = Machine(MachineConfig(), seed=0, mode="play")
    # Batched: the fast paths are bound as instance attributes.
    assert batching_enabled()
    assert "charge" in machine.platform.__dict__
    assert "mem_access" in machine.platform.__dict__

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    reference = Machine(MachineConfig(), seed=0, mode="play")
    assert not batching_enabled()
    assert "charge" not in reference.platform.__dict__
    assert "mem_access" not in reference.platform.__dict__


def test_no_ledger_charge_is_plain_accumulation():
    """Without observability the charge path does no Source tagging:
    every cost lands in the single instruction slot of the accumulator,
    and flushing advances the clock by exactly that amount."""
    machine = Machine(MachineConfig(), seed=0, mode="play")
    platform = machine.platform
    assert platform._ledger is None

    before = machine.clock.cycles
    for _ in range(64):
        platform.charge(CostClass(0))
    accumulated = platform._acc[_ACC_INSTR]
    assert accumulated > 0
    # No other accumulator slot (TLB/cache/bus/branch) was touched.
    assert all(platform._acc[i] == 0
               for i in range(len(_ACC_SOURCES)) if i != _ACC_INSTR)
    # The clock itself only moves at the flush boundary.
    assert machine.clock.cycles == before
    platform.flush_charges()
    assert machine.clock.cycles == before + accumulated
    assert platform._acc[_ACC_INSTR] == 0

"""Tests for VM checkpointing (segment replay support, §3.2)."""

import pytest

from repro.asm import assemble
from repro.core.checkpoint import (Checkpoint, restore_interpreter,
                                   segment_boundary_cost,
                                   snapshot_interpreter)
from repro.errors import ReplayError
from repro.vm import Interpreter, NullPlatform

COUNTDOWN = """
.global remaining
.func main 0 1
    iconst 1000
    gstore remaining
loop:
    gload remaining
    ifle done
    gload remaining
    iconst 1
    isub
    gstore remaining
    goto loop
done:
    gload remaining
    native print_int
    ret
"""

HEAP_PROGRAM = """
.global keeper
.func main 0 2
    iconst 16
    newarray i
    dup
    iconst 3
    iconst 111
    astore
    gstore keeper
    iconst 500
    store 0
loop:
    load 0
    ifle done
    load 0
    iconst 1
    isub
    store 0
    goto loop
done:
    gload keeper
    iconst 3
    aload
    native print_int
    ret
"""


def make_vm(text):
    platform = NullPlatform()
    program = assemble(text, natives=platform)
    return Interpreter(program, platform), platform


class TestCheckpoint:
    def test_snapshot_captures_instruction_count(self):
        vm, _ = make_vm(COUNTDOWN)
        vm.run(max_instructions=100)
        checkpoint = snapshot_interpreter(vm)
        assert checkpoint.instr_count == vm.instruction_count
        assert not checkpoint.halted

    def test_restore_resumes_identically(self):
        """Running from a checkpoint reproduces the original suffix."""
        vm, platform = make_vm(COUNTDOWN)
        vm.run(max_instructions=1500)
        checkpoint = snapshot_interpreter(vm)
        # Finish the original.
        vm.run()
        original_total = vm.instruction_count
        original_output = list(platform.printed)

        # Fresh interpreter, restore, resume.
        vm2, platform2 = make_vm(COUNTDOWN)
        restore_interpreter(vm2, checkpoint)
        assert vm2.instruction_count == checkpoint.instr_count
        vm2.run()
        assert vm2.instruction_count == original_total
        assert platform2.printed == original_output

    def test_snapshot_is_isolated_from_later_execution(self):
        """The snapshot must deep-copy state, not alias it."""
        vm, _ = make_vm(COUNTDOWN)
        vm.run(max_instructions=200)
        checkpoint = snapshot_interpreter(vm)
        globals_at_snapshot = list(checkpoint.globals_state)
        vm.run(max_instructions=2000)
        assert checkpoint.globals_state == globals_at_snapshot
        assert vm.globals != checkpoint.globals_state

    def test_heap_state_restored(self):
        vm, _ = make_vm(HEAP_PROGRAM)
        vm.run(max_instructions=50)   # past the allocation
        checkpoint = snapshot_interpreter(vm)
        vm2, platform2 = make_vm(HEAP_PROGRAM)
        restore_interpreter(vm2, checkpoint)
        vm2.run()
        assert platform2.printed == [111]

    def test_restore_rejects_empty_checkpoint(self):
        vm, _ = make_vm(COUNTDOWN)
        bad = Checkpoint(instr_count=0, heap_state=None, globals_state=[],
                         threads_state=[], halted=False, next_thread_id=0,
                         current_index=0)
        with pytest.raises(ReplayError):
            restore_interpreter(vm, bad)

    def test_segment_boundary_cost_positive(self):
        assert segment_boundary_cost() > 0

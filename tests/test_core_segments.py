"""Tests for machine-level segment replay (§3.2)."""

import pytest

from repro.apps import build_nfs_program, build_nfs_workload
from repro.core.segments import (MachineCheckpoint, play_with_checkpoint,
                                 replay_segment, segment_of)
from repro.determinism import SplitMix64
from repro.errors import ReplayError
from repro.machine import MachineConfig


@pytest.fixture(scope="module")
def nfs_program():
    return build_nfs_program()


def run_checkpointed(nfs_program, at_instr=120_000, seed=0,
                     requests=16, covert_schedule=None):
    workload = build_nfs_workload(SplitMix64(77), num_requests=requests)
    return play_with_checkpoint(nfs_program, MachineConfig(), workload,
                                at_instr=at_instr, seed=seed,
                                covert_schedule=covert_schedule)


class TestSegmentReplay:
    def test_checkpoint_is_mid_execution(self, nfs_program):
        observed, checkpoint = run_checkpointed(nfs_program)
        assert 0 < checkpoint.tx_count < len(observed.tx)
        assert 0 < checkpoint.log_position < len(observed.log.entries)
        assert 0 < checkpoint.clock_cycles < observed.total_cycles

    def test_segment_reproduces_suffix_functionally(self, nfs_program):
        observed, checkpoint = run_checkpointed(nfs_program)
        segment = replay_segment(nfs_program, observed.log, checkpoint,
                                 MachineConfig(), seed=9)
        original_suffix = segment_of(observed, checkpoint)
        assert [p for _, p in segment.tx] == \
            [p for _, p in original_suffix]

    def test_segment_reproduces_suffix_timing(self, nfs_program):
        """The segment's transmission times line up with the original
        timeline to within the residual noise (plus the quiesce
        transient on the first packets)."""
        observed, checkpoint = run_checkpointed(nfs_program)
        segment = replay_segment(nfs_program, observed.log, checkpoint,
                                 MachineConfig(), seed=9)
        original_suffix = segment_of(observed, checkpoint)
        scale_ms = 1e3 / (MachineConfig().frequency_hz / 1e3) / 1e3
        for (orig_cycle, _), (seg_cycle, _) in zip(original_suffix,
                                                   segment.tx):
            diff_ms = abs(orig_cycle - seg_cycle) * 1e3 \
                / MachineConfig().frequency_hz
            assert diff_ms < 0.5, (orig_cycle, seg_cycle)

    def test_segment_detects_covert_suffix(self, nfs_program):
        """Auditing only a segment still catches a channel that was
        active inside it."""
        schedule = [0] * 16
        schedule[10] = 6_800_000   # ~2 ms on a packet after the checkpoint
        observed, checkpoint = run_checkpointed(nfs_program,
                                                covert_schedule=schedule)
        segment = replay_segment(nfs_program, observed.log, checkpoint,
                                 MachineConfig(), seed=9)
        original_suffix = segment_of(observed, checkpoint)
        diffs_ms = [abs(a - b) * 1e3 / MachineConfig().frequency_hz
                    for (a, _), (b, _) in zip(original_suffix, segment.tx)]
        assert max(diffs_ms) > 1.5   # the covert delay stands out

    def test_invalid_checkpoint_requests(self, nfs_program):
        with pytest.raises(ReplayError):
            run_checkpointed(nfs_program, at_instr=0)
        with pytest.raises(ReplayError):
            # Far beyond the end of the execution.
            run_checkpointed(nfs_program, at_instr=10**9, requests=2)

    def test_bad_log_position_rejected(self, nfs_program):
        observed, checkpoint = run_checkpointed(nfs_program)
        bad = MachineCheckpoint(
            vm_state=checkpoint.vm_state,
            clock_cycles=checkpoint.clock_cycles,
            log_position=len(observed.log.entries) + 5,
            tx_count=checkpoint.tx_count,
            covert_cursor=0)
        with pytest.raises(ReplayError):
            replay_segment(nfs_program, observed.log, bad, MachineConfig())

"""Chaos-matrix tests for the sharded verifier fleet.

The robustness contract under node failure:

* **Zero silent drops** — every ingested (tenant, epoch) session ends in
  a verdict or an explicit ``UnauditedRecord``, whatever the chaos plan.
* **No double verdicts** — at-least-once redelivery never books the same
  job identity twice (idempotent sink).
* **Detection survives failure** — the covert tenant is still flagged
  when its owner crashes, including the razor case where the owner dies
  *between* the spot check and the escalation it spawned.
* **Graceful degradation** — losing quorum flips the fleet to
  spot-check-only instead of dropping tenants.
"""

import pytest

from repro.faults.plans import NodeChaosPlan, NodeCrash
from repro.obs.metrics import MetricsRegistry
from repro.service import FleetService, FleetTopology, default_tenants

COVERT = "tenant-01"


def _run(chaos=None, nodes=3, tenants=3, epochs=2, seed=7, jobs=None,
         topology=None):
    service = FleetService(
        default_tenants(tenants, requests=4),
        topology=topology or FleetTopology(num_nodes=nodes),
        epochs=epochs, seed=seed, chaos=chaos,
        registry=MetricsRegistry())
    return service.run(jobs=jobs)


def _assert_contract(report):
    """The invariants every chaos scenario must preserve."""
    # Zero silent drops: verdicts + unaudited cover every session.
    verdicted = {(e.tenant_id, e.epoch)
                 for ledger in report.ledgers.values()
                 for e in ledger.events}
    unaudited = {(u.tenant_id, u.epoch) for u in report.unaudited}
    assert verdicted | unaudited >= {
        (f"tenant-{i:02d}", epoch)
        for i in range(len(report.ledgers) or 3)
        for epoch in range(report.epochs)} or report.sessions_total == len(
        verdicted | unaudited)
    assert len(verdicted | unaudited) == report.sessions_total
    assert not (verdicted & unaudited)
    # No double verdicts: job identities are unique among events.
    keys = [e.dedup_key for ledger in report.ledgers.values()
            for e in ledger.events]
    assert len(keys) == len(set(keys))
    # Every unaudited record carries an explicit reason.
    assert all(u.reason for u in report.unaudited)


PLANS = {
    "none": None,
    "crash-early": NodeChaosPlan.parse("crash:0@60"),
    "crash-late": NodeChaosPlan.parse("crash:2@300"),
    "stall": NodeChaosPlan.parse("stall:1@80+600"),
    "slow": NodeChaosPlan.parse("slow:0@20x8"),
    "compose": NodeChaosPlan.parse("stall:2@90+500,crash:1@180,slow:0@10x4"),
}


class TestChaosMatrix:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_contract_holds(self, name):
        report = _run(PLANS[name])
        _assert_contract(report)

    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_covert_tenant_still_flagged(self, name):
        report = _run(PLANS[name])
        assert COVERT in report.flagged_tenants

    def test_crash_produces_rebalance_event(self):
        report = _run(PLANS["crash-early"])
        assert len(report.rebalances) == 1
        event = report.rebalances[0]
        assert event["node"] == "node-00" and event["reason"] == "crash"

    def test_stall_triggers_work_stealing_not_eviction(self):
        report = _run(NodeChaosPlan.parse("stall:0@20+2000"))
        assert not report.rebalances
        assert report.node_stats["node-00"]["status"] != "dead"


class TestCrashBetweenSpotAndEscalation:
    """The razor: the owner dies after judging the spot check but before
    the escalation it spawned completes.  The escalation must be
    redelivered and judged by a surviving node — exactly once."""

    def test_escalation_survives_owner_death(self):
        baseline = _run(None)
        escalated = [e for e in baseline.ledgers[COVERT].events
                     if e.kind == "escalated"]
        assert escalated, "baseline must escalate the covert tenant"
        target = escalated[0]
        assert target.node, "fleet events carry their judging node"
        owner = int(target.node.split("-")[1])
        # Crash mid-flight: after the escalation started (spot verdict
        # already booked) but before its completion event fires.
        crash_at = (target.start_ms + target.completion_ms) / 2.0
        assert target.start_ms < crash_at < target.completion_ms

        report = _run(NodeChaosPlan(
            faults=(NodeCrash(node=owner, at_ms=crash_at),),
            name="razor"))
        _assert_contract(report)
        assert report.killed_in_flight >= 1
        assert report.requeued >= 1
        survivors = [e for e in report.ledgers[COVERT].events
                     if e.kind == "escalated"
                     and e.epoch == target.epoch
                     and e.cause == target.cause]
        assert len(survivors) == 1
        assert survivors[0].node != target.node
        assert COVERT in report.flagged_tenants


class TestTotalAndQuorumLoss:
    def test_crash_all_yields_unaudited_not_exceptions(self):
        report = _run(NodeChaosPlan.parse(
            "crash:0@50,crash:1@60,crash:2@70"))
        _assert_contract(report)
        assert report.unaudited
        assert {u.reason for u in report.unaudited} <= {
            "no-capacity", "audit-shed", "no-intact-segments"}
        assert report.exit_code in (1, 3)

    def test_single_node_fleet_crash(self):
        report = _run(NodeChaosPlan.parse("crash:0@50"), nodes=1)
        _assert_contract(report)
        assert report.degraded_mode
        assert report.unaudited

    def test_out_of_range_faults_are_skipped(self):
        # One plan drives 1..N sweeps: crashing node 5 of a 2-node
        # fleet is a no-op, not an error.
        report = _run(NodeChaosPlan.parse("crash:5@50"), nodes=2)
        _assert_contract(report)
        assert not report.rebalances

    def test_quorum_loss_enters_degraded_mode(self):
        report = _run(NodeChaosPlan.parse("crash:0@100,crash:1@130"))
        _assert_contract(report)
        assert report.degraded_mode
        assert report.exit_code in (1, 3)

    def test_degraded_clean_fleet_exits_three(self):
        # No covert tenant (tenants=1): nothing to flag, so capacity
        # loss surfaces as the distinct degraded exit code.
        report = _run(NodeChaosPlan.parse("crash:0@50,crash:1@60"),
                      nodes=2, tenants=1)
        assert not report.flagged_tenants
        assert report.exit_code == 3

    def test_clean_run_exits_zero(self):
        report = _run(None, tenants=1)
        assert report.exit_code == 0
        assert not report.unaudited and not report.degraded_mode

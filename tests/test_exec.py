"""Tests for the guest executive: scheduler, mailbox IPC, determinism.

The non-negotiable invariant (DESIGN.md §5): a multi-process run is
**bit-identical** in cycles, ledger sums, transmissions, and audit
verdicts across replays, reruns, JIT/no-JIT, batched/unbatched charging,
and profiler on/off — the schedule is a pure function of the execution,
recorded as tamper-evident ``SCHED`` log entries.
"""

import dataclasses

import pytest

from repro.channels import bit_accuracy
from repro.core.log import EventKind, EventLog
from repro.determinism import SplitMix64
from repro.errors import ExecError, ReplayDivergenceError
from repro.exec import (EXEC_SCENARIOS, Executive, KERNEL,
                        THREADS_PER_PROCESS, exec_fleet_task, exec_play,
                        exec_replay, exec_round_trip, exec_scenario)
from repro.machine.machine import Machine
from repro.machine.config import MachineConfig
from repro.obs import Observability


def signature(result):
    """Every observable that must be bit-identical across variants."""
    return (result.total_cycles, result.instructions, tuple(result.tx),
            tuple(result.console),
            tuple(sorted(result.ledger.items())) if result.ledger else None)


def decoded_bits(result):
    """The receiver's decoded bit per relayed packet (tx payload[1])."""
    return [payload[1] for _, payload in result.tx]


class TestCleanPipeline:
    def test_round_trip_is_consistent(self):
        tdr = exec_round_trip(exec_scenario("pipeline"))
        assert tdr.audit.payloads_match
        assert tdr.audit.is_consistent()
        # Multi-process scheduling and IPC alone add no timing deviation
        # beyond the residual seed noise of a clean replay.
        assert tdr.play.console == tdr.replay.console
        assert tdr.play.instructions == tdr.replay.instructions
        assert tdr.play.total_cycles == pytest.approx(
            tdr.replay.total_cycles, rel=1e-3)
        # Same seed -> the replay timing is bit-exact.
        exact = exec_round_trip(exec_scenario("pipeline"), play_seed=0,
                                replay_seed=0)
        assert exact.play.total_cycles == exact.replay.total_cycles

    def test_guest_spawn_and_pipeline_output(self):
        result = exec_play(exec_scenario("pipeline"))
        # The producer prints the child pid from proc_spawn: processes
        # are (producer=0, ticker=1), so the spawned filter gets pid 2.
        assert 2 in result.console
        # The filter prints how many items it checksummed (24 + no
        # sentinel) and emits one packet per item.
        assert 24 in result.console
        assert len(result.tx) == 24
        assert result.stats["exec_processes"] == 3
        assert result.stats["exec_exited"] == 3
        assert result.stats["exec_messages"] == 25  # 24 items + sentinel

    def test_packets_preserve_fifo_order(self):
        result = exec_play(exec_scenario("pipeline"))
        # payload[0] is the item index: mailbox FIFO means the filter
        # consumes and relays in production order.
        assert [payload[0] for _, payload in result.tx] == list(range(24))


class TestCovertScenarios:
    @pytest.mark.parametrize("name", ["sched", "mbox"])
    def test_covert_run_is_flagged(self, name):
        scenario = exec_scenario(name)
        tdr = exec_round_trip(scenario, covert=True)
        assert tdr.audit.payloads_match
        assert not tdr.audit.is_consistent()
        assert tdr.audit.deviation_score() > 0.05

    @pytest.mark.parametrize("name", ["sched", "mbox"])
    def test_clean_run_is_consistent(self, name):
        tdr = exec_round_trip(exec_scenario(name))
        assert tdr.audit.is_consistent()

    @pytest.mark.parametrize("name", ["sched", "mbox"])
    def test_receiver_decodes_payload(self, name):
        scenario = exec_scenario(name)
        bits = scenario.payload_bits()
        tdr = exec_round_trip(scenario, covert=True, bits=bits)
        play_decoded = decoded_bits(tdr.play)
        # The receiver's first gap may predate the sender's first hold
        # (schedule-dependent); beyond alignment effects the decode is
        # essentially exact.
        assert bit_accuracy(bits, play_decoded) > 0.9
        # Replay returns the *logged* nano_time values, so the decoded
        # bits are identical even though replay timing is clean — the
        # §5.3 "receiver can't tell it's being replayed" property.
        assert decoded_bits(tdr.replay) == play_decoded

    def test_clean_scenario_has_no_covert_schedule(self):
        with pytest.raises(ExecError):
            exec_scenario("pipeline").covert_schedule([1, 0])


class TestDeterminism:
    @pytest.mark.parametrize("name", list(EXEC_SCENARIOS))
    def test_rerun_is_bit_identical(self, name):
        scenario = exec_scenario(name)
        covert = scenario.rounds > 0
        a = exec_round_trip(scenario, covert=covert)
        b = exec_round_trip(scenario, covert=covert)
        assert signature(a.play) == signature(b.play)
        assert signature(a.replay) == signature(b.replay)
        assert a.play.log.to_bytes() == b.play.log.to_bytes()
        assert a.audit.deviation_score() == b.audit.deviation_score()

    def test_no_jit_matches_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        baseline = exec_round_trip(exec_scenario("sched"), covert=True)
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        nojit = exec_round_trip(exec_scenario("sched"), covert=True)
        assert signature(baseline.play) == signature(nojit.play)
        assert signature(baseline.replay) == signature(nojit.replay)
        assert baseline.play.log.to_bytes() == nojit.play.log.to_bytes()

    def test_unbatched_charging_matches(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        baseline = exec_round_trip(exec_scenario("mbox"), covert=True)
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        unbatched = exec_round_trip(exec_scenario("mbox"), covert=True)
        assert signature(baseline.play) == signature(unbatched.play)
        assert signature(baseline.replay) == signature(unbatched.replay)

    def test_observers_and_profiler_do_not_perturb(self):
        bare = exec_play(exec_scenario("pipeline"))
        observed = exec_play(exec_scenario("pipeline"),
                             obs=Observability(profile=True))
        assert signature(bare)[:4] == signature(observed)[:4]
        assert observed.profile is not None
        assert sum(observed.profile["sources"].values()) \
            == observed.total_cycles

    def test_quantum_changes_schedule_not_correctness(self):
        """Mailbox delivery order is a pure function of the (logged)
        schedule: hostile quanta reshuffle the interleaving, yet every
        play/replay pair stays bit-consistent and FIFO order holds."""
        scenario = exec_scenario("pipeline")
        for quantum in (997, 5003, 50_021):
            tdr = exec_round_trip(scenario, quantum=quantum)
            assert tdr.audit.payloads_match, quantum
            assert tdr.audit.is_consistent(), quantum
            assert [p[0] for _, p in tdr.play.tx] == list(range(24))

    def test_schedule_property_under_random_quanta(self):
        """Property: for any quantum, replaying the log reproduces the
        exact per-switch schedule (count and cycle totals)."""
        rng = SplitMix64(2014).fork("exec-quanta")
        scenario = exec_scenario("mbox")
        for _ in range(4):
            quantum = rng.randint(500, 20_000)
            tdr = exec_round_trip(scenario, covert=True, quantum=quantum)
            play_sched = [e for e in tdr.play.log.entries
                          if e.kind == EventKind.SCHED]
            assert play_sched, quantum
            # Replay recomputes every decision and verifies it against
            # the log: same switch count, same per-switch instruction
            # points (else observe_sched would have diverged), and hence
            # the same message order and decoded payload.
            assert tdr.play.stats["exec_switches"] \
                == tdr.replay.stats["exec_switches"]
            assert tdr.play.instructions == tdr.replay.instructions
            assert decoded_bits(tdr.play) == decoded_bits(tdr.replay)


class TestPreemptionRazor:
    """Poll-budget exactness under hostile preemption points.

    Tiny and prime quanta force the executive to preempt mid-covert-
    transmission — inside the sender's busy loop, between the covert
    hold and its yield, and inside compiled trace regions.  The global
    instruction counter and the batched charges must stay exact at every
    such boundary: the JIT'd and pure-interpreter runs (which tier up
    and poll differently) must agree on every observable, bit for bit.
    """

    @pytest.mark.parametrize("quantum", [61, 257, 1009])
    def test_jit_and_interpreter_agree_under_hostile_quanta(
            self, quantum, monkeypatch):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        scenario = exec_scenario("sched")
        jit = exec_round_trip(scenario, covert=True, quantum=quantum)
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        nojit = exec_round_trip(scenario, covert=True, quantum=quantum)
        assert signature(jit.play) == signature(nojit.play)
        assert signature(jit.replay) == signature(nojit.replay)
        assert jit.play.log.to_bytes() == nojit.play.log.to_bytes()
        assert jit.audit.deviation_score() \
            == nojit.audit.deviation_score()
        # The channel survives arbitrary preemption: decode still works.
        assert decoded_bits(jit.play) == decoded_bits(nojit.play)


class TestScheduleTamperEvidence:
    def test_tampered_sched_entry_diverges(self):
        scenario = exec_scenario("pipeline")
        play_result = exec_play(scenario)
        sched_idx = [i for i, e in enumerate(play_result.log.entries)
                     if e.kind == EventKind.SCHED]
        assert len(sched_idx) >= 3
        tampered = EventLog()
        for i, entry in enumerate(play_result.log.entries):
            if i == sched_idx[1]:
                entry = dataclasses.replace(entry, value=entry.value ^ 1)
            tampered.entries.append(entry)
        with pytest.raises(ReplayDivergenceError):
            exec_replay(scenario, tampered)

    def test_sched_entries_appear_in_size_breakdown(self):
        play_result = exec_play(exec_scenario("pipeline"))
        assert play_result.log.size_breakdown()["sched"] > 0


class TestExecutiveValidation:
    def make_machine(self, **kwargs):
        return Machine(MachineConfig(), seed=0, mode="play", **kwargs)

    def test_deadlock_detected(self):
        from repro.apps import compile_app

        source = """
        void other_main() {
            int[] buf = new int[4];
            int n = msg_recv(0, buf);
            print_int(n);
        }
        void main() {
            int[] buf = new int[4];
            int n = msg_recv(1, buf);
            print_int(n);
        }
        """
        program = compile_app(source)
        executive = Executive(self.make_machine(), num_mailboxes=2)
        with pytest.raises(ExecError, match="deadlock"):
            executive.run(program, [("a", "main"), ("b", "other_main")])

    def test_thread_partition_overflow(self):
        from repro.apps import compile_app

        source = f"""
        void worker(int n) {{
            busy_cycles(1000);
        }}
        void idle_main() {{
            exec_yield();
        }}
        void main() {{
            for (int i = 0; i < {THREADS_PER_PROCESS}; i = i + 1) {{
                spawn(worker, i);
            }}
            exec_yield();
        }}
        """
        program = compile_app(source)
        executive = Executive(self.make_machine())
        with pytest.raises(ExecError, match="thread partition"):
            executive.run(program, [("hog", "main"), ("idle", "idle_main")])

    def test_single_shot_and_first_entry_checks(self):
        program = exec_scenario("pipeline").program()
        machine = self.make_machine()
        with pytest.raises(ExecError, match="entry"):
            Executive(machine).run(program, [("x", "ticker_main")])

    def test_duplicate_names_rejected(self):
        program = exec_scenario("pipeline").program()
        with pytest.raises(ExecError, match="unique"):
            Executive(self.make_machine()).run(
                program, [("x", "main"), ("x", "ticker_main")])

    def test_bad_mailbox_config_rejected(self):
        with pytest.raises(ExecError):
            Executive(self.make_machine(), num_mailboxes=0)
        with pytest.raises(ExecError):
            Executive(self.make_machine(), quantum=0)

    def test_unknown_scenario(self):
        with pytest.raises(ExecError, match="unknown exec scenario"):
            exec_scenario("nope")


class TestBlockingSemantics:
    def test_send_blocks_on_full_mailbox(self):
        """Producer outruns a slow consumer through a capacity-1 box:
        correctness requires real blocking, not drops."""
        scenario = dataclasses.replace(exec_scenario("pipeline"),
                                       mailbox_capacity=1)
        tdr = exec_round_trip(scenario)
        assert tdr.audit.payloads_match
        assert tdr.audit.is_consistent()
        assert [p[0] for _, p in tdr.play.tx] == list(range(24))

    def test_per_process_stats(self):
        result = exec_play(exec_scenario("mbox"))
        stats = result.stats
        assert stats["exec_messages"] == 48
        assert stats["exec_switches"] >= 48


class TestFleetDeterminism:
    def test_jobs_1_vs_4_summaries_bit_identical(self):
        """The same task set through the process pool reproduces the
        serial summaries — cycles, tx, deviations, log digests."""
        from repro.analysis.parallel import run_fleet

        tasks = [(name, covert, seed, seed + 100, None)
                 for name in EXEC_SCENARIOS
                 for covert in ((False, True)
                                if exec_scenario(name).rounds
                                else (False,))
                 for seed in (0, 3)]
        serial = run_fleet(tasks, jobs=1, worker=exec_fleet_task)
        fanned = run_fleet(tasks, jobs=4, worker=exec_fleet_task)
        assert serial == fanned
        assert all(s["payloads_match"] for s in serial)

"""Property-based tests: random MiniJ expressions vs a reference
evaluator, and whole-pipeline determinism."""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_minij
from repro.vm import Interpreter, NullPlatform
from repro.vm.isa import wrap_i64

NULL_SIGS = {"print_int": (("int",), "void"),
             "print_float": (("float",), "void")}


# -- random integer expression trees -------------------------------------------
#
# Each generated node is (minij_source_fragment, python_value) where the
# value is computed with Java int64 semantics (wrapping, truncating
# division).  Divisors are forced odd via `| 1` so division by zero is
# unreachable by construction.

def _leaf():
    return st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1).map(
        lambda v: (str(v) if v >= 0 else f"(0 - {-v})", v))


def _java_div(a, b):
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap_i64(q)


def _java_rem(a, b):
    return wrap_i64(a - _java_div(a, b) * b)


def _combine(children):
    left, right = children

    def binary(op, func):
        return ((f"({left[0]} {op} {right[0]})",
                 wrap_i64(func(left[1], right[1]))))

    odd_right = (f"({right[0]} | 1)", wrap_i64(right[1] | 1))
    shift = wrap_i64(right[1]) & 63
    # Keep shifts small so values stay interesting rather than saturating.
    small_shift = shift % 8
    return st.sampled_from([
        binary("+", lambda a, b: a + b),
        binary("-", lambda a, b: a - b),
        binary("*", lambda a, b: a * b),
        binary("&", lambda a, b: a & b),
        binary("|", lambda a, b: a | b),
        binary("^", lambda a, b: a ^ b),
        (f"({left[0]} / {odd_right[0]})",
         _java_div(left[1], odd_right[1])),
        (f"({left[0]} % {odd_right[0]})",
         _java_rem(left[1], odd_right[1])),
        (f"({left[0]} << {small_shift})",
         wrap_i64(left[1] << small_shift)),
        (f"({left[0]} >> {small_shift})", wrap_i64(left[1] >> small_shift)),
        (f"(-{left[0]})".replace("(-", "(0 - "), wrap_i64(-left[1])),
        (f"(~{left[0]})", wrap_i64(~left[1])),
    ])


int_exprs = st.recursive(
    _leaf(),
    lambda children: st.tuples(children, children).flatmap(_combine),
    max_leaves=12)


def run_minij_int(expression_src: str) -> int:
    source = f"void main() {{ print_int({expression_src}); }}"
    platform = NullPlatform()
    program = compile_minij(source, natives=platform,
                            native_signatures=NULL_SIGS)
    vm = Interpreter(program, platform)
    vm.run(2_000_000)
    assert len(platform.printed) == 1
    return platform.printed[0]


class TestExpressionSemantics:
    @given(int_exprs)
    @settings(max_examples=120, deadline=None)
    def test_random_int_expression_matches_reference(self, expr):
        source, expected = expr
        assert run_minij_int(source) == expected

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    @settings(max_examples=60, deadline=None)
    def test_int64_literals_roundtrip(self, value):
        source = str(value) if value >= 0 else f"(0 - {-value})"
        # -2^63 negation wraps back to itself; the reference agrees.
        assert run_minij_int(source) == wrap_i64(value if value >= 0
                                                 else value)

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_comparison_operators_match_python(self, a, b):
        sa = str(a) if a >= 0 else f"(0 - {-a})"
        sb = str(b) if b >= 0 else f"(0 - {-b})"
        for op in ("<", "<=", ">", ">=", "==", "!="):
            expected = int(eval(f"a {op} b"))
            got = run_minij_int(f"({sa} {op} {sb})")
            assert got == expected, (a, op, b)


class TestPipelineDeterminism:
    @given(st.integers(min_value=0, max_value=2 ** 32),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_compiled_loop_is_deterministic(self, seed_value, iterations):
        """Any (seed, loop length) pair compiles and runs to identical
        instruction counts and output on repeated execution."""
        source = f"""
        void main() {{
            int seed = {seed_value};
            int acc = 0;
            for (int i = 0; i < {iterations}; i = i + 1) {{
                seed = (seed * 1103515245 + 12345) & 2147483647;
                acc = (acc + seed) & 65535;
            }}
            print_int(acc);
        }}
        """

        def run():
            platform = NullPlatform()
            program = compile_minij(source, natives=platform,
                                    native_signatures=NULL_SIGS)
            vm = Interpreter(program, platform)
            vm.run()
            return platform.printed, vm.instruction_count, platform.cycles

        assert run() == run()

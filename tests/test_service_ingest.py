"""Admission control: CRC salvage, chain checks, gap quarantine."""

import dataclasses

from repro.analysis.parallel import execute_spec
from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionStatus, IngestGate, ProverSession, TenantSpec


def _shipments(tamper=False, tenant_id="t0"):
    spec = TenantSpec(tenant_id=tenant_id, requests=4, seed=3, segments=3,
                      tamper=tamper)
    session = ProverSession(spec, service_seed=11)
    result = execute_spec(session.play_spec(0))
    return spec, session.ship(0, result, epoch_start_ms=0.0).shipments


def _damage(shipment):
    """Truncate the chunk mid-entry: framing breaks, prefix survives."""
    return dataclasses.replace(
        shipment, chunk_bytes=shipment.chunk_bytes[:-10])


def _gate(spec, registry=None):
    if registry is None:
        registry = MetricsRegistry()
    return IngestGate({spec.tenant_id: spec}, registry=registry)


def test_clean_epoch_admits_every_segment():
    spec, shipments = _shipments()
    gate = _gate(spec)
    records = [gate.admit(s) for s in shipments]
    assert all(r.status is AdmissionStatus.ADMITTED for r in records)
    assert all(r.chain_ok is True for r in records)
    lengths = [r.accumulated_entries for r in records]
    assert lengths == sorted(lengths) and lengths[0] > 0
    acc = gate.accumulator(spec.tenant_id, 0)
    assert acc.segments_admitted == 3 and not acc.gap and not acc.tampered


def test_tampered_segment_is_proof_not_suspicion():
    spec, shipments = _shipments(tamper=True)
    gate = _gate(spec)
    records = [gate.admit(s) for s in shipments]
    statuses = [r.status for r in records]
    assert AdmissionStatus.TAMPER in statuses
    first_bad = statuses.index(AdmissionStatus.TAMPER)
    assert records[first_bad].chain_ok is False
    # Everything after proof of tampering is quarantined, not chained.
    assert all(s is AdmissionStatus.QUARANTINED
               for s in statuses[first_bad + 1:])
    assert gate.accumulator(spec.tenant_id, 0).tampered


def test_damaged_chunk_degrades_and_opens_a_gap():
    spec, shipments = _shipments()
    gate = _gate(spec)
    first = gate.admit(shipments[0])
    assert first.status is AdmissionStatus.ADMITTED
    degraded = gate.admit(_damage(shipments[1]))
    assert degraded.status is AdmissionStatus.DEGRADED
    # The intact prefix of the damaged chunk is still salvaged.
    assert degraded.accumulated_entries >= first.accumulated_entries
    acc = gate.accumulator(spec.tenant_id, 0)
    assert acc.gap and not acc.tampered


def test_intact_segment_after_gap_is_quarantined():
    spec, shipments = _shipments()
    gate = _gate(spec)
    gate.admit(shipments[0])
    gate.admit(_damage(shipments[1]))
    before = len(gate.accumulator(spec.tenant_id, 0).log.entries)
    late = gate.admit(shipments[2])
    assert late.status is AdmissionStatus.QUARANTINED
    assert late.chain_ok is None
    # Quarantined entries never reach the verifier-side log.
    assert len(gate.accumulator(spec.tenant_id, 0).log.entries) == before


def test_epochs_accumulate_independently():
    spec = TenantSpec(tenant_id="t0", requests=4, seed=3, segments=2)
    session = ProverSession(spec, service_seed=11)
    gate = _gate(spec)
    epoch0 = session.ship(0, execute_spec(session.play_spec(0)), 0.0)
    epoch1 = session.ship(1, execute_spec(session.play_spec(1)), 500.0)
    gate.admit(_damage(epoch0.shipments[0]))          # epoch 0 gap
    records = [gate.admit(s) for s in epoch1.shipments]
    assert all(r.status is AdmissionStatus.ADMITTED for r in records)
    assert gate.accumulator("t0", 0).gap
    assert not gate.accumulator("t0", 1).gap


def test_admission_metrics_are_emitted():
    spec, shipments = _shipments()
    registry = MetricsRegistry()
    gate = _gate(spec, registry=registry)
    for shipment in shipments[:2]:
        gate.admit(shipment)
    gate.admit(_damage(shipments[2]))
    snap = registry.snapshot()
    assert snap["service_segments_ingested_total"]["value"] == 3
    assert snap["service_segments_admitted_total"]["value"] == 2
    assert snap["service_segments_degraded_total"]["value"] == 1
    assert snap["service_ingest_bytes_total"]["value"] > 0

"""Determinism guards: observability must never perturb the observed.

Every collector in ``repro.obs`` is a pure observer — enabling the
ledger, the tracer, opcode sampling, and metrics must leave the
simulation's cycle counts, transmissions, and audit verdicts
*bit-identical* to an uninstrumented run.  These tests pin that
invariant, plus the exactness of the clock's rational cycle→ns
conversion.
"""

from fractions import Fraction

import pytest

from repro.apps import build_nfs_program, build_nfs_workload, compile_app, \
    zero_array_source
from repro.core.tdr import play, round_trip
from repro.determinism import SplitMix64
from repro.hw.clock import VirtualClock
from repro.machine.noise import scenario_config
from repro.obs import CycleLedger, Observability


def _nfs_round_trip(obs):
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(11), num_requests=6)
    return round_trip(program, None, workload=workload, obs=obs)


class TestObservabilityIsInert:
    def test_round_trip_bit_identical_with_obs(self):
        bare = _nfs_round_trip(obs=None)
        observed = _nfs_round_trip(obs=Observability())
        assert observed.play.total_cycles == bare.play.total_cycles
        assert observed.replay.total_cycles == bare.replay.total_cycles
        assert observed.play.tx == bare.play.tx
        assert observed.replay.tx == bare.replay.tx
        assert observed.audit.payloads_match == bare.audit.payloads_match
        assert observed.audit.max_rel_ipd_diff \
            == bare.audit.max_rel_ipd_diff
        assert observed.audit.is_consistent() == bare.audit.is_consistent()

    def test_noisy_play_bit_identical_with_obs(self):
        # The attributed mem_access path splits one advance into
        # cache/bus parts; the parts must sum to the unattributed charge.
        program = compile_app(zero_array_source(elements=8192))
        for scenario in ("user-noisy", "dirty", "sanity"):
            config = scenario_config(scenario)
            bare = play(program, config, seed=3)
            observed = play(program, config, seed=3, obs=Observability())
            assert observed.total_cycles == bare.total_cycles, scenario
            assert observed.tx == bare.tx, scenario

    def test_each_collector_alone_is_inert(self):
        program = compile_app(zero_array_source(elements=2048))
        baseline = play(program, None, seed=1).total_cycles
        for kwargs in ({"ledger": False}, {"sample_opcodes": False},
                       {"trace": False}):
            obs = Observability(**kwargs)
            assert play(program, None, seed=1,
                        obs=obs).total_cycles == baseline, kwargs

    def test_ledger_attach_detach_mid_run_keeps_clock(self):
        clock = VirtualClock(frequency_hz=1000)
        clock.advance(5, "cache")
        ledger = CycleLedger()
        clock.attach_ledger(ledger)
        clock.advance(7, "bus")
        clock.detach_ledger()
        clock.advance(11)
        assert clock.cycles == 23
        assert ledger.totals() == {"bus": 7}


class TestClockExactness:
    def test_three_hz_is_exact(self):
        # The motivating case: 1/3 is not a binary float, so a
        # precomputed ns-per-cycle factor drifts.  Rational arithmetic
        # does not: 3 cycles at 3 Hz is exactly one second.
        clock = VirtualClock(frequency_hz=3)
        clock.advance(3)
        assert clock.now_ns() == 1_000_000_000.0
        assert clock.now_ns_exact() == Fraction(1_000_000_000)
        clock.advance(3 * 10**12 - 3)
        assert clock.now_ns_exact() == Fraction(10**21)
        assert clock.now_ns() == 1e21

    def test_no_drift_over_long_runs(self):
        clock = VirtualClock(frequency_hz=3.4e9)
        clock.advance(34 * 10**14)  # 10^6 seconds of virtual time
        assert clock.now_ns_exact() == Fraction(10**15)
        assert clock.now_ms() == 1e9

    def test_cycles_are_strictly_int(self):
        clock = VirtualClock()
        clock.advance(10)
        assert type(clock.cycles) is int
        with pytest.raises(TypeError):
            clock.advance(1.5)  # float cycles would reintroduce drift
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_cycles_for_ns_roundtrip(self):
        clock = VirtualClock(frequency_hz=3.4e9)
        for cycles in (1, 17, 3_400_000_000, 123_456_789_123):
            ns = Fraction(cycles) * clock._ns_num / clock._ns_den
            assert clock.cycles_for_ns(float(ns)) \
                == round(Fraction(float(ns)) * clock._ns_den
                         / clock._ns_num)
        assert clock.cycles_for_ns(0) == 0
        assert clock.cycles_for_ns(-5) == 0
        assert clock.cycles_for_ms(1) == 3_400_000

    def test_reset_clears_clock_and_ledger(self):
        clock = VirtualClock()
        ledger = CycleLedger()
        clock.attach_ledger(ledger)
        clock.advance(9, "gc")
        clock.reset()
        assert clock.cycles == 0
        assert ledger.total == 0

"""Differential tests: trace-compiling tier-up vs the pure interpreter.

The tier-up compiles hot bytecode regions into fused Python closures
that charge a pre-summed block cost through the batched platform.  The
charging replay is exact and block entry/exit protocols mirror the
interpreter byte-for-byte, so everything observable — total cycles,
per-source ledger sums, transmission times, serialized log bytes, audit
verdicts — must be bit-identical to the pure interpreter, which stays
available behind ``REPRO_NO_JIT=1`` as the differential reference
(mirroring ``REPRO_NO_BATCH`` for batched charging).
"""

from __future__ import annotations

import pytest

from repro.analysis.parallel import MachineSpec, run_fleet
from repro.apps import build_nfs_program, build_nfs_workload, compile_app
from repro.core.resilience import audit_resilient
from repro.core.tdr import play, round_trip
from repro.determinism import SplitMix64
from repro.faults import standard_fault_kinds
from repro.machine import MachineConfig
from repro.machine.machine import Machine
from repro.obs import Observability
from repro.vm.tracejit import _MIN_BLOCK, compile_region, jit_enabled

REQUESTS = 5
CHAOS_SEED = 20141006


@pytest.fixture(autouse=True)
def _jit_on_by_default(monkeypatch):
    """These are differential tests: each one flips the switch itself,
    so an ambient ``REPRO_NO_JIT`` (e.g. CI's no-JIT tier-1 leg) must
    not pre-disable the tier-up side of the comparison."""
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)


@pytest.fixture(scope="module")
def nfs_program():
    return build_nfs_program()


def _round_trip(nfs_program, obs=None, schedule=None):
    workload = build_nfs_workload(SplitMix64(7042), num_requests=REQUESTS)
    return round_trip(nfs_program, MachineConfig(), workload=workload,
                      play_seed=3, replay_seed=9,
                      covert_schedule=schedule, obs=obs)


def _snapshot(result):
    return (result.total_cycles, result.instructions, result.tx,
            result.tx_times_ms(), result.ledger)


class TestBitIdentity:
    """JIT on vs ``REPRO_NO_JIT=1``: every observable must match."""

    def test_round_trip_with_ledger(self, nfs_program, monkeypatch):
        jit = _round_trip(nfs_program, obs=Observability())
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        interp = _round_trip(nfs_program, obs=Observability())

        assert _snapshot(jit.play) == _snapshot(interp.play)
        assert _snapshot(jit.replay) == _snapshot(interp.replay)
        assert jit.play.ledger == interp.play.ledger
        assert jit.play.ledger is not None
        # The reference run really was the pure interpreter.
        assert jit.play.jit is not None and jit.play.jit["enabled"]
        assert interp.play.jit is None

    def test_round_trip_no_obs(self, nfs_program, monkeypatch):
        jit = _round_trip(nfs_program)
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        interp = _round_trip(nfs_program)
        assert _snapshot(jit.play) == _snapshot(interp.play)
        assert _snapshot(jit.replay) == _snapshot(interp.replay)

    def test_covert_schedule_and_log_bytes(self, nfs_program, monkeypatch):
        schedule = [1_500, 4_000, 2_500, 6_000]
        jit = _round_trip(nfs_program, schedule=list(schedule))
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        interp = _round_trip(nfs_program, schedule=list(schedule))
        assert _snapshot(jit.play) == _snapshot(interp.play)
        # The serialized event log — the auditor's wire artifact — is
        # byte-identical, so attestation chains hash identically too.
        assert jit.play.log.to_bytes() == interp.play.log.to_bytes()

    def test_audit_verdicts_match(self, nfs_program, monkeypatch):
        def verdicts():
            trip = _round_trip(nfs_program)
            report = trip.audit
            outcome = audit_resilient(nfs_program, trip.play,
                                      trip.play.log.to_bytes(),
                                      config=MachineConfig(), replay_seed=9)
            return (report.payloads_match, report.deviation_score(),
                    report.total_time_error, report.is_consistent(),
                    outcome.classification, outcome.consistent,
                    outcome.coverage)

        jit = verdicts()
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert verdicts() == jit

    @pytest.mark.parametrize("severity", (1, 2))
    def test_chaos_verdicts_match(self, nfs_program, monkeypatch, severity):
        """Damaged-log audits classify identically with and without the
        tier-up: salvage replays go through the same VM."""
        def sweep():
            result = play(nfs_program, MachineConfig(),
                          workload=build_nfs_workload(SplitMix64(7042),
                                                      num_requests=REQUESTS),
                          seed=3)
            data = result.log.to_bytes()
            outcomes = []
            for plan in standard_fault_kinds(severity):
                rng = SplitMix64(CHAOS_SEED).fork(f"{plan.name}:{severity}")
                outcome = audit_resilient(nfs_program, result,
                                          plan.apply(data, rng),
                                          config=MachineConfig())
                outcomes.append((plan.name, outcome.classification,
                                 outcome.consistent, outcome.coverage,
                                 outcome.degradation))
            return outcomes

        jit = sweep()
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert sweep() == jit


class TestFleetDeterminism:
    """The tier-up is invisible to the parallel fleet, and the
    ``REPRO_*`` switches reach worker processes."""

    @staticmethod
    def _specs():
        return [MachineSpec(program="kernel:sor", config=MachineConfig(),
                            seed=seed) for seed in range(4)]

    @staticmethod
    def _facts(results):
        return [(r.total_cycles, r.instructions, r.tx) for r in results]

    def test_parallel_matches_serial(self):
        serial = self._facts(run_fleet(self._specs(), jobs=1))
        parallel = self._facts(run_fleet(self._specs(), jobs=4))
        assert parallel == serial

    def test_no_jit_propagates_to_workers(self, monkeypatch):
        jit_on = self._facts(run_fleet(self._specs(), jobs=4))
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        jit_off = self._facts(run_fleet(self._specs(), jobs=4))
        assert jit_off == jit_on


RAZOR_SRC = """
// Hot loop that tiers up, then faults mid-block: data[idx] walks
// 0..63 for the first 5000 iterations and jumps to 70 (out of bounds)
// at iteration 5000, forcing a side exit from a compiled region while
// a covert transmission is in flight.
void main() {
    int[] data = new int[64];
    covert_delay(500);
    int acc = 0;
    int i = 0;
    try {
        while (i < 20000) {
            int gate = i / 5000;
            int idx = gate * 70 + (1 - gate) * (i % 64);
            acc = acc + data[idx];
            i = i + 1;
        }
    } catch (e) {
        print_int(e);
    }
    send_packet(data, 4);
    print_int(acc);
    exit();
}
"""


class TestRazorSideExit:
    """A guest fault inside a compiled block mid-covert-transmission:
    the side exit must charge the exact instruction prefix, land the
    handler on the right pc, and leave every timing fact identical."""

    def test_side_exit_is_taken_and_bit_identical(self, monkeypatch):
        program = compile_app(RAZOR_SRC)
        jit = play(program, MachineConfig(), seed=0)
        assert jit.jit is not None
        assert jit.jit["entries"] > 0
        assert jit.jit["side_exits"] > 0          # the razor: faulted mid-block
        assert jit.console[0] == -2               # EXC_INDEX_OUT_OF_BOUNDS

        monkeypatch.setenv("REPRO_NO_JIT", "1")
        interp = play(program, MachineConfig(), seed=0)
        assert interp.jit is None
        assert jit.console == interp.console
        assert _snapshot(jit) == _snapshot(interp)
        assert jit.log.to_bytes() == interp.log.to_bytes()


class TestUnits:
    def test_escape_hatch(self, monkeypatch):
        assert jit_enabled()
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert not jit_enabled()

    def test_charge_block_matches_per_instruction_charges(self):
        """The batched block charge replays the noise stream exactly:
        same classes through ``charge_block`` and per-``charge`` on
        identically seeded machines leave identical clocks."""
        from repro.hw.cpu import CostClass

        one = Machine(MachineConfig(), seed=5, mode="play")
        two = Machine(MachineConfig(), seed=5, mode="play")
        base = one.platform.instruction_base_costs()
        assert base is not None
        # Long enough to cross several speculation-noise redraw periods.
        classes = tuple(CostClass(i % len(base)) for i in range(1000))
        bases = tuple(base[c] for c in classes)

        for cls in classes:
            one.platform.charge(cls)
        two.platform.charge_block(classes, bases, sum(bases))
        one.platform.flush_charges()
        two.platform.flush_charges()
        assert one.clock.cycles == two.clock.cycles
        assert one.clock.cycles > 0

    def test_compile_region_skips_tiny_regions(self):
        from repro.asm import assemble
        from repro.vm import NullPlatform

        platform = NullPlatform()
        program = assemble("""
        .func main 0 1
            iconst 1
            ret
        """, natives=platform)
        function = program.function("main")
        assert compile_region(function, 0, platform) is None

    def test_artifact_cache_shares_code_across_runs(self):
        """compile_region memoizes the compiled artifact on the
        Function: two runs (two platforms) share one code object but get
        independent counter blocks."""
        from repro.apps import build_kernel_program

        program = build_kernel_program("sor")
        one = Machine(MachineConfig(), seed=0, mode="play").platform
        two = Machine(MachineConfig(), seed=1, mode="play").platform
        for function in program.functions:
            for head in function.region_heads():
                first = compile_region(function, head, one)
                second = compile_region(function, head, two)
                if first is None:
                    assert second is None
                    continue
                assert second.run.__code__ is first.run.__code__
                assert second is not first
                assert first.n == second.n > 0

    def test_region_summary_shape(self):
        from repro.apps import build_kernel_program

        result = play(build_kernel_program("sor"), MachineConfig(), seed=0)
        summary = result.jit
        assert summary["enabled"]
        assert summary["compiled_regions"] > 0
        assert summary["entries"] > 0
        assert summary["jit_instructions"] > 0
        assert summary["jit_cycles"] > 0
        # Per-region stats are sorted busiest-first for reporting.
        regions = summary["regions"]
        assert regions == sorted(
            regions, key=lambda r: (-r["instructions"], r["function"],
                                    r["head_pc"]))
        assert all(r["length"] > _MIN_BLOCK - 1 for r in regions)

    def test_sampler_v2_export_and_hot_sites(self):
        from repro.obs.sampling import OpcodeSampler
        from repro.vm.isa import Op

        sampler = OpcodeSampler(stride=256)
        for _ in range(3):
            sampler.record(int(Op.IADD), 0, 17)
        sampler.record(int(Op.LOAD), 1, 4)
        sampler.record(int(Op.IMUL))          # v1 call shape: no site

        export = sampler.export()
        assert export["version"] == 2
        # v1 fields keep their exact meaning and shape.
        assert export["stride"] == 256
        assert export["samples"] == 5
        assert export["histogram"]["IADD"] == 3
        assert {(s["function"], s["pc"]) for s in export["sites"]} == \
            {(0, 17), (1, 4)}
        assert sampler.hot_sites(1) == [(0, 17, 3)]

    def test_sampler_sites_round_trip_through_fallback_window(self):
        """Regression: a window whose final entries ran through the
        tier-up's short-variant fallback chain must serialize and reload
        exactly.  The hot loop's sampler keeps recording through those
        tail-of-window entries, so its export carries their sites; the
        reload used to be impossible (no loader) and the histogram used
        a different unknown-opcode spelling (``op#N``) than ``sites``
        (``OP_N``), so the two halves of one export could not be parsed
        by one consumer."""
        import json

        from repro.apps import compile_app
        from repro.machine.machine import Machine
        from repro.obs.sampling import OpcodeSampler
        from repro.vm.interpreter import Interpreter

        program = compile_app(RAZOR_SRC)
        machine = Machine(MachineConfig(), seed=0, mode="play")
        vm = Interpreter(program, machine.platform, machine.vm_config())
        vm.run(200_000_000)
        machine.platform.flush_charges()
        assert vm.jit is not None
        # The run really drove the fallback chain: some entries ran a
        # short variant hanging off a superblock.
        fallback_entries = sum(
            block.fallback.entries
            for fn_blocks in vm.jit.blocks if fn_blocks is not None
            for block in fn_blocks
            if block is not None and block.fallback is not None)
        assert fallback_entries > 0

        export = vm.jit.sampler.export()
        assert export["sites"]
        # Serialize -> reload -> re-export: exact, through real JSON.
        reloaded = OpcodeSampler.from_export(
            json.loads(json.dumps(export)))
        assert reloaded.export() == export
        assert reloaded.hot_sites(5) == vm.jit.sampler.hot_sites(5)

    def test_sampler_from_export_parses_fallback_mnemonics(self):
        """``OP_<code>`` names (unknown opcodes) and real mnemonics
        round-trip through one parser; junk raises."""
        import pytest as _pytest

        from repro.errors import ObservabilityError
        from repro.obs.sampling import OpcodeSampler
        from repro.vm.isa import Op

        sampler = OpcodeSampler(stride=64)
        sampler.record(int(Op.IADD), 2, 9)
        sampler.record(250, 2, 10)            # no such opcode
        export = sampler.export()
        assert export["histogram"]["OP_250"] == 1
        assert {s["op"] for s in export["sites"]} == {"IADD", "OP_250"}
        assert OpcodeSampler.from_export(export).export() == export
        with _pytest.raises(ObservabilityError):
            OpcodeSampler.from_export(
                {"stride": 64, "histogram": {"NOT_AN_OP": 1},
                 "sites": []})

    def test_region_stats_merge_fallback_chain(self):
        """Regression: ``region_stats()`` (and so ``summary()``) used to
        iterate only the superblocks, silently dropping every counter
        the short-variant fallbacks accumulated on tail-of-window
        entries.  The per-region rows must equal a raw walk over the
        whole chain."""
        from repro.apps import build_kernel_program
        from repro.machine.machine import Machine
        from repro.vm.interpreter import Interpreter

        program = build_kernel_program("sor")
        machine = Machine(MachineConfig(), seed=0, mode="play")
        vm = Interpreter(program, machine.platform, machine.vm_config())
        vm.run(200_000_000)
        machine.platform.flush_charges()

        raw = {"entries": 0, "side_exits": 0, "instructions": 0,
               "cycles": 0}
        fallback_entries = 0
        for fn_blocks in vm.jit.blocks:
            if fn_blocks is None:
                continue
            for head_block in fn_blocks:
                block = head_block
                while block is not None:
                    raw["entries"] += block.entries
                    raw["side_exits"] += block.side_exits
                    raw["instructions"] += block.instructions
                    raw["cycles"] += block.cycles
                    if block is not head_block:
                        fallback_entries += block.entries
                    block = block.fallback
        assert fallback_entries > 0        # the bug had something to drop
        summary = vm.jit.summary()
        assert summary["entries"] == raw["entries"]
        assert summary["side_exits"] == raw["side_exits"]
        assert summary["jit_instructions"] == raw["instructions"]
        assert summary["jit_cycles"] == raw["cycles"]

#!/usr/bin/env python3
"""Covert-channel detection (the paper's §5/§6.8 scenario, end to end).

An adversary compromises an NFS server and exfiltrates a secret through a
low-rate "needle" timing channel: one bit every few packets, encoded as a
2 ms extra delay.  The packet *contents* are perfectly innocent.

We then point five detectors at the observed traffic:

* four statistical baselines (shape, KS, regularity, CCE) trained on
  legitimate traffic — for a single short trace with a handful of delayed
  packets their scores sit inside the legitimate range;
* the Sanity/TDR detector, which replays the machine's log on a clean
  reference machine and compares per-packet timing.  The needles stick
  out by ~2 ms against a ~0.1 ms noise floor.

Run:  python examples/covert_channel_detection.py
"""

from repro.analysis.experiment import (NfsTrafficModel,
                                       generate_legit_traces,
                                       vm_covert_schedule)
from repro.apps import build_nfs_program, build_nfs_workload
from repro.channels import NeedleChannel, random_bits
from repro.core.audit import compare_traces
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.detectors import all_statistical_detectors
from repro.machine import MachineConfig

REQUESTS = 30
WORKLOAD_SEED = 1234


def main() -> None:
    program = build_nfs_program()
    config = MachineConfig()

    # --- The adversary prepares the channel. -------------------------------
    # It first profiles the compromised host's natural timing...
    calibration = play(program, config,
                       workload=build_nfs_workload(SplitMix64(WORKLOAD_SEED),
                                                   num_requests=REQUESTS),
                       seed=1)
    natural_ipds = calibration.ipds_ms()
    channel = NeedleChannel(period=6, delta_ms=2.0)
    rng = SplitMix64(99)
    channel.fit(natural_ipds * 4, rng)
    secret_bits = random_bits(channel.bits_needed(len(natural_ipds)), rng)
    schedule = vm_covert_schedule(channel, natural_ipds, secret_bits, rng,
                                  config.frequency_hz)
    print(f"secret: {''.join(map(str, secret_bits))} "
          f"({sum(secret_bits)} needles over {REQUESTS} packets)")

    # --- The compromised server runs with the channel enabled. -------------
    observed = play(program, config,
                    workload=build_nfs_workload(SplitMix64(WORKLOAD_SEED),
                                                num_requests=REQUESTS),
                    seed=2, covert_schedule=schedule)
    print(f"observed trace: {len(observed.tx)} packets, contents are "
          f"byte-identical to a clean run")

    # --- Statistical detectors look at the traffic. -------------------------
    model = NfsTrafficModel()
    training = generate_legit_traces(model, 30, 120, SplitMix64(5))
    legit_reference = generate_legit_traces(model, 20, REQUESTS - 1,
                                            SplitMix64(6))
    print("\nstatistical detectors (score vs legitimate range):")
    for detector in all_statistical_detectors():
        detector.fit(training)
        covert_score = detector.score(observed.ipds_ms())
        legit_scores = sorted(detector.score(t) for t in legit_reference)
        high = legit_scores[int(0.95 * (len(legit_scores) - 1))]
        flagged = covert_score > high
        print(f"  {detector.name:<12s} score={covert_score:8.3f}   "
              f"legit p95={high:8.3f}   -> "
              f"{'FLAGGED' if flagged else 'looks legitimate'}")

    # --- The TDR auditor replays the log on a clean machine. ----------------
    reference = replay(program, observed.log, config, seed=777)
    report = compare_traces(observed, reference)
    print("\nSanity (TDR) detector:")
    print(f"  replayed {report.num_packets} packets; payloads match: "
          f"{report.payloads_match}")
    print(f"  worst IPD deviation: {report.deviation_score():.3f} ms "
          f"(noise floor is ~0.1 ms, needle is 2.0 ms)")
    deviated = [i for i, (p, r) in enumerate(report.ipd_pairs)
                if abs(p - r) > 1.0]
    print(f"  deviating packets: {deviated}")
    print(f"  verdict: {'COVERT CHANNEL DETECTED' if not report.is_consistent() else 'consistent'}")

    assert not report.is_consistent()
    # The deviating positions are exactly the needle carriers with bit 1.
    carriers = channel.carrier_positions(len(natural_ipds))
    expected = [c for c, bit in zip(carriers, secret_bits) if bit]
    assert set(deviated) == set(expected), (deviated, expected)
    print("\nThe TDR detector not only flags the channel — the deviating "
          "packets are exactly the bit-1 carriers.")


if __name__ == "__main__":
    main()

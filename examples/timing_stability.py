#!/usr/bin/env python3
"""Where does time noise come from?  (the paper's §2.4 / §6.3, hands on)

Runs the same SciMark kernel repeatedly under progressively more
controlled environments and prints the timing variance of each — the
experiment behind Figure 2 and Figure 6 — then shows the per-source
breakdown by ablating Sanity's mitigations one at a time.

Run:  python examples/timing_stability.py
"""

from repro.analysis.stats import spread_percent
from repro.apps import build_kernel_program
from repro.core.tdr import play
from repro.machine import MachineConfig
from repro.machine.noise import scenario_config

RUNS = 6


def spread_for(program, config) -> float:
    times = [float(play(program, config, seed=seed).total_cycles)
             for seed in range(RUNS)]
    return spread_percent(times)


def main() -> None:
    program = build_kernel_program("sor")

    print(f"SOR kernel, {RUNS} runs per environment "
          f"(variance = (max - min) / min):\n")
    print("environment ladder (Fig 2 / Fig 6):")
    for scenario in ("dirty", "user-quiet", "kernel", "clean", "sanity"):
        spread = spread_for(program, scenario_config(scenario))
        bar = "#" * min(60, max(1, int(spread)))
        print(f"  {scenario:<12s} {spread:9.3f}%  {bar}")

    print("\nsingle-source ablations from the Sanity baseline (Table 1):")
    ablations = [
        ("IRQs on the timed core", dict(irqs_to_supporting_core=False)),
        ("preemption", dict(preemption_enabled=True)),
        ("frequency scaling", dict(freq_scaling=True)),
        ("TurboBoost", dict(turbo=True)),
        ("unflushed caches", dict(flush_caches_at_start=False,
                                  random_initial_cache=True)),
        # Storage ablations need an I/O-bound guest; see the Table 1
        # bench (benchmarks/test_table1_ablation.py) for those rows.
    ]
    baseline = spread_for(program, MachineConfig())
    print(f"  {'(baseline: all mitigations)':<24s} {baseline:9.4f}%")
    for label, overrides in ablations:
        spread = spread_for(program, MachineConfig(**overrides))
        print(f"  {label:<24s} {spread:9.4f}%   "
              f"({spread / max(baseline, 1e-9):,.0f}x baseline)")

    print("\nEach mitigation removes one noise source; together they take "
          "a 2-digit-percent machine down to a sub-percent one — which is "
          "what makes time-deterministic replay possible.")


if __name__ == "__main__":
    main()

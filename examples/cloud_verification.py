#!/usr/bin/env python3
"""Cloud machine-type verification (the paper's scenario (a), §2.1).

Bob pays Alice for a "fast" machine type.  He records his software's
execution (TDR log + observed packet timing), then replays the log
locally on machines of both candidate types and compares the timing:

* if Alice really provisioned the fast type, the fast-type replay matches
  and the slow-type replay does not;
* if Alice quietly substituted the slow type, the mismatch pattern flips.

Run:  python examples/cloud_verification.py
"""

from repro.apps import build_nfs_program, build_nfs_workload
from repro.core.audit import compare_traces
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.machine import machine_type

REQUESTS = 25


def audit_against(program, observed, type_name: str, seed: int):
    reference = replay(program, observed.log, machine_type(type_name),
                       seed=seed)
    report = compare_traces(observed, reference)
    return report


def verify(program, observed, label: str) -> str:
    """Decide which machine type produced ``observed``."""
    print(f"-- auditing the execution on Alice's '{label}' machine --")
    verdicts = {}
    for type_name in ("fast", "slow"):
        report = audit_against(program, observed, type_name, seed=9999)
        verdicts[type_name] = report
        print(f"  replay on '{type_name}': total-time error "
              f"{report.total_time_error * 100:7.3f}%, worst IPD deviation "
              f"{report.max_rel_ipd_diff * 100:7.3f}% "
              f"-> {'MATCH' if report.is_consistent() else 'mismatch'}")
    matches = [t for t, r in verdicts.items() if r.is_consistent()]
    if len(matches) == 1:
        return matches[0]
    return "ambiguous"


def main() -> None:
    program = build_nfs_program()

    # Alice claims "fast" in both cases; Bob drives his own workload.
    def run_on(type_name: str, seed: int):
        workload = build_nfs_workload(SplitMix64(42), num_requests=REQUESTS)
        return play(program, machine_type(type_name), workload=workload,
                    seed=seed)

    honest = run_on("fast", seed=1)
    decided = verify(program, honest, label="honest (really fast)")
    print(f"  => verdict: machine type is '{decided}'\n")
    assert decided == "fast"

    cheating = run_on("slow", seed=2)
    decided = verify(program, cheating, label="cheating (secretly slow)")
    print(f"  => verdict: machine type is '{decided}'\n")
    assert decided == "slow"

    print("Bob can tell a substituted machine type from timing alone — "
          "no cooperation from Alice needed beyond the log.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""An audited long-running service (extensions from the paper's §3.2/§7).

A key-value service runs under TDR with two production amenities:

1. **Accountable logs** — the machine hash-chains its event log and
   periodically emits signed authenticators, so the auditor can prove a
   tampered log before wasting a replay on it;
2. **Segment replay** — the auditor replays only the suffix after a
   checkpoint instead of the whole (potentially months-long) execution,
   and still catches a covert channel active inside the segment.

Run:  python examples/audited_service.py
"""

from repro.apps.kvstore import build_kvstore_program, build_kvstore_workload
from repro.core.attestation import LogVerifier, attest_execution
from repro.core.log import EventKind, LogEntry
from repro.core.segments import (play_with_checkpoint, replay_segment,
                                 segment_of)
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

SIGNING_KEY = b"kv-service-attestation-key"
REQUESTS = 30
CHECKPOINT_AT = 12_000     # instruction count of the checkpoint (~mid-run)


def main() -> None:
    program = build_kvstore_program()
    config = MachineConfig()

    # The service runs with a covert channel toggled on late in the
    # execution: one 2 ms delay inside the post-checkpoint segment.
    schedule = [0] * REQUESTS
    schedule[22] = 6_800_000
    workload = build_kvstore_workload(SplitMix64(12),
                                      num_requests=REQUESTS)
    observed, checkpoint = play_with_checkpoint(
        program, config, workload, at_instr=CHECKPOINT_AT, seed=0,
        covert_schedule=schedule)
    print(f"service run: {len(observed.tx)} responses, "
          f"{len(observed.log)} log events, checkpoint at instruction "
          f"{CHECKPOINT_AT} (after {checkpoint.tx_count} responses)")

    # --- 1. The machine attests its log. --------------------------------
    authenticator = attest_execution(observed.log, SIGNING_KEY)
    verifier = LogVerifier(SIGNING_KEY)
    print(f"log attested: {authenticator.length} entries, chain head "
          f"{authenticator.chain_head.hex()[:16]}…")
    assert verifier.verify(observed.log, authenticator)
    print("auditor: authenticator verifies against the delivered log")

    # A machine that rewrites history is caught before any replay runs.
    import copy

    tampered = copy.deepcopy(observed.log)
    victim = next(i for i, e in enumerate(tampered.entries)
                  if e.kind == EventKind.PACKET)
    original = tampered.entries[victim]
    tampered.entries[victim] = LogEntry(EventKind.PACKET,
                                        original.instr_count,
                                        payload=b"forged-request")
    assert not verifier.verify(tampered, authenticator)
    print("auditor: a forged request in the log is rejected by the chain")

    # --- 2. Segment replay catches the channel. --------------------------
    segment = replay_segment(program, observed.log, checkpoint, config,
                             seed=99)
    suffix = segment_of(observed, checkpoint)
    print(f"\nsegment replay: {len(segment.tx)} responses reproduced "
          f"from the checkpoint")
    assert [p for _, p in segment.tx] == [p for _, p in suffix]

    diffs_ms = [abs(a - b) * 1e3 / config.frequency_hz
                for (a, _), (b, _) in zip(suffix, segment.tx)]
    flagged = [i for i, d in enumerate(diffs_ms) if d > 1.0]
    print(f"per-response deviations: max {max(diffs_ms):.3f} ms; "
          f"responses over 1 ms: {flagged}")
    assert flagged, "the covert delay must stand out in the segment"
    print("\nThe auditor verified log integrity and caught the covert "
          "channel from a segment — without replaying the whole history.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A continuously-audited multi-tenant service (the paper's §3.2, live).

Earlier revisions of this example audited one machine after the fact.
This one drives ``repro.service`` — the deterministic continuous-audit
verifier — end to end, on a roster of three tenants:

* **tenant-00** runs an honest key-value store;
* **tenant-01** runs the same store but leaks a secret through an
  IPCTC covert timing channel (delays injected during play, *never*
  logged — the shipped log is perfectly honest-looking);
* **tenant-02** is honest too, but its segments travel a lossy link.

Each epoch, every tenant plays its workload, hash-chains and signs its
event log, and ships it in segments over the (simulated) network.  The
verifier admits segments through a CRC + attestation-chain gate, spot
checks cheap prefixes, and escalates anomalies to full-prefix replays —
all on a virtual clock, so the whole story below is bit-identical on
every run.

Run:  python examples/audited_service.py
"""

from repro.core.resilience import AuditClassification
from repro.obs.metrics import MetricsRegistry
from repro.service import AuditService, default_tenants

TENANTS = 3
EPOCHS = 2
SEED = 2014


def main() -> None:
    roster = default_tenants(TENANTS, covert_channel="ipctc", requests=6)
    print("tenant roster:")
    for spec in roster:
        traits = []
        if spec.covert_channel:
            traits.append(f"covert {spec.covert_channel.upper()} channel")
        if spec.drop_rate:
            traits.append(f"lossy link (drop {spec.drop_rate:.0%})")
        print(f"  {spec.tenant_id}: kvstore x {spec.requests} requests, "
              f"{spec.segments} segments/epoch"
              + (f" — {', '.join(traits)}" if traits else ""))

    service = AuditService(roster, epochs=EPOCHS, seed=SEED,
                           registry=MetricsRegistry())
    report = service.run()

    # --- 1. The escalation story, replayed from the ledger. --------------
    covert = report.ledgers["tenant-01"]
    print(f"\nhow tenant-01 was caught ({covert.audits} audits):")
    for event in covert.events:
        print(f"  epoch {event.epoch} {event.kind:>9s} "
              f"[{event.cause}] -> {event.classification.value:16s} "
              f"coverage {event.coverage:.2f}  "
              f"worst IPD diff {event.max_rel_ipd_diff:.1%}  "
              f"status {event.tenant_status}")
    assert covert.flagged and covert.final_status == "flagged-covert"
    assert any(e.kind == "escalated" for e in covert.events), \
        "the flag must come from an escalated full-prefix replay"

    # The spot check saw the anomaly first; the escalation confirmed it.
    suspicious = [e for e in covert.events if e.kind == "spot"
                  and e.classification
                  is AuditClassification.REPLAY_DIVERGENT]
    assert suspicious, "a spot check must have raised the suspicion"
    print(f"  -> a {suspicious[0].coverage:.0%}-coverage spot check "
          f"raised the alarm; escalation confirmed it")

    # --- 2. The honest tenants, including the lossy one, stay clean. -----
    print("\nhonest tenants:")
    for tid in ("tenant-00", "tenant-02"):
        ledger = report.ledgers[tid]
        worst = max(e.max_rel_ipd_diff for e in ledger.events)
        print(f"  {tid}: {ledger.verdict} after {ledger.audits} audits "
              f"(worst IPD diff {worst:.2%})")
        assert not ledger.flagged
        assert worst < 0.0185, "honest replays stay inside the §6.2 bound"

    # --- 3. The full report the operator would read. ----------------------
    print()
    for line in report.render_lines():
        print(f"  {line}")
    assert report.exit_code == 1, "a flagged tenant means non-zero exit"

    print("\nThe verifier flagged the covert tenant from streaming "
          "segments — cheap spot checks first, full replay only on "
          "suspicion — and the whole run is a pure function of "
          f"seed={SEED}.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compile a guest program, play it, replay it, audit it.

This walks the core TDR loop in ~60 lines:

1. write a tiny server in MiniJ (the guest language),
2. run it on a simulated Sanity machine while a client talks to it
   ("play" — all nondeterministic inputs are recorded in a log),
3. replay the log on a second machine of the same type,
4. audit: the replayed packet timing matches the observed timing to
   within the residual noise (the paper's 1.85% bound).

Run:  python examples/quickstart.py
"""

from repro.apps import compile_app
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.machine import InteractiveClient, MachineConfig, Request

# A guest that answers each request with a checksum of its bytes.
GUEST_SOURCE = """
void main() {
    int[] buf = new int[128];
    while (true) {
        int n = wait_packet(buf);
        if (n < 0) { break; }                  // no more input: done
        if (n == 1 && buf[0] == 255) { break; } // shutdown marker
        int checksum = 0;
        for (int i = 0; i < n; i = i + 1) {
            checksum = (checksum * 31 + buf[i]) % 65536;
        }
        buf[0] = checksum % 256;
        buf[1] = checksum / 256;
        send_packet(buf, 2);
    }
    exit();
}
"""


def main() -> None:
    program = compile_app(GUEST_SOURCE)

    # A client that sends 12 requests, waiting for each response.
    requests = [Request(bytes([i + 1] * 16)) for i in range(12)]
    workload = InteractiveClient(requests, SplitMix64(7),
                                 shutdown_payload=bytes([255]))

    outcome = round_trip(program, MachineConfig(), workload=workload,
                         play_seed=0, replay_seed=42)

    print("== play ==")
    print(f"  transmitted packets : {len(outcome.play.tx)}")
    print(f"  execution time      : {outcome.play.total_ns / 1e6:.3f} ms")
    print(f"  event log           : {len(outcome.play.log)} events, "
          f"{outcome.play.log.size_bytes()} bytes")

    print("== replay (different machine of the same type) ==")
    print(f"  execution time      : {outcome.replay.total_ns / 1e6:.3f} ms")

    audit = outcome.audit
    print("== audit ==")
    print(f"  payloads identical  : {audit.payloads_match}")
    print(f"  total-time error    : {audit.total_time_error * 100:.4f} %")
    print(f"  worst IPD deviation : {audit.max_rel_ipd_diff * 100:.4f} % "
          f"({audit.max_abs_ipd_diff_ms:.4f} ms)")
    print(f"  consistent (<=1.85%): {audit.is_consistent()}")

    assert audit.payloads_match and audit.is_consistent()
    print("\nTDR round trip OK: the replay reproduced both the outputs "
          "and their timing.")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools predates PEP 660 editable
wheel support (``pip install -e . --no-build-isolation`` or
``python setup.py develop``).
"""

from setuptools import setup

setup()

"""Fleet scaling and chaos bench: 1 -> N verifier nodes.

Sweeps the sharded :class:`~repro.service.fleet.FleetService` over node
counts, with and without a node-crash chaos plan, and records

* the virtual horizon (how long the fleet took in *simulated* time — the
  number that should shrink as shards absorb the audit load),
* host wall-clock and virtual sessions/second,
* chaos robustness counters (rebalances, requeues, kills, unaudited).

Results merge into ``BENCH_perf.json`` under ``fleet_scaling`` — the
file is read-if-present so this bench composes with
``test_perf_baseline.py`` writing the same report (either order).
``PERF_SMOKE=1`` shrinks the sweep to 1/2/4 nodes for CI.

No wall-clock assertions (host speed varies); the structural assertions
are determinism of the flag set across fleet sizes and the zero-silent-
drop contract under chaos.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.faults.plans import NodeChaosPlan
from repro.obs.metrics import MetricsRegistry
from repro.service import FleetService, FleetTopology, default_tenants

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
NODE_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8, 16)
TENANTS = 3 if SMOKE else 6
EPOCHS = 2
REQUESTS = 4 if SMOKE else 8
#: Node 1 is a no-op crash for the single-node sweep point, so one plan
#: drives every fleet size.
CHAOS = "crash:1@180"


def _run(nodes: int, chaos: str | None):
    plan = NodeChaosPlan.parse(chaos) if chaos else None
    service = FleetService(
        default_tenants(TENANTS, requests=REQUESTS),
        topology=FleetTopology(num_nodes=nodes),
        epochs=EPOCHS, seed=2014, chaos=plan,
        registry=MetricsRegistry())
    t0 = time.perf_counter()
    report = service.run()
    return time.perf_counter() - t0, report


def test_fleet_scaling():
    rows = {}
    for nodes in NODE_COUNTS:
        wall_s, clean = _run(nodes, None)
        chaos_wall_s, chaotic = _run(nodes, CHAOS)

        # Shard count is capacity, not policy: same flags at every size.
        assert clean.flagged_tenants == ["tenant-01"]
        assert not clean.unaudited
        # Chaos never silently drops a session.
        assert chaotic.sessions_verdicted + len(chaotic.unaudited) \
            == chaotic.sessions_total

        rows[str(nodes)] = {
            "wall_seconds": round(wall_s, 4),
            "virtual_horizon_ms": round(clean.horizon_ms, 1),
            "virtual_sessions_per_s": round(
                clean.sessions_total / (clean.horizon_ms / 1000.0), 2),
            "cache_hits": clean.cache_hits,
            "cache_misses": clean.cache_misses,
            "chaos": {
                "wall_seconds": round(chaos_wall_s, 4),
                "rebalances": len(chaotic.rebalances),
                "requeued": chaotic.requeued,
                "killed_in_flight": chaotic.killed_in_flight,
                "steals": chaotic.steals,
                "unaudited": len(chaotic.unaudited),
                "degraded_mode": chaotic.degraded_mode,
            },
        }

    payload = {
        "smoke": SMOKE,
        "tenants": TENANTS,
        "epochs": EPOCHS,
        "requests": REQUESTS,
        "chaos_plan": CHAOS,
        "nodes": rows,
    }

    out = Path(os.environ.get("BENCH_PERF_OUT", "BENCH_perf.json"))
    report = json.loads(out.read_text()) if out.exists() else {}
    report["fleet_scaling"] = payload
    out.write_text(json.dumps(report, indent=2) + "\n")

    print_banner("Fleet scaling — sharded verifier, 1 -> N nodes")
    print(f"  {TENANTS} tenants x {EPOCHS} epochs, chaos plan {CHAOS}")
    print(f"  {'nodes':>5} {'wall s':>8} {'virt ms':>9} "
          f"{'sess/virt-s':>11} {'rebal':>5} {'requeue':>7} "
          f"{'unaudited':>9}")
    for nodes in NODE_COUNTS:
        row = rows[str(nodes)]
        print(f"  {nodes:>5} {row['wall_seconds']:>8.3f} "
              f"{row['virtual_horizon_ms']:>9.1f} "
              f"{row['virtual_sessions_per_s']:>11.2f} "
              f"{row['chaos']['rebalances']:>5} "
              f"{row['chaos']['requeued']:>7} "
              f"{row['chaos']['unaudited']:>9}")
    print(f"  merged into {out}")

    merged = json.loads(out.read_text())
    assert "fleet_scaling" in merged
    assert set(merged["fleet_scaling"]["nodes"]) == \
        {str(n) for n in NODE_COUNTS}

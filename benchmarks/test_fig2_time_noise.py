"""Figure 2: timing variance of zeroing an array in four environments.

Paper: "Figure 2 shows a CDF of the completion times, normalized to the
fastest time we observed ... the largest variance we observed was 189% in
scenario (1) [user, noisy] ... as the environment becomes more and more
controlled, the timing becomes more and more consistent."

Reproduced shape: variance ordering
user-noisy >> user-quiet > kernel > kernel-quiet, with user-noisy on the
order of 100%+ and kernel-quiet near zero.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.plot import ascii_cdf
from repro.analysis.stats import cdf_points, spread_percent
from repro.apps import compile_app, zero_array_source
from repro.core.tdr import play
from repro.machine.noise import scenario_config

SCENARIOS = ("user-noisy", "user-quiet", "kernel", "kernel-quiet")
RUNS = 10
ELEMENTS = 8192


def run_fig2() -> dict[str, list[float]]:
    program = compile_app(zero_array_source(elements=ELEMENTS))
    times: dict[str, list[float]] = {}
    for scenario in SCENARIOS:
        config = scenario_config(scenario)
        times[scenario] = [
            float(play(program, config, seed=seed).total_cycles)
            for seed in range(RUNS)]
    return times


def test_fig2_time_noise(benchmark):
    times = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    print_banner(f"Figure 2 — zeroing a {ELEMENTS * 8 // 1024} kB array, "
                 f"{RUNS} runs per scenario (variance = (max-min)/min)")
    spreads = {}
    for scenario in SCENARIOS:
        spreads[scenario] = spread_percent(times[scenario])
        fastest = min(times[scenario])
        cdf = cdf_points([t / fastest * 100.0 - 100.0
                          for t in times[scenario]])
        tail = ", ".join(f"{v:.2f}%@{f:.1f}" for v, f in cdf[::3])
        print(f"  {scenario:14s} variance={spreads[scenario]:8.2f}%   "
              f"CDF(excess%, frac): {tail}")
    print(f"  paper: 189% max in (1); near-zero in (4)")
    print()
    excess = {scenario: [t / min(times[scenario]) * 100.0 - 100.0
                         for t in times[scenario]]
              for scenario in SCENARIOS}
    print(ascii_cdf(excess, width=58, height=14,
                    xlabel="variance (% of fastest execution)"))

    # Shape assertions: strictly more controlled => strictly less variance.
    assert spreads["user-noisy"] > 50.0
    assert spreads["user-noisy"] > 3 * spreads["user-quiet"]
    assert spreads["user-quiet"] > spreads["kernel"]
    assert spreads["kernel"] > spreads["kernel-quiet"]
    assert spreads["kernel-quiet"] < 0.5

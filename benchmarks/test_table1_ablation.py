"""Table 1 (ablation): each mitigation's contribution to time stability.

Table 1 lists the noise sources Sanity mitigates and whether each is
eliminated or reduced.  This bench ablates the mitigations one at a time,
starting from the full Sanity configuration, and measures the timing
variance (max-min over min across repeated runs) that each source
re-introduces — the quantitative backing for the table's rows.

Reproduced shape: the fully-mitigated baseline is the most stable
configuration; every single ablation makes timing strictly less stable.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.parallel import MachineSpec, run_fleet
from repro.analysis.stats import spread_percent
from repro.machine import MachineConfig
from repro.machine.config import StorageKind

RUNS = 8

#: (Table 1 row, config overrides that *disable* the mitigation).
ABLATIONS = [
    ("interrupts -> timed core", dict(irqs_to_supporting_core=False)),
    ("preemption enabled", dict(preemption_enabled=True)),
    ("caches not flushed", dict(flush_caches_at_start=False,
                                random_initial_cache=True)),
    ("random physical frames", dict(deterministic_frames=False)),
    ("frequency scaling on", dict(freq_scaling=True)),
    ("TurboBoost on", dict(turbo=True)),
    ("HDD, unpadded I/O", dict(storage=StorageKind.HDD, pad_storage=False)),
]

#: The guest exercises every ablatable source: storage reads (I/O),
#: a large sweep (caches/writebacks), and a hot-offset ping-pong over 12
#: pages at the same page offset — those lines collide in the same
#: physically-indexed L2 set *group* or not depending on the frame
#: assignment, which is exactly the effect the deterministic-frames
#: mitigation removes (§3.6).
GUEST = """
void main() {
    int[] block = new int[64];
    int total = 0;
    for (int b = 0; b < 4; b = b + 1) {
        total = total + storage_read(b * 7, block);
    }
    int[] data = new int[8192];
    for (int p = 0; p < 2; p = p + 1) {
        for (int i = 0; i < 8192; i = i + 1) {
            data[i] = total;
        }
    }
    int[] pages = new int[20480];   // 40 pages of 512 words
    int hot = 0;
    for (int r = 0; r < 150; r = r + 1) {
        for (int p = 0; p < 40; p = p + 1) {
            hot = hot + pages[p * 512];
        }
    }
    print_int(total + hot);
    exit();
}
"""


def run_table1(jobs=None):
    # All 64 runs (8 configs x 8 seeds) go through the fleet; workers
    # compile the guest from its source spec, so only (config, seed)
    # crosses the process boundary.
    configs = [MachineConfig(name="sanity-baseline")]
    configs += [MachineConfig(name=f"ablate:{label}", **overrides)
                for label, overrides in ABLATIONS]
    specs = [MachineSpec(program=f"src:{GUEST}", config=config, seed=seed)
             for config in configs for seed in range(RUNS)]
    results = iter(run_fleet(specs, jobs=jobs))

    spreads = [spread_percent([float(next(results).total_cycles)
                               for _ in range(RUNS)])
               for _ in configs]
    baseline = spreads[0]
    rows = [(label, spread)
            for (label, _), spread in zip(ABLATIONS, spreads[1:])]
    return baseline, rows


def test_table1_ablation(benchmark):
    baseline, rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print_banner("Table 1 (ablation) — variance re-introduced by removing "
                 "each mitigation")
    print(f"  {'configuration':<28s} {'variance':>10s} {'vs baseline':>12s}")
    print(f"  {'full Sanity mitigation set':<28s} {baseline:>9.3f}% "
          f"{'1.0x':>12s}")
    for label, spread in rows:
        factor = spread / baseline if baseline > 0 else float("inf")
        print(f"  {label:<28s} {spread:>9.3f}% {factor:>11.1f}x")

    # Shape: every ablation strictly degrades stability.
    for label, spread in rows:
        assert spread > baseline, f"ablation '{label}' did not add noise"
    # The big hitters of the paper (preemption, IRQs, unpadded HDD) are
    # at least an order of magnitude above baseline.
    by_label = dict(rows)
    assert by_label["preemption enabled"] > 10 * baseline
    assert by_label["interrupts -> timed core"] > 10 * baseline
    assert by_label["HDD, unpadded I/O"] > 10 * baseline

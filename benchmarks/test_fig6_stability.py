"""Figure 6: timing variance of SciMark under dirty / clean / Sanity.

Paper: "timing in the 'dirty' configuration can vary considerably, in some
cases by 79% ... In the 'clean' configuration, the variability is more
than an order of magnitude lower; Sanity can reduce it by another order of
magnitude or more, to the point where all execution times are within
0.08%-1.22% of each other."

Reproduced shape: per kernel, variance(dirty) >> variance(clean) >>
variance(sanity), with roughly an order of magnitude per step and Sanity
in the sub-percent range.

The 120 machine runs (3 scenarios x 5 kernels x 8 seeds) are dispatched
through the experiment fleet: every run is fully described by its
(kernel, config, seed) spec, so parallel execution is bit-identical to
the old serial loop and only changes wall-clock time.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.parallel import MachineSpec, run_fleet
from repro.analysis.stats import spread_percent
from repro.machine.noise import scenario_config

KERNELS = ("sor", "smm", "mc", "lu", "fft")
RUNS = 8
SCENARIOS = ("dirty", "clean", "sanity")

PAPER_DIRTY = {"sor": 79.0, "smm": 15.3, "mc": 51.0, "lu": 15.08,
               "fft": 44.0}


def run_fig6(jobs=None):
    specs, keys = [], []
    for scenario in SCENARIOS:
        config = scenario_config(scenario)
        for name in KERNELS:
            for seed in range(RUNS):
                specs.append(MachineSpec(program=f"kernel:{name}",
                                         config=config, seed=seed))
                keys.append((scenario, name))
    results = run_fleet(specs, jobs=jobs)

    times: dict[tuple[str, str], list[float]] = {}
    for key, res in zip(keys, results):
        times.setdefault(key, []).append(float(res.total_cycles))
    return {scenario: {name: spread_percent(times[(scenario, name)])
                       for name in KERNELS}
            for scenario in SCENARIOS}


def test_fig6_stability(benchmark):
    spreads = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    print_banner(f"Figure 6 — SciMark timing variance, {RUNS} runs "
                 "(paper dirty values in parentheses)")
    print(f"  {'kernel':<8s} {'dirty':>18s} {'clean':>10s} {'sanity':>10s}")
    for name in KERNELS:
        print(f"  {name.upper():<8s} {spreads['dirty'][name]:>8.2f}% "
              f"({PAPER_DIRTY[name]:>5.1f}%) "
              f"{spreads['clean'][name]:>9.3f}% "
              f"{spreads['sanity'][name]:>9.4f}%")

    for name in KERNELS:
        dirty = spreads["dirty"][name]
        clean = spreads["clean"][name]
        sanity = spreads["sanity"][name]
        # Each step removes roughly an order of magnitude of noise.
        assert dirty > 5 * clean, name
        assert clean > 3 * sanity, name
        # Sanity's residual is sub-percent (paper: 0.08%-1.22%).
        assert sanity < 1.3, name
        # Dirty environments are tens-of-percent unstable.
        assert dirty > 10.0, name

"""Figure 6: timing variance of SciMark under dirty / clean / Sanity.

Paper: "timing in the 'dirty' configuration can vary considerably, in some
cases by 79% ... In the 'clean' configuration, the variability is more
than an order of magnitude lower; Sanity can reduce it by another order of
magnitude or more, to the point where all execution times are within
0.08%-1.22% of each other."

Reproduced shape: per kernel, variance(dirty) >> variance(clean) >>
variance(sanity), with roughly an order of magnitude per step and Sanity
in the sub-percent range.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.stats import spread_percent
from repro.core.tdr import play
from repro.machine.noise import scenario_config

KERNELS = ("sor", "smm", "mc", "lu", "fft")
RUNS = 8

PAPER_DIRTY = {"sor": 79.0, "smm": 15.3, "mc": 51.0, "lu": 15.08,
               "fft": 44.0}


def run_fig6(scimark_programs):
    spreads: dict[str, dict[str, float]] = {}
    for scenario in ("dirty", "clean", "sanity"):
        config = scenario_config(scenario)
        spreads[scenario] = {}
        for name in KERNELS:
            times = [float(play(scimark_programs[name], config,
                                seed=seed).total_cycles)
                     for seed in range(RUNS)]
            spreads[scenario][name] = spread_percent(times)
    return spreads


def test_fig6_stability(benchmark, scimark_programs):
    spreads = benchmark.pedantic(run_fig6, args=(scimark_programs,),
                                 rounds=1, iterations=1)

    print_banner(f"Figure 6 — SciMark timing variance, {RUNS} runs "
                 "(paper dirty values in parentheses)")
    print(f"  {'kernel':<8s} {'dirty':>18s} {'clean':>10s} {'sanity':>10s}")
    for name in KERNELS:
        print(f"  {name.upper():<8s} {spreads['dirty'][name]:>8.2f}% "
              f"({PAPER_DIRTY[name]:>5.1f}%) "
              f"{spreads['clean'][name]:>9.3f}% "
              f"{spreads['sanity'][name]:>9.4f}%")

    for name in KERNELS:
        dirty = spreads["dirty"][name]
        clean = spreads["clean"][name]
        sanity = spreads["sanity"][name]
        # Each step removes roughly an order of magnitude of noise.
        assert dirty > 5 * clean, name
        assert clean > 3 * sanity, name
        # Sanity's residual is sub-percent (paper: 0.08%-1.22%).
        assert sanity < 1.3, name
        # Dirty environments are tens-of-percent unstable.
        assert dirty > 10.0, name

"""Figure 7 + §6.4: TDR replay accuracy on NFS traces.

Paper: "We gathered 100 one-minute traces of the NFS server while it was
handling requests, and we then replayed each of the traces. ... 97% of
the replays were within 1% of the original execution time; the largest
difference we observed was 1.85%. ... [Fig 7] all the differences are
within 1.85%."

Reproduced shape: every per-IPD play/replay difference within 1.85%, and
the overwhelming majority of total-time differences within 1%.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.plot import ascii_scatter
from repro.apps import build_nfs_workload
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

TRACES = 10
REQUESTS = 30


def run_fig7(nfs_program):
    reports = []
    for trace in range(TRACES):
        workload = build_nfs_workload(SplitMix64(500 + trace),
                                      num_requests=REQUESTS)
        outcome = round_trip(nfs_program, MachineConfig(),
                             workload=workload, play_seed=trace,
                             replay_seed=9000 + trace)
        reports.append(outcome.audit)
    return reports


def test_fig7_replay_accuracy(benchmark, nfs_program):
    reports = benchmark.pedantic(run_fig7, args=(nfs_program,),
                                 rounds=1, iterations=1)

    print_banner(f"Figure 7 / §6.4 — play-vs-replay IPDs over {TRACES} "
                 f"NFS traces x {REQUESTS} requests")
    print(f"  {'trace':>6s} {'packets':>8s} {'total err':>10s} "
          f"{'max IPD err':>12s} {'max abs (ms)':>13s}")
    for i, report in enumerate(reports):
        print(f"  {i:>6d} {report.num_packets:>8d} "
              f"{report.total_time_error * 100:>9.3f}% "
              f"{report.max_rel_ipd_diff * 100:>11.3f}% "
              f"{report.max_abs_ipd_diff_ms:>13.4f}")
    all_pairs = [pair for report in reports for pair in report.ipd_pairs]
    worst = max(abs(p - r) / max(r, 1e-9) for p, r in all_pairs)
    within_1pct = sum(1 for report in reports
                      if report.total_time_error < 0.01) / len(reports)
    print(f"  worst IPD difference: {worst * 100:.3f}%  (paper: 1.85%)")
    print(f"  traces with total time within 1%: {within_1pct * 100:.0f}%  "
          f"(paper: 97%)")
    print()
    print(ascii_scatter({"IPD pairs": all_pairs}, diagonal=True,
                        width=58, height=16,
                        xlabel="IPD during play (ms)",
                        ylabel="IPD during replay (ms)"))

    for report in reports:
        assert report.payloads_match
    # The paper's headline accuracy bound.
    assert worst < 0.0185
    assert within_1pct >= 0.9
    # Replay is *time*-deterministic, not just functional: the IPD pairs
    # hug the diagonal.
    for play_ipd, replay_ipd in all_pairs:
        assert abs(play_ipd - replay_ipd) < 0.30  # ms

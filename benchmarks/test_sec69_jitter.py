"""§6.9: time noise vs network jitter — why evasion is impractical.

Paper: "Figure 7 demonstrated that the timing noise allowed by Sanity is
under 1.85% of the original IPDs, that is, 0.14 ms for a median IPD of
7.4 ms.  On the other hand, the measured median jitter is 0.18 ms, which
is 129% of the allowed noise. ... To avoid detection, the adversary would
need to accept an extremely low accuracy of reception."

Reproduced shape: the replay residual (the noise floor an evading channel
must hide under) is smaller than the WAN path's median jitter, and a
channel whose deltas hide below the noise floor decodes at near-chance
accuracy through that jitter.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.stats import mean, percentile
from repro.apps import build_nfs_workload
from repro.channels import NeedleChannel, bit_accuracy, random_bits
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.machine import MachineConfig
from repro.net import EAST_COAST_JITTER, WanLink

TRACES = 5
REQUESTS = 30


def run_sec69(nfs_program):
    # 1. Measure the replay residual (per-packet |play IPD - replay IPD|).
    residuals_ms: list[float] = []
    relative_residuals: list[float] = []
    median_ipds: list[float] = []
    for trace in range(TRACES):
        workload = build_nfs_workload(SplitMix64(600 + trace),
                                      num_requests=REQUESTS)
        outcome = round_trip(nfs_program, MachineConfig(),
                             workload=workload, play_seed=trace,
                             replay_seed=4000 + trace)
        residuals_ms.extend(abs(p - r)
                            for p, r in outcome.audit.ipd_pairs)
        relative_residuals.extend(abs(p - r) / max(r, 1e-9)
                                  for p, r in outcome.audit.ipd_pairs)
        ipds = sorted(p for p, _ in outcome.audit.ipd_pairs)
        median_ipds.append(ipds[len(ipds) // 2])

    # 2. A channel hiding below the noise floor: deltas at the residual's
    #    95th percentile — undetectable by the TDR auditor — decoded by a
    #    receiver across the jittery WAN path.
    noise_floor = percentile(residuals_ms, 95.0)
    channel = NeedleChannel(period=1, delta_ms=noise_floor)
    rng = SplitMix64(42)
    base_ipd = mean(median_ipds)
    natural = [base_ipd] * 400
    channel.fit(natural, rng)
    bits = random_bits(400, rng)
    covert_ipds = channel.encode(natural, bits, rng)
    # Send times -> receiver-side arrival times through the WAN.
    link = WanLink(rtt_ms=10.0, jitter=EAST_COAST_JITTER)
    send_times = [0.0]
    for ipd in covert_ipds:
        send_times.append(send_times[-1] + ipd)
    arrivals = link.transit_times_ms(send_times, rng.fork("wan"))
    observed_ipds = [b - a for a, b in zip(arrivals, arrivals[1:])]
    accuracy = bit_accuracy(bits, channel.decode(observed_ipds))
    return (residuals_ms, relative_residuals, median_ipds, noise_floor,
            accuracy)


def test_sec69_jitter(benchmark, nfs_program):
    (residuals, relative_residuals, median_ipds, noise_floor,
     accuracy) = benchmark.pedantic(
        run_sec69, args=(nfs_program,), rounds=1, iterations=1)

    median_jitter = EAST_COAST_JITTER.median_ms()
    max_noise = max(residuals)
    median_ipd = mean(median_ipds)

    print_banner("§6.9 — TDR residual noise vs network jitter")
    print(f"  median IPD:                 {median_ipd:8.2f} ms "
          f"(paper: 7.4 ms)")
    print(f"  max replay residual:        {max_noise:8.3f} ms "
          f"(paper: 0.14 ms = 1.85%)")
    print(f"  residual p95 (noise floor): {noise_floor:8.3f} ms")
    print(f"  median WAN jitter:          {median_jitter:8.2f} ms "
          f"(paper: 0.18 ms)")
    print(f"  jitter / max noise:         "
          f"{median_jitter / max_noise * 100:8.0f}% (paper: 129%)")
    print(f"  sub-noise channel decode accuracy through jitter: "
          f"{accuracy * 100:.1f}% (chance = 50%)")

    # The residual stays within the paper's bound relative to each IPD
    # (the same per-pair metric as Fig 7).
    assert max(relative_residuals) < 0.0185
    # The asymmetry that kills evasion: jitter is on the order of — or
    # above — the allowed noise, so sub-noise deltas drown in it.
    assert median_jitter > 0.6 * max_noise
    # A channel small enough to hide under the noise floor is useless:
    # the receiver decodes near chance level.
    assert accuracy < 0.75

"""Figure 3: a conventional (functional-only) replayer does not reproduce
timing.

Paper: "There are some phases in which replay is faster than play ... in
which the VMM was waiting for inputs; XenTT simply skips this phase during
replay.  In other phases, play is faster than replay."

Reproduced shape: plotting event wall time during play (Tp) against wall
time during naive replay (Tr) is far from the diagonal — idle-heavy
sections are skipped (Tr << Tp) while event injection overhead makes busy
sections slower — whereas TDR replay tracks the diagonal to within the
residual noise.
"""

from __future__ import annotations

from conftest import print_banner

from repro.apps import build_nfs_workload
from repro.core.tdr import play, replay, replay_naive
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

REQUESTS = 30


def run_fig3(nfs_program):
    workload = build_nfs_workload(SplitMix64(33), num_requests=REQUESTS)
    played = play(nfs_program, MachineConfig(), workload=workload, seed=0)
    tdr = replay(nfs_program, played.log, MachineConfig(), seed=7)
    naive = replay_naive(nfs_program, played.log, MachineConfig(), seed=7)
    return played, tdr, naive


def test_fig3_naive_replay(benchmark, nfs_program):
    played, tdr, naive = benchmark.pedantic(
        run_fig3, args=(nfs_program,), rounds=1, iterations=1)

    play_times = played.tx_times_ms()
    tdr_times = tdr.tx_times_ms()
    naive_times = naive.tx_times_ms()

    print_banner("Figure 3 — event time during play (Tp) vs replay (Tr), "
                 "naive vs TDR replayer")
    print(f"  {'event':>6s} {'Tp (ms)':>10s} {'Tr naive':>10s} "
          f"{'Tr TDR':>10s} {'naive/ideal':>12s}")
    for i in range(0, len(play_times), max(1, len(play_times) // 10)):
        ratio = naive_times[i] / play_times[i] if play_times[i] else 0.0
        print(f"  {i:>6d} {play_times[i]:>10.2f} {naive_times[i]:>10.2f} "
              f"{tdr_times[i]:>10.2f} {ratio:>12.3f}")
    print(f"  total: play={played.total_ns / 1e6:.1f} ms, "
          f"naive replay={naive.total_ns / 1e6:.1f} ms, "
          f"TDR replay={tdr.total_ns / 1e6:.1f} ms")

    # Naive replay output is functionally identical ...
    assert [p for _, p in naive.tx] == [p for _, p in played.tx]
    # ... but its timing is grossly off the diagonal in both directions:
    # the wait-skipping makes the total far shorter,
    assert naive.total_ns < 0.5 * played.total_ns
    # while per-event injection overhead means Tr is NOT a simple rescale
    # of Tp (the deviation from a fitted line is large).
    scale = naive_times[-1] / play_times[-1]
    worst_residual = max(abs(nt - pt * scale)
                         for nt, pt in zip(naive_times, play_times))
    assert worst_residual > 0.05 * naive_times[-1]
    # The TDR replayer, in contrast, hugs the diagonal.
    tdr_worst = max(abs(rt - pt) for rt, pt in zip(tdr_times, play_times))
    assert tdr_worst < 0.02 * play_times[-1]

"""Null-recorder overhead of the observability hooks.

The cycle-attribution ledger, span tracer, and opcode sampler are wired
into the hot paths (``VirtualClock.advance``, ``mem_access``, the
interpreter poll branch) behind ``is None`` checks.  This bench pins the
cost of those checks when observability is *disabled* — the default for
every run — by timing the shipped code against a monkeypatched
"pre-observability" variant with the checks stripped out, and asserting
the median overhead stays under 5%.

Run with ``pytest benchmarks/test_obs_overhead.py -s``.
"""

from __future__ import annotations

import time

from bisect import bisect_left

from conftest import print_banner
from repro.apps import compile_app, zero_array_source
from repro.core.tdr import play
from repro.hw.clock import VirtualClock
from repro.machine.platform import _PAGE_SHIFT, TimedCorePlatform
from repro.obs.metrics import MetricsRegistry

REPEATS = 7


def _legacy_advance(self, cycles, source="other"):
    """VirtualClock.advance as it was before attribution existed."""
    if cycles < 0:
        raise ValueError(f"cannot advance clock by {cycles} cycles")
    self._cycles += cycles


def _legacy_mem_access(self, vaddr):
    """mem_access without the ledger branch (pre-observability shape)."""
    if self._registerized_base is not None and \
            self._registerized_base[0] <= vaddr < \
            self._registerized_base[1]:
        return
    cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
    paddr = self.space.translate(vaddr)
    cost += self.hierarchy.access(paddr)
    if cost:
        self.clock.advance(cost)


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_null_recorder_overhead_under_5_percent(monkeypatch):
    print_banner("Observability: disabled-path overhead vs pre-obs code")
    program = compile_app(zero_array_source(elements=4096))

    def run():
        result = play(program, None, seed=0)
        assert result.ledger is None  # the null path really is null
        return result.total_cycles

    run()  # warm-up: imports, JIT-free but cache-warm bytecode
    cycles_current = play(program, None, seed=0).total_cycles
    current = _best_of(run)

    monkeypatch.setattr(VirtualClock, "advance", _legacy_advance)
    monkeypatch.setattr(TimedCorePlatform, "mem_access", _legacy_mem_access)
    cycles_legacy = play(program, None, seed=0).total_cycles
    legacy = _best_of(run)

    overhead = current / legacy - 1.0
    print(f"  legacy (stripped hooks): {legacy * 1e3:8.2f} ms")
    print(f"  current (is-None hooks): {current * 1e3:8.2f} ms")
    print(f"  overhead:                {overhead * 100:8.2f}%")
    # The hooks must not change simulated time at all...
    assert cycles_current == cycles_legacy
    # ...and must cost (almost) nothing in host time when disabled.
    assert overhead < 0.05, \
        f"null-recorder overhead {overhead:.1%} exceeds the 5% budget"


def test_profiler_overhead_under_5_percent():
    """The profiler-on knob: strided stack capture on the poll branch
    and at block boundaries must stay under 5% host time versus the
    same observed run without it — while changing nothing simulated."""
    print_banner("Observability: cycle profiler on vs off (obs run)")
    from repro.obs import Observability

    program = compile_app(zero_array_source(elements=4096))

    def run(profile):
        # trace=False isolates the profiler: the span tracer's bind()
        # is per-machine state this A/B does not exercise.
        result = play(program, None, seed=0,
                      obs=Observability(trace=False, profile=profile))
        return result

    run(True)  # warm-up
    with_profiler = run(True)
    without = run(False)
    # Pure observer: every simulated observable identical...
    assert with_profiler.total_cycles == without.total_cycles
    assert with_profiler.ledger == without.ledger
    assert with_profiler.tx == without.tx
    # ...and the profile itself is exact.
    assert with_profiler.profile["sources"] == dict(with_profiler.ledger)

    on = _best_of(lambda: run(True))
    off = _best_of(lambda: run(False))
    overhead = on / off - 1.0
    print(f"  profiler off: {off * 1e3:8.2f} ms")
    print(f"  profiler on:  {on * 1e3:8.2f} ms")
    print(f"  overhead:     {overhead * 100:8.2f}%")
    assert overhead < 0.05, \
        f"profiler-on overhead {overhead:.1%} exceeds the 5% budget"


def _legacy_linear_observe(self, value):
    """Histogram.observe as it was before bisection: walk every
    cumulative ``le`` bucket and bump the ones the value falls under."""
    self._count += 1
    self._sum += value
    if self._min is None or value < self._min:
        self._min = value
    if self._max is None or value > self._max:
        self._max = value
    for i, bound in enumerate(self.buckets):
        if value <= bound:
            self._bucket_counts[i] += 1


def test_histogram_observe_bisect_beats_linear_scan(monkeypatch):
    """The satellite that keeps the <5% overhead bound honest: with many
    buckets (fine-grained latency histograms) the old linear scan did
    O(buckets) increments per observation, the bisect path does one."""
    print_banner("Observability: Histogram.observe bisect vs linear scan")
    from repro.obs.metrics import Histogram

    buckets = tuple(float(b) for b in range(1, 65))
    values = [float((i * 37) % 70) for i in range(20_000)]

    def run(hist):
        observe = hist.observe
        for value in values:
            observe(value)

    current_hist = Histogram("bench_bisect_ms", buckets=buckets)
    run(current_hist)  # warm-up + correctness fixture
    bisected = _best_of(lambda: run(Histogram("b", buckets=buckets)))

    monkeypatch.setattr(Histogram, "observe", _legacy_linear_observe)
    legacy_hist = Histogram("bench_linear_ms", buckets=buckets)
    run(legacy_hist)
    linear = _best_of(lambda: run(Histogram("l", buckets=buckets)))
    monkeypatch.undo()

    # The legacy scan wrote the cumulative view directly; the bisect
    # path stores per-bucket tallies and accumulates at read time —
    # identical observable results, cheaper hot path.
    assert current_hist.cumulative_counts() == legacy_hist._bucket_counts
    assert current_hist.count == legacy_hist._count
    assert current_hist.sum == legacy_hist._sum

    speedup = linear / bisected
    print(f"  linear scan ({len(buckets)} buckets): {linear * 1e3:8.2f} ms")
    print(f"  bisect:                    {bisected * 1e3:8.2f} ms")
    print(f"  speedup:                   {speedup:8.2f}x")
    # Equal-or-better is the contract; on 64 buckets bisect should win
    # clearly, but keep the bound conservative for noisy CI hosts.
    assert speedup > 1.0, \
        f"bisect observe slower than the linear scan ({speedup:.2f}x)"

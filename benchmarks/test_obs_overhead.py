"""Null-recorder overhead of the observability hooks.

The cycle-attribution ledger, span tracer, and opcode sampler are wired
into the hot paths (``VirtualClock.advance``, ``mem_access``, the
interpreter poll branch) behind ``is None`` checks.  This bench pins the
cost of those checks when observability is *disabled* — the default for
every run — by timing the shipped code against a monkeypatched
"pre-observability" variant with the checks stripped out, and asserting
the median overhead stays under 5%.

Run with ``pytest benchmarks/test_obs_overhead.py -s``.
"""

from __future__ import annotations

import time

from conftest import print_banner
from repro.apps import compile_app, zero_array_source
from repro.core.tdr import play
from repro.hw.clock import VirtualClock
from repro.machine.platform import _PAGE_SHIFT, TimedCorePlatform

REPEATS = 7


def _legacy_advance(self, cycles, source="other"):
    """VirtualClock.advance as it was before attribution existed."""
    if cycles < 0:
        raise ValueError(f"cannot advance clock by {cycles} cycles")
    self._cycles += cycles


def _legacy_mem_access(self, vaddr):
    """mem_access without the ledger branch (pre-observability shape)."""
    if self._registerized_base is not None and \
            self._registerized_base[0] <= vaddr < \
            self._registerized_base[1]:
        return
    cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
    paddr = self.space.translate(vaddr)
    cost += self.hierarchy.access(paddr)
    if cost:
        self.clock.advance(cost)


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_null_recorder_overhead_under_5_percent(monkeypatch):
    print_banner("Observability: disabled-path overhead vs pre-obs code")
    program = compile_app(zero_array_source(elements=4096))

    def run():
        result = play(program, None, seed=0)
        assert result.ledger is None  # the null path really is null
        return result.total_cycles

    run()  # warm-up: imports, JIT-free but cache-warm bytecode
    cycles_current = play(program, None, seed=0).total_cycles
    current = _best_of(run)

    monkeypatch.setattr(VirtualClock, "advance", _legacy_advance)
    monkeypatch.setattr(TimedCorePlatform, "mem_access", _legacy_mem_access)
    cycles_legacy = play(program, None, seed=0).total_cycles
    legacy = _best_of(run)

    overhead = current / legacy - 1.0
    print(f"  legacy (stripped hooks): {legacy * 1e3:8.2f} ms")
    print(f"  current (is-None hooks): {current * 1e3:8.2f} ms")
    print(f"  overhead:                {overhead * 100:8.2f}%")
    # The hooks must not change simulated time at all...
    assert cycles_current == cycles_legacy
    # ...and must cost (almost) nothing in host time when disabled.
    assert overhead < 0.05, \
        f"null-recorder overhead {overhead:.1%} exceeds the 5% budget"

"""Host-performance baseline: simulator throughput and pipeline knobs.

Unlike the other benches, this one measures the *simulator* rather than
the simulated machine: interpreter instructions per host-second, and the
wall-clock effect of each perf knob on a Fig 8-style VM-trace slice —

* **batching** — batched cycle charging vs the ``REPRO_NO_BATCH=1``
  reference implementation (bit-identical results, fewer clock calls);
* **fleet** — trace-level parallelism via :func:`run_fleet`;
* **replay cache** — memoizing the clean-reference replay when a trace
  is audited more than once.

Results land in ``BENCH_perf.json`` (override the path with
``BENCH_PERF_OUT``) so CI can archive the numbers per commit and
regressions show up as a diffable artifact.  Set ``BENCH_STORE=<dir>``
to also record the run in the persistent run store, where
``reproduce bench-gate`` compares fresh numbers against the history
median.  ``PERF_SMOKE=1`` shrinks
the workload for CI smoke runs.

No wall-clock assertions — host speed varies; the assertions here are the
structural ones (batched == unbatched bit-identical, JSON written).  The
recorded ``cpu_count`` makes the fleet numbers interpretable: on a
single-core host the fleet knob is expectedly ~1x.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.analysis.parallel import _compiled, run_fleet
from repro.apps import build_nfs_workload
from repro.core.audit import compare_traces
from repro.core.replay_cache import ReplayCache
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
REQUESTS = 6 if SMOKE else 25
TRACES = 2 if SMOKE else 4
FLEET_JOBS = 4
#: Each trace is audited twice (think: a detector re-scoring the same
#: observation at another threshold) — the second audit is what the
#: replay cache can skip.
AUDITS_PER_TRACE = 2


def _nfs_play(seed):
    program = _compiled("nfs")
    workload = build_nfs_workload(SplitMix64(7000 + seed),
                                  num_requests=REQUESTS)
    return play(program, MachineConfig(), workload=workload, seed=seed)


def _trace_worker(seed):
    """Fleet worker: one trace = play + ``AUDITS_PER_TRACE`` full audits,
    each audit re-running the clean-reference replay."""
    program = _compiled("nfs")
    observed = _nfs_play(seed)
    scores = []
    for _ in range(AUDITS_PER_TRACE):
        reference = replay(program, observed.log, MachineConfig(),
                           seed=30_000 + seed)
        scores.append(compare_traces(observed, reference).deviation_score())
    return scores


def _trace_worker_cached(seed):
    """Like :func:`_trace_worker`, but the audits share a replay cache,
    so only the first audit pays for the reference replay."""
    program = _compiled("nfs")
    observed = _nfs_play(seed)
    cache = ReplayCache()
    scores = []
    for _ in range(AUDITS_PER_TRACE):
        reference = cache.replay(program, observed.log, MachineConfig(),
                                 seed=30_000 + seed)
        scores.append(compare_traces(observed, reference).deviation_score())
    return scores


def _timed_slice(jobs, worker, no_batch=False):
    """Run the VM-trace slice under one knob setting, returning
    ``(seconds, scores)``.  ``no_batch`` flips the charging fast path off
    for both the in-process serial path and forked fleet workers (the
    environment is inherited at fork time)."""
    if no_batch:
        os.environ["REPRO_NO_BATCH"] = "1"
    try:
        t0 = time.perf_counter()
        scores = run_fleet(list(range(TRACES)), jobs=jobs, worker=worker)
        return time.perf_counter() - t0, scores
    finally:
        os.environ.pop("REPRO_NO_BATCH", None)


def test_perf_baseline():
    _compiled("nfs")  # compile outside every timed region

    # --- interpreter throughput, batched vs unbatched -------------------
    t0 = time.perf_counter()
    batched = _nfs_play(0)
    batched_s = time.perf_counter() - t0

    os.environ["REPRO_NO_BATCH"] = "1"
    try:
        t0 = time.perf_counter()
        unbatched = _nfs_play(0)
        unbatched_s = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_NO_BATCH", None)

    # The fast path must be invisible in every observable output.
    assert batched.total_cycles == unbatched.total_cycles
    assert batched.instructions == unbatched.instructions
    assert batched.tx == unbatched.tx
    assert batched.tx_times_ms() == unbatched.tx_times_ms()

    # --- trace-compiling tier-up vs the pure interpreter ----------------
    # Measured on a compute-bound kernel (the tier-up targets hot loops;
    # the request-driven NFS run above is dominated by I/O turnaround).
    kernel = _compiled("kernel:sor")
    trials = 2 if SMOKE else 3

    def best_of(n):
        best = None
        result = None
        for _ in range(n + 1):      # +1 warmup: compile caches, branch state
            t0 = time.perf_counter()
            result = play(kernel, MachineConfig(), seed=0)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best, result

    os.environ["REPRO_NO_JIT"] = "1"
    try:
        interp_s, interp = best_of(trials)
    finally:
        os.environ.pop("REPRO_NO_JIT", None)
    jit_s, jit = best_of(trials)
    assert jit.total_cycles == interp.total_cycles
    assert jit.instructions == interp.instructions

    # --- the Fig 8 VM-trace slice under each knob -----------------------
    slice_s = {}
    slice_scores = {}
    slice_s["unbatched_serial"], slice_scores["unbatched_serial"] = \
        _timed_slice(1, _trace_worker, no_batch=True)
    slice_s["batched_serial"], slice_scores["batched_serial"] = \
        _timed_slice(1, _trace_worker)
    slice_s["batched_fleet"], slice_scores["batched_fleet"] = \
        _timed_slice(FLEET_JOBS, _trace_worker)
    slice_s["batched_fleet_cache"], slice_scores["batched_fleet_cache"] = \
        _timed_slice(FLEET_JOBS, _trace_worker_cached)

    # Every knob combination must produce identical deviation scores.
    for name, scores in slice_scores.items():
        assert scores == slice_scores["unbatched_serial"], name

    def speedup(a, b):
        return slice_s[a] / slice_s[b] if slice_s[b] > 0 else float("inf")

    report = {
        "host": {"cpu_count": os.cpu_count(), "smoke": SMOKE},
        "machine_run": {
            "requests": REQUESTS,
            "instructions": batched.instructions,
            "batched": {"seconds": round(batched_s, 4),
                        "instr_per_sec":
                            round(batched.instructions / batched_s)},
            "unbatched": {"seconds": round(unbatched_s, 4),
                          "instr_per_sec":
                              round(unbatched.instructions / unbatched_s)},
            "speedup_batching": round(unbatched_s / batched_s, 3),
        },
        "interp_vs_jit": {
            "kernel": "sor",
            "instructions": jit.instructions,
            "interp": {"seconds": round(interp_s, 4),
                       "instr_per_sec":
                           round(interp.instructions / interp_s)},
            "jit": {"seconds": round(jit_s, 4),
                    "instr_per_sec": round(jit.instructions / jit_s)},
            "speedup_jit": round(interp_s / jit_s, 3),
            "jit_coverage": round(jit.jit["jit_instructions"]
                                  / jit.instructions, 4),
        },
        "fig8_vm_slice": {
            "traces": TRACES,
            "requests": REQUESTS,
            "audits_per_trace": AUDITS_PER_TRACE,
            "fleet_jobs": FLEET_JOBS,
            "seconds": {k: round(v, 4) for k, v in slice_s.items()},
            "speedup_batching":
                round(speedup("unbatched_serial", "batched_serial"), 3),
            "speedup_fleet":
                round(speedup("batched_serial", "batched_fleet"), 3),
            "speedup_cache":
                round(speedup("batched_fleet", "batched_fleet_cache"), 3),
            "speedup_total":
                round(speedup("unbatched_serial", "batched_fleet_cache"),
                      3),
        },
    }

    out = Path(os.environ.get("BENCH_PERF_OUT", "BENCH_perf.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")

    store_root = os.environ.get("BENCH_STORE")
    if store_root:
        from repro.obs.runstore import RunRecord, RunStore

        store = RunStore(store_root)
        run_id = store.save(RunRecord(
            kind="bench",
            label=f"{report['machine_run']['batched']['instr_per_sec']:,}"
                  " instr/s",
            figures={"perf": {"instr_per_sec":
                              report["machine_run"]["batched"]
                                    ["instr_per_sec"],
                              "report": report}}))
        print(f"  recorded {run_id} in {store.root}")

    print_banner("Perf baseline — simulator throughput and knob matrix")
    mr = report["machine_run"]
    print(f"  interpreter: {mr['batched']['instr_per_sec']:>9,d} instr/s "
          f"batched, {mr['unbatched']['instr_per_sec']:>9,d} unbatched "
          f"({mr['speedup_batching']}x) over {mr['instructions']:,d} "
          f"instructions")
    ij = report["interp_vs_jit"]
    print(f"  tier-up ({ij['kernel']}): {ij['jit']['instr_per_sec']:>9,d} "
          f"instr/s compiled, {ij['interp']['instr_per_sec']:>9,d} "
          f"interpreted ({ij['speedup_jit']}x, "
          f"{ij['jit_coverage']:.0%} of instructions in compiled blocks)")
    fs = report["fig8_vm_slice"]
    print(f"  VM slice ({TRACES} traces x {REQUESTS} requests x "
          f"{AUDITS_PER_TRACE} audits, {os.cpu_count()} CPUs):")
    for knob, secs in fs["seconds"].items():
        print(f"    {knob:<22s} {secs:>8.3f}s")
    print(f"  speedups: batching {fs['speedup_batching']}x, "
          f"fleet {fs['speedup_fleet']}x, cache {fs['speedup_cache']}x, "
          f"total {fs['speedup_total']}x")
    print(f"  written to {out}")

    assert out.exists()
    data = json.loads(out.read_text())
    assert data["fig8_vm_slice"]["speedup_total"] > 0

"""Micro-bench pinning the interpreter's hoisted dispatch loop.

``Interpreter.run`` reads per-step state (the frame's ``stack``,
``locals`` and ``pc``, the platform closures, the instruction counter)
out of attribute chains *once* per scheduling slice and works on plain
locals, writing back only at slice boundaries.  This bench times the two
shapes — per-step attribute traffic vs hoisted locals — over the same
synthetic opcode stream and asserts the hoisted shape actually pays:
if a future refactor reintroduces per-step ``self.``/``frame.`` lookups
in the hot loop, this turns red before the Table 2 numbers do.

Run with ``pytest benchmarks/test_dispatch_hoisting.py -s``.
"""

from __future__ import annotations

import time

from conftest import print_banner

REPEATS = 7
STEPS = 200_000


class _Frame:
    __slots__ = ("stack", "locals", "pc")

    def __init__(self) -> None:
        self.stack: list[int] = []
        self.locals = [0] * 8
        self.pc = 0


class _Thread:
    __slots__ = ("frames", "executed")

    def __init__(self) -> None:
        self.frames = [_Frame()]
        self.executed = 0


class _Vm:
    """Just enough attribute surface to mimic the dispatch loop's state."""

    __slots__ = ("current_thread", "instruction_count", "cycles")

    def __init__(self) -> None:
        self.current_thread = _Thread()
        self.instruction_count = 0
        self.cycles = 0

    def charge(self, cost: int) -> None:
        self.cycles += cost


#: A synthetic straight-line opcode stream: (imm push, push, add, store)
#: repeated — enough mix to keep both loops doing identical real work.
_OPS = (0, 0, 1, 2) * (STEPS // 4)


def _legacy_dispatch(vm: _Vm) -> None:
    """Pre-hoisting shape: every step walks the attribute chains."""
    for op in _OPS:
        frame = vm.current_thread.frames[-1]
        if op == 0:
            frame.stack.append(frame.pc & 7)
        elif op == 1:
            stack = frame.stack
            b = stack.pop()
            stack[-1] = stack[-1] + b
        else:
            frame.locals[0] = frame.stack.pop()
        frame.pc += 1
        vm.charge(1)
        vm.instruction_count += 1
        vm.current_thread.executed += 1


def _hoisted_dispatch(vm: _Vm) -> None:
    """The shipped shape: state in locals, one write-back at the end."""
    thread = vm.current_thread
    frame = thread.frames[-1]
    stack = frame.stack
    local_vars = frame.locals
    charge = vm.charge
    pc = frame.pc
    icount = vm.instruction_count
    for op in _OPS:
        if op == 0:
            stack.append(pc & 7)
        elif op == 1:
            b = stack.pop()
            stack[-1] = stack[-1] + b
        else:
            local_vars[0] = stack.pop()
        pc += 1
        charge(1)
        icount += 1
    frame.pc = pc
    thread.executed += icount - vm.instruction_count
    vm.instruction_count = icount


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _final_state(dispatch):
    vm = _Vm()
    dispatch(vm)
    frame = vm.current_thread.frames[-1]
    return (vm.instruction_count, vm.cycles, vm.current_thread.executed,
            frame.pc, frame.stack, frame.locals)


def test_hoisted_dispatch_beats_attribute_chains():
    print_banner("Interpreter dispatch: hoisted locals vs per-step "
                 "attribute lookups")
    # Both shapes retire the identical stream to the identical state.
    assert _final_state(_hoisted_dispatch) == _final_state(_legacy_dispatch)

    legacy = _best_of(lambda: _legacy_dispatch(_Vm()))
    hoisted = _best_of(lambda: _hoisted_dispatch(_Vm()))
    speedup = legacy / hoisted

    print(f"  per-step lookups: {legacy * 1e3:8.2f} ms "
          f"({STEPS / legacy / 1e6:5.1f} M steps/s)")
    print(f"  hoisted locals:   {hoisted * 1e3:8.2f} ms "
          f"({STEPS / hoisted / 1e6:5.1f} M steps/s)")
    print(f"  speedup: {speedup:.2f}x over {STEPS:,d} steps")
    assert speedup > 1.0

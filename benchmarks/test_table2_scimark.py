"""Table 2: SciMark performance of Sanity vs Oracle's JVM.

Paper: completion time of the five SciMark kernels under Sanity, the
Oracle JVM in interpreted mode (``-Xint``), and with the JIT, normalized
to interpreted mode.

Reproduced shape: Sanity is in the same league as a conventional
interpreter ("at the very least, these results suggest that TDR is not
impractical"), the JIT runtime is several times faster, and the pure-
compute Monte Carlo kernel benefits most from JIT compilation (paper:
MC's 0.0305 is the lowest Oracle-JIT ratio).
"""

from __future__ import annotations

import os
import time

from conftest import print_banner

from repro.core.tdr import play
from repro.machine.config import RuntimeKind
from repro.machine.noise import scenario_config

KERNELS = ("sor", "smm", "mc", "fft", "lu")

PAPER_ROWS = {
    "sor": (7.4211, 1.0, 0.2634),
    "smm": (1.0674, 1.0, 1.1200),
    "mc": (4.0890, 1.0, 0.0305),
    "fft": (8.4068, 1.0, 0.1590),
    "lu": (0.2555, 1.0, 0.0353),
}


def run_table2(scimark_programs):
    results = {}
    clean = scenario_config("clean")
    for name in KERNELS:
        program = scimark_programs[name]
        sanity = play(program, scenario_config("sanity"),
                      seed=0).total_cycles
        oracle_int = play(program, clean.with_overrides(name="oracle-int"),
                          seed=0).total_cycles
        oracle_jit = play(
            program,
            clean.with_overrides(name="oracle-jit",
                                 runtime=RuntimeKind.ORACLE_JIT),
            seed=0).total_cycles
        results[name] = (sanity / oracle_int, 1.0,
                         oracle_jit / oracle_int)
    return results


def test_table2_scimark(benchmark, scimark_programs):
    results = benchmark.pedantic(run_table2, args=(scimark_programs,),
                                 rounds=1, iterations=1)

    print_banner("Table 2 — SciMark completion time normalized to "
                 "Oracle-INT (paper values in parentheses)")
    print(f"  {'kernel':<8s} {'Sanity':>18s} {'Oracle-INT':>12s} "
          f"{'Oracle-JIT':>18s}")
    for name in KERNELS:
        sanity, oint, ojit = results[name]
        p_sanity, _, p_jit = PAPER_ROWS[name]
        print(f"  {name.upper():<8s} {sanity:>8.4f} ({p_sanity:>6.4f}) "
              f"{oint:>12.4f} {ojit:>8.4f} ({p_jit:>6.4f})")

    for name in KERNELS:
        sanity, _, ojit = results[name]
        # Sanity is competitive with a conventional interpreter: within
        # 2x either way (the paper's spread is wider because its Sanity
        # is an entirely different codebase, but the conclusion — "TDR is
        # not impractical" — is this bound).
        assert 0.5 < sanity < 2.0, name
        # The JIT is substantially faster than interpretation.
        assert ojit < 0.5, name
    # Pure-compute MC benefits most from JIT compilation (as in the
    # paper); the memory/math-bound kernels benefit less.
    assert results["mc"][2] == min(results[k][2] for k in KERNELS)


TRIALS = 5
#: Host wall-clock bar for the simulator's own tier-up: trace-compiled
#: Sanity must beat the pure interpreter by >= this factor ...
SPEEDUP_BAR = 1.5
#: ... on at least this many of the five kernels (FFT is CALL-heavy and
#: compiled regions cannot cross calls, so it gains the least).
KERNELS_AT_BAR = 3


def _best_of(fn, trials=TRIALS):
    best = None
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_tierup(scimark_programs):
    """Wall-clock host seconds per kernel, tier-up on vs ``REPRO_NO_JIT``.

    Measured on the noise-free Sanity variant (``speculation_sigma=0``),
    where the pre-summed block charge takes its provably-exact O(1) fast
    path; bit-identity under the *default noisy* configs is pinned by
    ``tests/test_tracejit.py``, and the guest-visible numbers are
    asserted equal here as well.
    """
    config = scenario_config("sanity").with_overrides(
        name="sanity-deterministic", speculation_sigma=0.0)
    rows = {}
    for name in KERNELS:
        program = scimark_programs[name]
        os.environ["REPRO_NO_JIT"] = "1"
        try:
            interp_s, interp = _best_of(
                lambda: play(program, config, seed=0))
        finally:
            os.environ.pop("REPRO_NO_JIT", None)
        jit_s, jit = _best_of(lambda: play(program, config, seed=0))
        assert jit.total_cycles == interp.total_cycles, name
        assert jit.instructions == interp.instructions, name
        rows[name] = {"interp_s": interp_s, "jit_s": jit_s,
                      "speedup": interp_s / jit_s,
                      "jit_coverage": (jit.jit["jit_instructions"]
                                       / jit.instructions)}
    return rows


def test_table2_tierup_speedup(benchmark, scimark_programs):
    rows = benchmark.pedantic(run_tierup, args=(scimark_programs,),
                              rounds=1, iterations=1)

    print_banner("Table 2 addendum — simulator host time, trace-compiled "
                 f"vs interpreted Sanity (best of {TRIALS})")
    print(f"  {'kernel':<8s} {'interp s':>10s} {'jit s':>10s} "
          f"{'speedup':>9s} {'coverage':>9s}")
    for name in KERNELS:
        row = rows[name]
        print(f"  {name.upper():<8s} {row['interp_s']:>10.4f} "
              f"{row['jit_s']:>10.4f} {row['speedup']:>8.2f}x "
              f"{row['jit_coverage']:>8.1%}")

    at_bar = sum(row["speedup"] >= SPEEDUP_BAR for row in rows.values())
    print(f"  >= {SPEEDUP_BAR}x on {at_bar}/{len(KERNELS)} kernels "
          f"(bar: {KERNELS_AT_BAR})")
    assert at_bar >= KERNELS_AT_BAR, rows
    # Every kernel must at least not regress under the tier-up.
    assert all(row["speedup"] > 0.9 for row in rows.values()), rows

"""Figure 8: ROC curves/AUC for four covert channels x five detectors.

Two parts:

* **Statistical detectors** (shape, KS, regularity, CCE) are evaluated on
  trace populations from the calibrated NFS traffic model — the large
  trace counts a ROC needs are affordable there.
* **The Sanity (TDR) detector** is evaluated end-to-end on the simulated
  machine: covert servers run with real ``covert_delay`` schedules, their
  logs are replayed on a clean reference machine, and the per-packet IPD
  deviation is the discrimination statistic.

Reproduced shape (paper AUCs in the printed table):

* IPCTC is caught by everything;
* TRCTC evades the shape test but CCE nails it;
* MBCTC evades first-order tests; only CCE retains substantial power;
* the low-rate Needle channel evades every statistical detector;
* Sanity scores AUC = 1.0 on all four channels.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis.experiment import (NfsTrafficModel, run_detector_matrix,
                                       vm_covert_schedule)
from repro.analysis.parallel import _compiled, run_fleet
from repro.analysis.plot import ascii_scatter
from repro.detectors.roc import roc_from_scores
from repro.analysis.stats import auc_mann_whitney
from repro.apps import build_nfs_workload
from repro.channels import (Ipctc, Mbctc, NeedleChannel, Trctc,
                            exec_channels, random_bits)
from repro.core.audit import compare_traces
from repro.core.tdr import play, replay
from repro.determinism import SplitMix64
from repro.detectors import all_statistical_detectors
from repro.exec import exec_round_trip, exec_scenario
from repro.machine import MachineConfig

#: Paper AUC values (Fig 8 legends), for the printed comparison.
PAPER_AUC = {
    ("ipctc", "shape"): 1.000, ("ipctc", "ks"): 1.000,
    ("ipctc", "regularity"): 1.000, ("ipctc", "cce"): 1.000,
    ("ipctc", "sanity"): 1.000,
    ("trctc", "shape"): 0.457, ("trctc", "ks"): 0.833,
    ("trctc", "regularity"): 0.726, ("trctc", "cce"): 1.000,
    ("trctc", "sanity"): 1.000,
    ("mbctc", "shape"): 0.223, ("mbctc", "ks"): 0.412,
    ("mbctc", "regularity"): 0.527, ("mbctc", "cce"): 0.885,
    ("mbctc", "sanity"): 1.000,
    ("needle", "shape"): 0.751, ("needle", "ks"): 0.813,
    ("needle", "regularity"): 0.532, ("needle", "cce"): 0.638,
    ("needle", "sanity"): 1.000,
}

CHANNEL_ORDER = ("ipctc", "trctc", "mbctc", "needle")
DETECTOR_ORDER = ("shape", "ks", "regularity", "cce", "sanity")

#: VM part parameters (kept small: each trace is a full machine run).
VM_TRACES_PER_CHANNEL = 4
VM_LEGIT_TRACES = 4
VM_REQUESTS = 25


def vm_channels():
    """Channel instances sized to the short VM traces (the Needle's
    100-packet period would not fire within 25 packets)."""
    return {
        "ipctc": Ipctc(),
        "trctc": Trctc(),
        "mbctc": Mbctc(),
        "needle": NeedleChannel(period=8, delta_ms=2.0),
    }


def run_statistical_matrix(jobs=None):
    channels = [Ipctc(), Trctc(), Mbctc(), NeedleChannel()]
    cells = run_detector_matrix(channels, all_statistical_detectors,
                                model=NfsTrafficModel(),
                                num_training=30, num_test=25,
                                packets_per_trace=120, seed=2014,
                                jobs=jobs)
    aucs = {(c.channel, c.detector): c.auc for c in cells}
    needle_rocs = {c.detector: c.roc.points for c in cells
                   if c.channel == "needle"}
    return aucs, needle_rocs


def _vm_deviation(task):
    """Fleet worker: one TDR deviation measurement (play + clean replay).

    Top-level so worker processes can resolve it by reference; the guest
    program is rebuilt per process via the symbolic ``"nfs"`` spec.
    """
    seed, schedule = task
    program = _compiled("nfs")
    config = MachineConfig()
    workload = build_nfs_workload(SplitMix64(7000 + seed),
                                  num_requests=VM_REQUESTS)
    observed = play(program, config, workload=workload, seed=seed,
                    covert_schedule=list(schedule) if schedule else None)
    reference = replay(program, observed.log, config, seed=30_000 + seed)
    report = compare_traces(observed, reference)
    assert report.payloads_match
    return report.deviation_score()


def _vm_calib_ipds(seed):
    """Fleet worker: the adversary's calibration pass (clean-host IPDs)."""
    program = _compiled("nfs")
    workload = build_nfs_workload(SplitMix64(7000 + seed),
                                  num_requests=VM_REQUESTS)
    return play(program, MachineConfig(), workload=workload,
                seed=seed).ipds_ms()


def run_sanity_detector(jobs=None):
    """End-to-end TDR detection on the simulated machine.

    Three fleet waves: legitimate deviations, the adversary's calibration
    plays, then covert deviations (which depend on the calibrations via
    the fitted channel schedules).  Schedules are fitted in the parent in
    the original serial loop order, so every machine run sees exactly the
    seeds and schedules of the old serial implementation.
    """
    config = MachineConfig()
    _compiled("nfs")  # warm the parent cache; forked workers share it

    legit_tasks = [(seed, None) for seed in range(VM_LEGIT_TRACES)]
    legit_scores = run_fleet(legit_tasks, jobs=jobs, worker=_vm_deviation)

    channels = vm_channels()
    calib_seeds = [100 * (CHANNEL_ORDER.index(name) + 1) + i
                   for name in channels
                   for i in range(VM_TRACES_PER_CHANNEL)]
    naturals = run_fleet(calib_seeds, jobs=jobs, worker=_vm_calib_ipds)

    covert_tasks = []
    idx = 0
    for name, channel in channels.items():
        for _ in range(VM_TRACES_PER_CHANNEL):
            seed, natural = calib_seeds[idx], naturals[idx]
            idx += 1
            rng = SplitMix64(555 + seed)
            channel.fit(natural * 4, rng)
            bits = random_bits(max(1, channel.bits_needed(len(natural))),
                               rng)
            schedule = vm_covert_schedule(channel, natural, bits, rng,
                                          config.frequency_hz)
            covert_tasks.append((seed, tuple(schedule)))
    covert_all = run_fleet(covert_tasks, jobs=jobs, worker=_vm_deviation)

    aucs = {}
    scores_by_channel = {}
    for pos, name in enumerate(channels):
        covert_scores = covert_all[pos * VM_TRACES_PER_CHANNEL:
                                   (pos + 1) * VM_TRACES_PER_CHANNEL]
        aucs[name] = auc_mann_whitney(covert_scores, legit_scores)
        scores_by_channel[name] = covert_scores
    return aucs, legit_scores, scores_by_channel


def test_fig8_roc(benchmark):
    def run_all():
        statistical, needle_rocs = run_statistical_matrix()
        sanity_aucs, legit_scores, covert_scores = run_sanity_detector()
        return (statistical, needle_rocs, sanity_aucs, legit_scores,
                covert_scores)

    (statistical, needle_rocs, sanity_aucs, legit_scores,
     covert_scores) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    aucs = dict(statistical)
    for name, auc in sanity_aucs.items():
        aucs[(name, "sanity")] = auc

    print_banner("Figure 8 — detector AUC per channel "
                 "(measured / paper)")
    header = "  channel  " + "".join(f"{d:>18s}" for d in DETECTOR_ORDER)
    print(header)
    for channel in CHANNEL_ORDER:
        row = f"  {channel:<8s}"
        for detector in DETECTOR_ORDER:
            measured = aucs[(channel, detector)]
            paper = PAPER_AUC[(channel, detector)]
            row += f"    {measured:>5.3f}/{paper:<5.3f} "
        print(row)
    print(f"  (sanity column from {VM_TRACES_PER_CHANNEL} covert + "
          f"{VM_LEGIT_TRACES} legit full machine executions per channel; "
          f"legit residual deviations: "
          f"{[f'{s:.3f}' for s in legit_scores]} ms)")

    # Fig 8d's curves: the needle channel against a statistical detector
    # (hugging the diagonal = chance) and against Sanity (the upside-down
    # L of a perfect classifier).
    sanity_roc = roc_from_scores("sanity", covert_scores["needle"],
                                 legit_scores)
    print()
    print(ascii_scatter({"cce": needle_rocs["cce"],
                         "sanity": sanity_roc.points},
                        diagonal=True, width=50, height=16,
                        xlabel="false positive rate",
                        ylabel="true positive rate"))

    # --- Fig 8a: IPCTC is detected by every test. ---
    for detector in DETECTOR_ORDER:
        assert aucs[("ipctc", detector)] > 0.95, detector
    # --- Fig 8b: TRCTC fools the shape test; CCE catches it. ---
    assert aucs[("trctc", "shape")] < 0.65
    assert aucs[("trctc", "cce")] > 0.85
    # --- Fig 8c: MBCTC fools first-order tests; CCE retains power. ---
    assert aucs[("mbctc", "shape")] < 0.65
    assert aucs[("mbctc", "ks")] < 0.70
    assert aucs[("mbctc", "cce")] > 0.80
    # --- Fig 8d: the needle evades every statistical detector... ---
    for detector in ("shape", "ks", "regularity", "cce"):
        assert aucs[("needle", detector)] < 0.75, detector
    # --- ...but the Sanity detector is perfect on all four channels. ---
    for channel in CHANNEL_ORDER:
        assert aucs[(channel, "sanity")] == 1.0, channel


# --- The scheduler/IPC channel family (guest executive) ------------------

EXEC_CHANNEL_ORDER = ("schedtc", "mboxtc")
#: Which multi-process guest scenario realises each channel end to end.
EXEC_VM_SCENARIOS = {"schedtc": "sched", "mboxtc": "mbox"}
EXEC_VM_TRACES = 3


def run_exec_statistical_matrix(jobs=None):
    cells = run_detector_matrix(exec_channels(), all_statistical_detectors,
                                model=NfsTrafficModel(),
                                num_training=30, num_test=25,
                                packets_per_trace=120, seed=2014,
                                jobs=jobs)
    return {(c.channel, c.detector): c.auc for c in cells}


def run_exec_sanity_detector():
    """TDR detection of the executive channels on the real machine.

    Each trace is a full multi-process play + clean replay: legitimate
    traces run the scenario with no covert schedule; covert traces
    install the bit-dependent hold schedule on the play machine only.
    """
    aucs = {}
    deviations = {}
    for name, scenario_name in EXEC_VM_SCENARIOS.items():
        scenario = exec_scenario(scenario_name)
        legit = [
            exec_round_trip(scenario, play_seed=seed,
                            replay_seed=900 + seed).audit.deviation_score()
            for seed in range(EXEC_VM_TRACES)]
        covert = [
            exec_round_trip(scenario, play_seed=100 + seed,
                            replay_seed=950 + seed, covert=True,
                            bits=scenario.payload_bits(seed=40 + seed)
                            ).audit.deviation_score()
            for seed in range(EXEC_VM_TRACES)]
        aucs[name] = auc_mann_whitney(covert, legit)
        deviations[name] = (legit, covert)
    return aucs, deviations


def test_fig8_exec_channels(benchmark):
    """Fig 8 rows for the scheduler-yield and mailbox channels."""

    def run_all():
        return run_exec_statistical_matrix(), run_exec_sanity_detector()

    statistical, (sanity_aucs, deviations) = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    print_banner("Figure 8 (exec) — scheduler/IPC channel family AUC")
    header = "  channel  " + "".join(f"{d:>12s}" for d in DETECTOR_ORDER)
    print(header)
    for channel in EXEC_CHANNEL_ORDER:
        row = f"  {channel:<8s}"
        for detector in ("shape", "ks", "regularity", "cce"):
            row += f"    {statistical[(channel, detector)]:>5.3f}   "
        row += f"    {sanity_aucs[channel]:>5.3f}   "
        print(row)
    for channel in EXEC_CHANNEL_ORDER:
        legit, covert = deviations[channel]
        print(f"  {channel}: legit deviations "
              f"{[f'{s:.3f}' for s in legit]} ms, covert "
              f"{[f'{s:.3f}' for s in covert]} ms")

    # Every executive channel must be caught by at least one statistical
    # detector with AUC > 0.9 (acceptance bar) — and in fact the
    # first-order tests nail both, since neither channel shapes its
    # delays to mimic the legitimate IPD distribution.
    for channel in EXEC_CHANNEL_ORDER:
        best = max(statistical[(channel, detector)]
                   for detector in ("shape", "ks", "regularity", "cce"))
        assert best > 0.9, channel
    assert statistical[("schedtc", "ks")] > 0.9
    # The occupancy walk's slowly-varying component is exactly what the
    # entropy detector keys on.
    assert statistical[("mboxtc", "cce")] > 0.9
    # TDR separates covert from legitimate multi-process runs perfectly.
    for channel in EXEC_CHANNEL_ORDER:
        assert sanity_aucs[channel] == 1.0, channel

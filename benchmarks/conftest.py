"""Shared fixtures for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index), prints the reproduced rows/series, and asserts the
qualitative *shape* of the result (orderings, crossovers, who-wins).
Absolute numbers are simulator-scale, not testbed-scale.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.apps import build_kernel_program, build_nfs_program


@pytest.fixture(scope="session")
def nfs_program():
    """The compiled mini-NFS server guest (compiled once per session)."""
    return build_nfs_program()


@pytest.fixture(scope="session")
def scimark_programs():
    """All five SciMark kernels, compiled once."""
    return {name: build_kernel_program(name)
            for name in ("fft", "sor", "mc", "smm", "lu")}


def print_banner(title: str) -> None:
    """Uniform bench-output header."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)

"""§6.5: log size and composition.

Paper: "the logs grew at a rate of approximately 20 kB/minute.  Not
surprisingly, the logs mostly contained incoming network packets (84% in
our trace) ... A small fraction of the log consisted of other entries,
e.g., entries that record the wall-clock time."

Reproduced shape: log growth in the tens-of-kB-per-minute range for the
NFS workload; incoming packets dominate the byte breakdown; transmitted
packets contribute nothing (they are reproduced, not logged).
"""

from __future__ import annotations

from conftest import print_banner

from repro.apps import build_nfs_workload
from repro.core.log import EventKind
from repro.core.tdr import play
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

TRACES = 3
REQUESTS = 60


def run_log_size(nfs_program):
    results = []
    for trace in range(TRACES):
        workload = build_nfs_workload(SplitMix64(800 + trace),
                                      num_requests=REQUESTS)
        result = play(nfs_program, MachineConfig(), workload=workload,
                      seed=trace)
        results.append(result)
    return results


def test_sec65_log_size(benchmark, nfs_program):
    results = benchmark.pedantic(run_log_size, args=(nfs_program,),
                                 rounds=1, iterations=1)

    print_banner("§6.5 — event log size and composition")
    print(f"  {'trace':>6s} {'events':>8s} {'bytes':>8s} "
          f"{'B/request':>10s} {'kB/min':>8s} {'packet %':>9s}")
    bytes_per_request = []
    packet_fractions = []
    for i, result in enumerate(results):
        log = result.log
        breakdown = log.size_breakdown()
        packet_fraction = breakdown["packet"] / log.size_bytes()
        per_request = log.size_bytes() / len(result.tx)
        rate = log.growth_rate_kb_per_minute(result.total_ns)
        bytes_per_request.append(per_request)
        packet_fractions.append(packet_fraction)
        print(f"  {i:>6d} {len(log):>8d} {log.size_bytes():>8d} "
              f"{per_request:>10.1f} {rate:>8.1f} "
              f"{packet_fraction * 100:>8.1f}%")
    print("  paper: ~20 kB/minute at ~2.5 req/s = ~133 B/request, "
          "84% incoming packets")
    print("  (our client paces requests ~30x faster, so kB/min scales "
          "accordingly; bytes-per-request is the rate-independent metric)")

    for result, per_request, fraction in zip(results, bytes_per_request,
                                             packet_fractions):
        # Same order of magnitude as the paper's ~133 B/request.
        assert 50.0 < per_request < 400.0
        # Incoming packets dominate.
        assert fraction > 0.5
        # Outgoing packets are never logged: every packet entry must be a
        # request (or the shutdown marker), not a response.
        packet_entries = [e for e in result.log
                          if e.kind == EventKind.PACKET]
        responses = {payload for _, payload in result.tx}
        for entry in packet_entries:
            assert entry.payload not in responses

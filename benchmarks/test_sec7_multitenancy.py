"""§7 (Discussion) — multi-tenancy ablation.

"Although Sanity currently supports only a single VM per machine, it
should be possible to provide TDR on machines that are running multiple
VMs.  The key challenge would be isolation: the extra VMs would introduce
additional time noise into each other's execution, e.g., via the shared
memory bus.  We speculate that recent work in the real-time domain could
mitigate the 'cross-talk'; techniques such as [33] could be used to
partition the memory and the cache."

This bench quantifies the speculation on our substrate: a bursty
co-tenant VM pushes the replay residual past the detection threshold;
cache/memory partitioning brings it back under, at a capacity cost.
"""

from __future__ import annotations

from conftest import print_banner

from repro.apps import build_nfs_workload
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

TRACES = 3
REQUESTS = 20


def run_sec7(nfs_program):
    configurations = {
        "solo": MachineConfig(),
        "co-tenant": MachineConfig(co_tenant_intensity=0.8),
        "co-tenant + partitioning": MachineConfig(
            co_tenant_intensity=0.8, cache_partitioning=True),
    }
    residuals: dict[str, float] = {}
    totals: dict[str, float] = {}
    for label, config in configurations.items():
        worst = 0.0
        total_cycles = 0
        for trace in range(TRACES):
            workload = build_nfs_workload(SplitMix64(900 + trace),
                                          num_requests=REQUESTS)
            outcome = round_trip(nfs_program, config, workload=workload,
                                 play_seed=trace,
                                 replay_seed=5000 + trace)
            assert outcome.audit.payloads_match
            worst = max(worst, outcome.audit.max_abs_ipd_diff_ms)
            total_cycles += outcome.play.total_cycles
        residuals[label] = worst
        totals[label] = total_cycles / TRACES
    return residuals, totals


def test_sec7_multitenancy(benchmark, nfs_program):
    residuals, totals = benchmark.pedantic(run_sec7, args=(nfs_program,),
                                           rounds=1, iterations=1)

    print_banner("§7 (extension) — multi-tenant cross-talk and "
                 "cache/memory partitioning")
    print(f"  {'configuration':<26s} {'worst replay residual':>22s} "
          f"{'mean runtime':>14s}")
    for label in residuals:
        print(f"  {label:<26s} {residuals[label]:>18.3f} ms "
              f"{totals[label] / 3.4e6:>12.2f} ms")

    solo = residuals["solo"]
    shared = residuals["co-tenant"]
    partitioned = residuals["co-tenant + partitioning"]
    # The co-tenant's cross-talk dominates the single-VM residual ...
    assert shared > 2 * solo
    # ... and partitioning recovers most of the isolation,
    assert partitioned < 0.5 * shared
    # at a (modest) performance cost from the halved private cache.
    assert totals["co-tenant + partitioning"] >= totals["solo"] * 0.99

"""§7 (Discussion) — multi-tenancy ablation.

"Although Sanity currently supports only a single VM per machine, it
should be possible to provide TDR on machines that are running multiple
VMs.  The key challenge would be isolation: the extra VMs would introduce
additional time noise into each other's execution, e.g., via the shared
memory bus.  We speculate that recent work in the real-time domain could
mitigate the 'cross-talk'; techniques such as [33] could be used to
partition the memory and the cache."

This bench quantifies the speculation on our substrate: a bursty
co-tenant VM pushes the replay residual past the detection threshold;
cache/memory partitioning brings it back under, at a capacity cost.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.apps import build_nfs_workload
from repro.core.tdr import round_trip
from repro.determinism import SplitMix64
from repro.machine import MachineConfig

TRACES = 3
REQUESTS = 20

SMOKE = os.environ.get("PERF_SMOKE", "") == "1"
SERVICE_TENANTS = 3
SERVICE_EPOCHS = 1 if SMOKE else 2
SERVICE_REQUESTS = 4 if SMOKE else 5


def run_sec7(nfs_program):
    configurations = {
        "solo": MachineConfig(),
        "co-tenant": MachineConfig(co_tenant_intensity=0.8),
        "co-tenant + partitioning": MachineConfig(
            co_tenant_intensity=0.8, cache_partitioning=True),
    }
    residuals: dict[str, float] = {}
    totals: dict[str, float] = {}
    for label, config in configurations.items():
        worst = 0.0
        total_cycles = 0
        for trace in range(TRACES):
            workload = build_nfs_workload(SplitMix64(900 + trace),
                                          num_requests=REQUESTS)
            outcome = round_trip(nfs_program, config, workload=workload,
                                 play_seed=trace,
                                 replay_seed=5000 + trace)
            assert outcome.audit.payloads_match
            worst = max(worst, outcome.audit.max_abs_ipd_diff_ms)
            total_cycles += outcome.play.total_cycles
        residuals[label] = worst
        totals[label] = total_cycles / TRACES
    return residuals, totals


def test_sec7_multitenancy(benchmark, nfs_program):
    residuals, totals = benchmark.pedantic(run_sec7, args=(nfs_program,),
                                           rounds=1, iterations=1)

    print_banner("§7 (extension) — multi-tenant cross-talk and "
                 "cache/memory partitioning")
    print(f"  {'configuration':<26s} {'worst replay residual':>22s} "
          f"{'mean runtime':>14s}")
    for label in residuals:
        print(f"  {label:<26s} {residuals[label]:>18.3f} ms "
              f"{totals[label] / 3.4e6:>12.2f} ms")

    solo = residuals["solo"]
    shared = residuals["co-tenant"]
    partitioned = residuals["co-tenant + partitioning"]
    # The co-tenant's cross-talk dominates the single-VM residual ...
    assert shared > 2 * solo
    # ... and partitioning recovers most of the isolation,
    assert partitioned < 0.5 * shared
    # at a (modest) performance cost from the halved private cache.
    assert totals["co-tenant + partitioning"] >= totals["solo"] * 0.99


# -- service-level variant ---------------------------------------------------


def _run_service(config: MachineConfig):
    """One verifier-service run under ``config``; returns (report, wall_s)."""
    from repro.obs.metrics import MetricsRegistry
    from repro.service import AuditService, default_tenants

    service = AuditService(
        default_tenants(SERVICE_TENANTS, requests=SERVICE_REQUESTS),
        epochs=SERVICE_EPOCHS, seed=42, config=config,
        registry=MetricsRegistry())
    start = time.perf_counter()
    report = service.run(jobs=1)
    return report, time.perf_counter() - start


def _merge_perf(section: dict) -> Path:
    """Read-modify-write ``BENCH_perf.json`` under one key.

    ``test_perf_baseline.py`` owns the file and rewrites it whole; this
    bench only folds its own section in, so either ordering of the two
    benches leaves both sections intact.
    """
    out = Path(os.environ.get("BENCH_PERF_OUT", "BENCH_perf.json"))
    report = json.loads(out.read_text()) if out.exists() else {}
    report["service_multitenancy"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def test_sec7_service_throughput(benchmark):
    """Verifier throughput under co-tenant cross-talk, service-level.

    The single-VM ablation above shows the *residual* moving; this one
    shows the operational cost: the same audit workload takes several
    times longer to verify when a bursty co-tenant shares the machine,
    and cache/memory partitioning recovers nearly all of it — while the
    flagged roster never changes (play and replay share the config, so
    deterministic cross-talk cancels in the verdict).
    """
    configurations = {
        "solo": MachineConfig(),
        "co-tenant": MachineConfig(co_tenant_intensity=0.8),
        "co-tenant + partitioning": MachineConfig(
            co_tenant_intensity=0.8, cache_partitioning=True),
    }

    def run_all():
        rows = {}
        for label, config in configurations.items():
            report, wall_s = _run_service(config)
            rows[label] = {
                "segments_shipped": report.segments_shipped,
                "audits": sum(ledger.audits
                              for ledger in report.ledgers.values()),
                "flagged": report.flagged_tenants,
                "wall_s": round(wall_s, 4),
                "segments_per_s": round(
                    report.segments_shipped / wall_s, 2),
                "audits_per_s": round(
                    sum(ledger.audits
                        for ledger in report.ledgers.values()) / wall_s, 2),
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_banner("§7 (extension) — verifier-service throughput under "
                 "multi-tenancy")
    print(f"  {'configuration':<26s} {'segments/s':>11s} {'audits/s':>9s} "
          f"{'wall':>7s}  flagged")
    for label, row in rows.items():
        print(f"  {label:<26s} {row['segments_per_s']:>11.2f} "
              f"{row['audits_per_s']:>9.2f} {row['wall_s']:>6.2f}s  "
              f"{','.join(row['flagged']) or 'none'}")
    out = _merge_perf({
        "tenants": SERVICE_TENANTS, "epochs": SERVICE_EPOCHS,
        "requests": SERVICE_REQUESTS, "smoke": SMOKE,
        "configurations": rows})
    print(f"  [merged service_multitenancy into {out}]")

    solo = rows["solo"]
    shared = rows["co-tenant"]
    partitioned = rows["co-tenant + partitioning"]
    # The audit workload itself is identical in every configuration ...
    assert solo["audits"] == shared["audits"] == partitioned["audits"]
    # ... and so is the verdict: deterministic cross-talk cancels out.
    assert solo["flagged"] == shared["flagged"] == partitioned["flagged"] \
        == ["tenant-01"]
    # Cross-talk costs the verifier most of its throughput,
    assert shared["segments_per_s"] < 0.75 * solo["segments_per_s"]
    # and partitioning wins the bulk of it back.
    assert partitioned["segments_per_s"] > 1.3 * shared["segments_per_s"]

"""MiniJ compiler driver: source → assembly → linked Program."""

from __future__ import annotations

from repro.asm import assemble
from repro.lang.codegen import generate_assembly
from repro.lang.parser import parse
from repro.vm.program import Program


def compile_to_assembly(source: str,
                        native_signatures: dict[str, tuple[tuple[str, ...],
                                                           str]] | None = None,
                        entry: str = "main") -> str:
    """Compile MiniJ source to a Sanity assembly listing."""
    module = parse(source)
    return generate_assembly(module, native_signatures or {}, entry)


def compile_minij(source: str, natives=None,
                  native_signatures: dict[str, tuple[tuple[str, ...],
                                                     str]] | None = None,
                  entry: str = "main") -> Program:
    """Compile MiniJ source to a linked :class:`Program`.

    ``natives`` resolves native names to indices (a
    :class:`~repro.vm.NativeRegistry` or platform exposing
    ``native_index``); ``native_signatures`` declares their MiniJ types,
    e.g. ``{"send_packet": (("int[]", "int"), "void")}``.
    """
    listing = compile_to_assembly(source, native_signatures, entry)
    return assemble(listing, natives=natives, entry=entry)

"""MiniJ: the typed guest language compiled to Sanity VM bytecode.

The paper's guest applications are Java programs; ours are MiniJ programs.
MiniJ is a small statically-typed language with ``int`` (64-bit), ``float``
(IEEE double), ``int[]``/``float[]`` arrays, record classes, functions,
structured control flow, and ``try``/``catch`` over integer exception
codes.  The compiler emits Sanity assembly (see :mod:`repro.asm`), so every
compiled program is also inspectable as a listing.

Example::

    from repro.lang import compile_minij
    from repro.vm import Interpreter, NullPlatform

    source = '''
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    void main() {
        print_int(fib(10));
    }
    '''
    platform = NullPlatform()
    program = compile_minij(source, natives=platform,
                            native_signatures={"print_int": (("int",), "void")})
"""

from repro.lang.compiler import compile_minij, compile_to_assembly
from repro.lang.lexer import Lexer, Token, TokenKind

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "compile_minij",
    "compile_to_assembly",
]

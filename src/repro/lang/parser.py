"""MiniJ recursive-descent parser."""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import Lexer, Token, TokenKind

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.Module`."""

    def __init__(self, source: str) -> None:
        self._tokens = Lexer(source).tokens()
        self._pos = 0
        self._class_names: set[str] = set()
        # Pre-scan class names so types can reference classes declared later.
        for i, token in enumerate(self._tokens[:-1]):
            if token.kind == TokenKind.KEYWORD and token.text == "class":
                nxt = self._tokens[i + 1]
                if nxt.kind == TokenKind.IDENT:
                    self._class_names.add(nxt.text)

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _error(self, message: str, token: Token | None = None) -> CompileError:
        token = token or self._current
        return CompileError(message, line=token.line, col=token.col)

    def _advance(self) -> Token:
        token = self._current
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._match(kind, text)
        if token is None:
            want = text or kind.value
            raise self._error(
                f"expected '{want}', got '{self._current.text or 'EOF'}'")
        return token

    def _expect_punct(self, text: str) -> Token:
        return self._expect(TokenKind.PUNCT, text)

    # -- types ---------------------------------------------------------------

    def _looks_like_type(self) -> bool:
        token = self._current
        if token.kind == TokenKind.KEYWORD and token.text in ("int", "float",
                                                              "void"):
            return True
        return token.kind == TokenKind.IDENT and token.text in self._class_names

    def _parse_type(self) -> ast.Type:
        token = self._current
        if token.kind == TokenKind.KEYWORD and token.text in ("int", "float",
                                                              "void"):
            self._advance()
            base = token.text
        elif token.kind == TokenKind.IDENT and token.text in self._class_names:
            self._advance()
            base = token.text
        else:
            raise self._error(f"expected a type, got '{token.text}'")
        if self._check(TokenKind.PUNCT, "[") and \
                self._tokens[self._pos + 1].text == "]":
            if base == "void":
                raise self._error("void[] is not a type", token)
            self._advance()
            self._advance()
            return ast.Type(base, is_array=True)
        return ast.Type(base)

    # -- top level ----------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.KEYWORD, "class"):
                module.classes.append(self._parse_class())
            elif self._check(TokenKind.KEYWORD, "global"):
                module.globals.append(self._parse_global())
            else:
                module.functions.append(self._parse_function())
        return module

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.KEYWORD, "class")
        name = self._expect(TokenKind.IDENT).text
        self._expect_punct("{")
        fields: list[ast.FieldDecl] = []
        while not self._match(TokenKind.PUNCT, "}"):
            field_type = self._parse_type()
            if field_type.name == "void":
                raise self._error("fields cannot be void")
            field_name = self._expect(TokenKind.IDENT)
            self._expect_punct(";")
            fields.append(ast.FieldDecl(field_type, field_name.text,
                                        field_name.line))
        return ast.ClassDecl(name, fields, start.line)

    def _parse_global(self) -> ast.GlobalDecl:
        start = self._expect(TokenKind.KEYWORD, "global")
        var_type = self._parse_type()
        if var_type.name == "void":
            raise self._error("globals cannot be void")
        name = self._expect(TokenKind.IDENT).text
        initializer = None
        if self._match(TokenKind.PUNCT, "="):
            initializer = self._parse_expression()
        self._expect_punct(";")
        return ast.GlobalDecl(var_type, name, initializer, start.line)

    def _parse_function(self) -> ast.FunctionDecl:
        return_type = self._parse_type()
        name_token = self._expect(TokenKind.IDENT)
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._check(TokenKind.PUNCT, ")"):
            while True:
                param_type = self._parse_type()
                if param_type.name == "void":
                    raise self._error("parameters cannot be void")
                param_name = self._expect(TokenKind.IDENT)
                params.append(ast.Param(param_type, param_name.text,
                                        param_name.line))
                if not self._match(TokenKind.PUNCT, ","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDecl(name_token.text, params, return_type, body,
                                name_token.line)

    # -- statements -------------------------------------------------------------

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self._match(TokenKind.PUNCT, "}"):
            if self._check(TokenKind.EOF):
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if token.kind == TokenKind.KEYWORD:
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self._advance()
                value = None
                if not self._check(TokenKind.PUNCT, ";"):
                    value = self._parse_expression()
                self._expect_punct(";")
                return ast.Return(token.line, value)
            if token.text == "break":
                self._advance()
                self._expect_punct(";")
                return ast.Break(token.line)
            if token.text == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.Continue(token.line)
            if token.text == "throw":
                self._advance()
                code = self._parse_expression()
                self._expect_punct(";")
                return ast.Throw(token.line, code)
            if token.text == "try":
                return self._parse_try()
        if self._looks_like_type() and \
                self._tokens[self._pos + 1].kind in (TokenKind.IDENT,
                                                     TokenKind.PUNCT):
            # Could be a declaration ("int x ..." / "int[] x ...") or an
            # expression starting with a class-named variable; declarations
            # always have IDENT after the (possibly array-suffixed) type.
            save = self._pos
            try:
                var_type = self._parse_type()
                name = self._expect(TokenKind.IDENT).text
            except CompileError:
                self._pos = save
            else:
                initializer = None
                if self._match(TokenKind.PUNCT, "="):
                    initializer = self._parse_expression()
                self._expect_punct(";")
                return ast.VarDecl(token.line, var_type, name, initializer)
        return self._parse_simple_statement(expect_semicolon=True)

    _COMPOUND_OPS = ("+=", "-=", "*=", "/=", "%=")

    def _parse_simple_statement(self, expect_semicolon: bool) -> ast.Stmt:
        """An assignment or expression statement (used by ``for`` too)."""
        token = self._current
        expr = self._parse_expression()
        if self._match(TokenKind.PUNCT, "="):
            if not isinstance(expr, (ast.VarRef, ast.Index, ast.FieldAccess)):
                raise self._error("invalid assignment target", token)
            value = self._parse_expression()
            if expect_semicolon:
                self._expect_punct(";")
            return ast.Assign(token.line, expr, value)
        for compound in self._COMPOUND_OPS:
            if self._match(TokenKind.PUNCT, compound):
                # Desugar `x op= e` to `x = x op e`.  Restricted to plain
                # variables so the target is evaluated exactly once.
                if not isinstance(expr, ast.VarRef):
                    raise self._error(
                        f"'{compound}' target must be a variable "
                        "(arrays/fields would evaluate the target twice)",
                        token)
                value = self._parse_expression()
                if expect_semicolon:
                    self._expect_punct(";")
                combined = ast.Binary(token.line, compound[0], expr, value)
                return ast.Assign(token.line, expr, combined)
        if expect_semicolon:
            self._expect_punct(";")
        return ast.ExprStmt(token.line, expr)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.KEYWORD, "if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body: list[ast.Stmt] = []
        if self._match(TokenKind.KEYWORD, "else"):
            if self._check(TokenKind.KEYWORD, "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(start.line, condition, then_body, else_body)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.KEYWORD, "while")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_block()
        return ast.While(start.line, condition, body)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenKind.KEYWORD, "for")
        self._expect_punct("(")
        init: ast.Stmt | None = None
        if not self._check(TokenKind.PUNCT, ";"):
            if self._looks_like_type():
                var_type = self._parse_type()
                name = self._expect(TokenKind.IDENT).text
                initializer = None
                if self._match(TokenKind.PUNCT, "="):
                    initializer = self._parse_expression()
                init = ast.VarDecl(start.line, var_type, name, initializer)
            else:
                init = self._parse_simple_statement(expect_semicolon=False)
        self._expect_punct(";")
        condition = None
        if not self._check(TokenKind.PUNCT, ";"):
            condition = self._parse_expression()
        self._expect_punct(";")
        update: ast.Stmt | None = None
        if not self._check(TokenKind.PUNCT, ")"):
            update = self._parse_simple_statement(expect_semicolon=False)
        self._expect_punct(")")
        body = self._parse_block()
        return ast.For(start.line, init, condition, update, body)

    def _parse_try(self) -> ast.TryCatch:
        start = self._expect(TokenKind.KEYWORD, "try")
        try_body = self._parse_block()
        self._expect(TokenKind.KEYWORD, "catch")
        self._expect_punct("(")
        catch_var = self._expect(TokenKind.IDENT).text
        self._expect_punct(")")
        catch_body = self._parse_block()
        return ast.TryCatch(start.line, try_body, catch_var, catch_body)

    # -- expressions ----------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.kind != TokenKind.PUNCT:
                return left
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.line, token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.kind == TokenKind.PUNCT and token.text in ("-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.line, token.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenKind.PUNCT, "["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(self._current.line, expr, index)
            elif self._check(TokenKind.PUNCT, "."):
                self._advance()
                field = self._expect(TokenKind.IDENT)
                expr = ast.FieldAccess(field.line, expr, field.text)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(token.line, token.value)
        if token.kind == TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(token.line, token.value)
        if token.kind == TokenKind.KEYWORD and token.text in ("true", "false"):
            self._advance()
            return ast.IntLit(token.line, 1 if token.text == "true" else 0)
        if token.kind == TokenKind.KEYWORD and token.text == "new":
            self._advance()
            element = self._current
            if element.kind == TokenKind.KEYWORD and element.text in ("int",
                                                                      "float"):
                self._advance()
                self._expect_punct("[")
                length = self._parse_expression()
                self._expect_punct("]")
                return ast.NewArray(token.line, ast.Type(element.text),
                                    length)
            class_name = self._expect(TokenKind.IDENT).text
            self._expect_punct("(")
            self._expect_punct(")")
            return ast.NewObject(token.line, class_name)
        if token.kind == TokenKind.IDENT:
            self._advance()
            if self._check(TokenKind.PUNCT, "("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(TokenKind.PUNCT, ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._match(TokenKind.PUNCT, ","):
                            break
                self._expect_punct(")")
                return ast.Call(token.line, token.text, args)
            return ast.VarRef(token.line, token.text)
        if token.kind == TokenKind.PUNCT and token.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token '{token.text or 'EOF'}'")


def parse(source: str) -> ast.Module:
    """Parse MiniJ source into a module AST."""
    return Parser(source).parse_module()

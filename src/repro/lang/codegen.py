"""MiniJ type checker and code generator (emits Sanity assembly).

Code generation is deliberately simple-minded — no register allocation, no
peephole pass — because the *predictability* of the emitted code matters
more here than its speed: the paper's own JVM omitted the JIT for the same
reason (§3.1).  Comparisons lower to ``cmp`` + a conditional branch; in
boolean-value contexts they are materialized to 0/1.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse

#: Maximum local slots per frame (must match the interpreter's layout).
MAX_LOCALS = 64

_INT = ast.INT
_FLOAT = ast.FLOAT
_VOID = ast.VOID

#: Intrinsics compile to dedicated opcodes instead of native calls.
_INTRINSICS = {
    "sqrt": ((_FLOAT,), _FLOAT, "fsqrt"),
    "sin": ((_FLOAT,), _FLOAT, "fsin"),
    "cos": ((_FLOAT,), _FLOAT, "fcos"),
    "itof": ((_INT,), _FLOAT, "i2f"),
    "ftoi": ((_FLOAT,), _INT, "f2i"),
}

_CMP_FALSE_BRANCH = {
    "<": "ifge", "<=": "ifgt", ">": "ifle", ">=": "iflt",
    "==": "ifne", "!=": "ifeq",
}
_CMP_TRUE_BRANCH = {
    "<": "iflt", "<=": "ifle", ">": "ifgt", ">=": "ifge",
    "==": "ifeq", "!=": "ifne",
}
_COMPARISON_OPS = frozenset(_CMP_FALSE_BRANCH)
_INT_ONLY_OPS = {"%": "irem", "<<": "ishl", ">>": "ishr", "&": "iand",
                 "|": "ior", "^": "ixor"}
_ARITH_OPS = {"+": ("iadd", "fadd"), "-": ("isub", "fsub"),
              "*": ("imul", "fmul"), "/": ("idiv", "fdiv")}


def _parse_type_string(text: str) -> ast.Type:
    if text.endswith("[]"):
        return ast.Type(text[:-2], is_array=True)
    return ast.Type(text)


class _Scope:
    """A lexical scope mapping names to (slot, type)."""

    def __init__(self, parent: "_Scope | None") -> None:
        self.parent = parent
        self.bindings: dict[str, tuple[int, ast.Type]] = {}

    def lookup(self, name: str) -> tuple[int, ast.Type] | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class CodeGenerator:
    """Generates one module's assembly listing."""

    def __init__(self, module: ast.Module,
                 native_signatures: dict[str, tuple[tuple[str, ...], str]],
                 entry: str = "main") -> None:
        self.module = module
        self.entry = entry
        self.natives: dict[str, tuple[tuple[ast.Type, ...], ast.Type]] = {}
        for name, (params, ret) in native_signatures.items():
            self.natives[name] = (
                tuple(_parse_type_string(p) for p in params),
                _parse_type_string(ret))
        self.classes: dict[str, ast.ClassDecl] = {}
        self.globals: dict[str, tuple[int, ast.Type]] = {}
        self.functions: dict[str, ast.FunctionDecl] = {}
        self.function_index: dict[str, int] = {}
        self._lines: list[str] = []
        self._label_counter = 0
        self._collect_declarations()

    # -- declaration collection ------------------------------------------------

    def _collect_declarations(self) -> None:
        for class_decl in self.module.classes:
            if class_decl.name in self.classes:
                raise CompileError(f"duplicate class '{class_decl.name}'",
                                   line=class_decl.line)
            seen: set[str] = set()
            for field in class_decl.fields:
                if field.name in seen:
                    raise CompileError(
                        f"duplicate field '{field.name}' in class "
                        f"'{class_decl.name}'", line=field.line)
                seen.add(field.name)
                self._check_type_exists(field.field_type, field.line)
            self.classes[class_decl.name] = class_decl
        for index, global_decl in enumerate(self.module.globals):
            if global_decl.name in self.globals:
                raise CompileError(f"duplicate global '{global_decl.name}'",
                                   line=global_decl.line)
            self._check_type_exists(global_decl.var_type, global_decl.line)
            self.globals[global_decl.name] = (index, global_decl.var_type)
        for index, function in enumerate(self.module.functions):
            if function.name in self.functions:
                raise CompileError(f"duplicate function '{function.name}'",
                                   line=function.line)
            if function.name in self.natives or function.name in _INTRINSICS:
                raise CompileError(
                    f"function '{function.name}' shadows a builtin",
                    line=function.line)
            self._check_type_exists(function.return_type, function.line)
            for param in function.params:
                self._check_type_exists(param.param_type, param.line)
            self.functions[function.name] = function
            self.function_index[function.name] = index
        if self.entry not in self.functions:
            raise CompileError(f"missing entry function '{self.entry}'")
        entry_fn = self.functions[self.entry]
        if entry_fn.params or entry_fn.return_type != _VOID:
            raise CompileError(
                f"entry function '{self.entry}' must be 'void {self.entry}()'",
                line=entry_fn.line)

    def _check_type_exists(self, type_: ast.Type, line: int) -> None:
        if type_.name in ("int", "float", "void"):
            return
        if type_.is_array:
            raise CompileError(f"arrays of class type are not supported: "
                               f"{type_}", line=line)
        if type_.name not in {c.name for c in self.module.classes}:
            raise CompileError(f"unknown type '{type_.name}'", line=line)

    # -- emission helpers -----------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append("    " + text)

    def _emit_label(self, label: str) -> None:
        self._lines.append(f"{label}:")

    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"_{hint}_{self._label_counter}"

    # -- top level -------------------------------------------------------------------

    def generate(self) -> str:
        """Produce the full assembly listing for the module."""
        self._lines = []
        for class_decl in self.module.classes:
            fields = " ".join(f.name for f in class_decl.fields)
            self._lines.append(f".class {class_decl.name} {fields}".rstrip())
        for global_decl in self.module.globals:
            self._lines.append(f".global {global_decl.name}")
        for function in self.module.functions:
            self._generate_function(function)
        return "\n".join(self._lines) + "\n"

    def _generate_function(self, function: ast.FunctionDecl) -> None:
        gen = _FunctionContext(self, function)
        gen.generate()


class _FunctionContext:
    """Code generation state for one function body."""

    def __init__(self, parent: CodeGenerator,
                 function: ast.FunctionDecl) -> None:
        self.gen = parent
        self.function = function
        self.scope = _Scope(None)
        self.next_slot = 0
        self.max_slot = 0
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self.body_lines: list[str] = []
        self.catch_directives: list[str] = []

    # -- slot allocation ------------------------------------------------------------

    def _alloc_slot(self, name: str, type_: ast.Type, line: int) -> int:
        if self.scope.bindings.get(name) is not None:
            raise CompileError(f"duplicate variable '{name}' in scope",
                               line=line)
        slot = self.next_slot
        self.next_slot += 1
        self.max_slot = max(self.max_slot, self.next_slot)
        if self.max_slot > MAX_LOCALS:
            raise CompileError(
                f"function '{self.function.name}' needs more than "
                f"{MAX_LOCALS} local slots", line=line)
        self.scope.bindings[name] = (slot, type_)
        return slot

    # -- emission --------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.body_lines.append("    " + text)

    def _emit_label(self, label: str) -> None:
        self.body_lines.append(f"{label}:")

    def _fresh(self, hint: str) -> str:
        return self.gen._fresh_label(hint)

    # -- entry ------------------------------------------------------------------------

    def generate(self) -> None:
        function = self.function
        for param in function.params:
            self._alloc_slot(param.name, param.param_type, param.line)
        if function.name == self.gen.entry:
            self._emit_global_initializers()
        returned = self._gen_block(function.body)
        if not returned:
            if function.return_type == _VOID:
                self._emit("ret")
            else:
                # Fall-off-the-end of a value-returning function: return a
                # zero of the right type rather than trapping.
                if function.return_type == _FLOAT:
                    self._emit("fconst 0.0")
                else:
                    self._emit("iconst 0")
                self._emit("retv")
        header = (f".func {function.name} {len(function.params)} "
                  f"{max(self.max_slot, len(function.params))}")
        self.gen._lines.append(header)
        self.gen._lines.extend(self.body_lines)
        self.gen._lines.extend(self.catch_directives)

    def _emit_global_initializers(self) -> None:
        for global_decl in self.gen.module.globals:
            if global_decl.initializer is None:
                continue
            index, declared = self.gen.globals[global_decl.name]
            actual = self._gen_expr(global_decl.initializer)
            if actual != declared:
                raise CompileError(
                    f"global '{global_decl.name}': initializer type "
                    f"{actual} does not match {declared}",
                    line=global_decl.line)
            self._emit(f"gstore {global_decl.name}")

    # -- statements ----------------------------------------------------------------------

    def _gen_block(self, statements: list[ast.Stmt]) -> bool:
        """Generate a block; returns True if it definitely returned."""
        self.scope = _Scope(self.scope)
        saved_slot = self.next_slot
        returned = False
        for statement in statements:
            if returned:
                raise CompileError("unreachable statement after return",
                                   line=statement.line)
            returned = self._gen_stmt(statement)
        self.scope = self.scope.parent
        self.next_slot = saved_slot
        return returned

    def _gen_stmt(self, statement: ast.Stmt) -> bool:
        if isinstance(statement, ast.VarDecl):
            self._gen_var_decl(statement)
        elif isinstance(statement, ast.Assign):
            self._gen_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            result = self._gen_expr(statement.expr, allow_void=True)
            if result != _VOID:
                self._emit("pop")
        elif isinstance(statement, ast.If):
            return self._gen_if(statement)
        elif isinstance(statement, ast.While):
            self._gen_while(statement)
        elif isinstance(statement, ast.For):
            self._gen_for(statement)
        elif isinstance(statement, ast.Return):
            self._gen_return(statement)
            return True
        elif isinstance(statement, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside a loop",
                                   line=statement.line)
            self._emit(f"goto {self.loop_stack[-1][1]}")
        elif isinstance(statement, ast.Continue):
            if not self.loop_stack:
                raise CompileError("continue outside a loop",
                                   line=statement.line)
            self._emit(f"goto {self.loop_stack[-1][0]}")
        elif isinstance(statement, ast.Throw):
            code_type = self._gen_expr(statement.code)
            if code_type != _INT:
                raise CompileError("throw needs an int code",
                                   line=statement.line)
            self._emit("throw")
        elif isinstance(statement, ast.TryCatch):
            self._gen_try(statement)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unsupported statement {statement!r}",
                               line=statement.line)
        return False

    def _gen_var_decl(self, statement: ast.VarDecl) -> None:
        if statement.var_type == _VOID:
            raise CompileError("variables cannot be void",
                               line=statement.line)
        self.gen._check_type_exists(statement.var_type, statement.line)
        slot = self._alloc_slot(statement.name, statement.var_type,
                                statement.line)
        if statement.initializer is not None:
            actual = self._gen_expr(statement.initializer)
            self._check_assignable(statement.var_type, actual,
                                   statement.line)
        else:
            if statement.var_type == _FLOAT:
                self._emit("fconst 0.0")
            else:
                self._emit("iconst 0")  # ints and null references
        self._emit(f"store {slot}")

    def _gen_assign(self, statement: ast.Assign) -> None:
        target = statement.target
        if isinstance(target, ast.VarRef):
            binding = self.scope.lookup(target.name)
            if binding is not None:
                slot, declared = binding
                actual = self._gen_expr(statement.value)
                self._check_assignable(declared, actual, statement.line)
                self._emit(f"store {slot}")
                return
            if target.name in self.gen.globals:
                _, declared = self.gen.globals[target.name]
                actual = self._gen_expr(statement.value)
                self._check_assignable(declared, actual, statement.line)
                self._emit(f"gstore {target.name}")
                return
            raise CompileError(f"undefined variable '{target.name}'",
                               line=statement.line)
        if isinstance(target, ast.Index):
            array_type = self._gen_expr(target.array)
            if not array_type.is_array:
                raise CompileError(f"cannot index into {array_type}",
                                   line=statement.line)
            index_type = self._gen_expr(target.index)
            if index_type != _INT:
                raise CompileError("array index must be int",
                                   line=statement.line)
            value_type = self._gen_expr(statement.value)
            self._check_assignable(ast.Type(array_type.name), value_type,
                                   statement.line)
            self._emit("astore")
            return
        if isinstance(target, ast.FieldAccess):
            class_name, field_type = self._field_info(target)
            self._gen_expr(target.obj)
            value_type = self._gen_expr(statement.value)
            self._check_assignable(field_type, value_type, statement.line)
            self._emit(f"putfield {class_name}.{target.field}")
            return
        raise CompileError("invalid assignment target", line=statement.line)

    def _gen_if(self, statement: ast.If) -> bool:
        else_label = self._fresh("else")
        end_label = self._fresh("endif")
        self._gen_condition(statement.condition, else_label, jump_if=False)
        then_returned = self._gen_block(statement.then_body)
        if statement.else_body:
            if not then_returned:
                self._emit(f"goto {end_label}")
            self._emit_label(else_label)
            else_returned = self._gen_block(statement.else_body)
            if not then_returned:
                self._emit_label(end_label)
            return then_returned and else_returned
        self._emit_label(else_label)
        return False

    def _gen_while(self, statement: ast.While) -> None:
        start = self._fresh("while")
        end = self._fresh("endwhile")
        self._emit_label(start)
        self._gen_condition(statement.condition, end, jump_if=False)
        self.loop_stack.append((start, end))
        self._gen_block(statement.body)
        self.loop_stack.pop()
        self._emit(f"goto {start}")
        self._emit_label(end)

    def _gen_for(self, statement: ast.For) -> None:
        # The init declaration scopes over the whole loop.
        self.scope = _Scope(self.scope)
        saved_slot = self.next_slot
        if statement.init is not None:
            self._gen_stmt(statement.init)
        cond_label = self._fresh("for")
        continue_label = self._fresh("forcont")
        end_label = self._fresh("endfor")
        self._emit_label(cond_label)
        if statement.condition is not None:
            self._gen_condition(statement.condition, end_label,
                                jump_if=False)
        self.loop_stack.append((continue_label, end_label))
        self._gen_block(statement.body)
        self.loop_stack.pop()
        self._emit_label(continue_label)
        if statement.update is not None:
            self._gen_stmt(statement.update)
        self._emit(f"goto {cond_label}")
        self._emit_label(end_label)
        self.scope = self.scope.parent
        self.next_slot = saved_slot

    def _gen_return(self, statement: ast.Return) -> None:
        expected = self.function.return_type
        if statement.value is None:
            if expected != _VOID:
                raise CompileError(
                    f"'{self.function.name}' must return {expected}",
                    line=statement.line)
            self._emit("ret")
            return
        if expected == _VOID:
            raise CompileError(
                f"'{self.function.name}' returns void", line=statement.line)
        actual = self._gen_expr(statement.value)
        self._check_assignable(expected, actual, statement.line)
        self._emit("retv")

    def _gen_try(self, statement: ast.TryCatch) -> None:
        try_start = self._fresh("try")
        try_end = self._fresh("endtry")
        handler = self._fresh("catch")
        done = self._fresh("done")
        self._emit_label(try_start)
        self._gen_block(statement.try_body)
        self._emit_label(try_end)
        self._emit(f"goto {done}")
        self._emit_label(handler)
        # Bind the exception code in a fresh scope around the catch body.
        self.scope = _Scope(self.scope)
        saved_slot = self.next_slot
        slot = self._alloc_slot(statement.catch_var, _INT, statement.line)
        self._emit(f"store {slot}")
        self._gen_block(statement.catch_body)
        self.scope = self.scope.parent
        self.next_slot = saved_slot
        self._emit_label(done)
        self.catch_directives.append(
            f".catch {try_start} {try_end} {handler}")

    # -- conditions --------------------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr, target: str,
                       jump_if: bool) -> None:
        """Emit code that jumps to ``target`` when ``expr`` is ``jump_if``."""
        if isinstance(expr, ast.Binary) and expr.op in _COMPARISON_OPS:
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            if left != right or left.is_array or \
                    left.name not in ("int", "float"):
                raise CompileError(
                    f"cannot compare {left} with {right}", line=expr.line)
            self._emit("cmp")
            table = _CMP_TRUE_BRANCH if jump_if else _CMP_FALSE_BRANCH
            self._emit(f"{table[expr.op]} {target}")
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_condition(expr.operand, target, not jump_if)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            if not jump_if:
                self._gen_condition(expr.left, target, False)
                self._gen_condition(expr.right, target, False)
            else:
                skip = self._fresh("and")
                self._gen_condition(expr.left, skip, False)
                self._gen_condition(expr.right, target, True)
                self._emit_label(skip)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            if jump_if:
                self._gen_condition(expr.left, target, True)
                self._gen_condition(expr.right, target, True)
            else:
                skip = self._fresh("or")
                self._gen_condition(expr.left, skip, True)
                self._gen_condition(expr.right, target, False)
                self._emit_label(skip)
            return
        if isinstance(expr, ast.IntLit):
            if bool(expr.value) == jump_if:
                self._emit(f"goto {target}")
            return
        value_type = self._gen_expr(expr)
        if value_type != _INT:
            raise CompileError(f"condition must be int, got {value_type}",
                               line=expr.line)
        self._emit(f"{'ifne' if jump_if else 'ifeq'} {target}")

    # -- expressions ----------------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr, allow_void: bool = False) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            self._emit(f"iconst {expr.value}")
            return _INT
        if isinstance(expr, ast.FloatLit):
            self._emit(f"fconst {expr.value!r}")
            return _FLOAT
        if isinstance(expr, ast.VarRef):
            binding = self.scope.lookup(expr.name)
            if binding is not None:
                slot, type_ = binding
                self._emit(f"load {slot}")
                return type_
            if expr.name in self.gen.globals:
                _, type_ = self.gen.globals[expr.name]
                self._emit(f"gload {expr.name}")
                return type_
            raise CompileError(f"undefined variable '{expr.name}'",
                               line=expr.line)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, allow_void)
        if isinstance(expr, ast.Index):
            array_type = self._gen_expr(expr.array)
            if not array_type.is_array:
                raise CompileError(f"cannot index into {array_type}",
                                   line=expr.line)
            index_type = self._gen_expr(expr.index)
            if index_type != _INT:
                raise CompileError("array index must be int", line=expr.line)
            self._emit("aload")
            return ast.Type(array_type.name)
        if isinstance(expr, ast.FieldAccess):
            class_name, field_type = self._field_info(expr)
            self._gen_expr(expr.obj)
            self._emit(f"getfield {class_name}.{expr.field}")
            return field_type
        if isinstance(expr, ast.NewArray):
            length_type = self._gen_expr(expr.length)
            if length_type != _INT:
                raise CompileError("array length must be int", line=expr.line)
            self._emit(f"newarray {'i' if expr.element_type == _INT else 'f'}")
            return ast.Type(expr.element_type.name, is_array=True)
        if isinstance(expr, ast.NewObject):
            if expr.class_name not in self.gen.classes:
                raise CompileError(f"unknown class '{expr.class_name}'",
                                   line=expr.line)
            self._emit(f"newobj {expr.class_name}")
            return ast.Type(expr.class_name)
        raise CompileError(f"unsupported expression {expr!r}",
                           line=expr.line)  # pragma: no cover

    def _gen_unary(self, expr: ast.Unary) -> ast.Type:
        if expr.op == "!":
            return self._materialize_bool(expr)
        operand = self._gen_expr(expr.operand)
        if expr.op == "-":
            if operand == _INT:
                self._emit("ineg")
                return _INT
            if operand == _FLOAT:
                self._emit("fneg")
                return _FLOAT
            raise CompileError(f"cannot negate {operand}", line=expr.line)
        if expr.op == "~":
            if operand != _INT:
                raise CompileError(f"cannot complement {operand}",
                                   line=expr.line)
            self._emit("iconst -1")
            self._emit("ixor")
            return _INT
        raise CompileError(f"unsupported unary '{expr.op}'",
                           line=expr.line)  # pragma: no cover

    def _gen_binary(self, expr: ast.Binary) -> ast.Type:
        if expr.op in _COMPARISON_OPS or expr.op in ("&&", "||"):
            return self._materialize_bool(expr)
        if expr.op in _INT_ONLY_OPS:
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            if left != _INT or right != _INT:
                raise CompileError(
                    f"'{expr.op}' needs int operands, got {left} and "
                    f"{right}", line=expr.line)
            self._emit(_INT_ONLY_OPS[expr.op])
            return _INT
        if expr.op in _ARITH_OPS:
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            if left != right or left not in (_INT, _FLOAT):
                raise CompileError(
                    f"'{expr.op}' needs matching numeric operands, got "
                    f"{left} and {right}", line=expr.line)
            int_op, float_op = _ARITH_OPS[expr.op]
            self._emit(int_op if left == _INT else float_op)
            return left
        raise CompileError(f"unsupported operator '{expr.op}'",
                           line=expr.line)  # pragma: no cover

    def _materialize_bool(self, expr: ast.Expr) -> ast.Type:
        true_label = self._fresh("true")
        end_label = self._fresh("bool")
        self._gen_condition(expr, true_label, jump_if=True)
        self._emit("iconst 0")
        self._emit(f"goto {end_label}")
        self._emit_label(true_label)
        self._emit("iconst 1")
        self._emit_label(end_label)
        return _INT

    def _gen_call(self, expr: ast.Call, allow_void: bool) -> ast.Type:
        name = expr.name
        if name == "len":
            if len(expr.args) != 1:
                raise CompileError("len() takes one argument", line=expr.line)
            array_type = self._gen_expr(expr.args[0])
            if not array_type.is_array:
                raise CompileError(f"len() needs an array, got {array_type}",
                                   line=expr.line)
            self._emit("arraylen")
            return _INT
        if name == "spawn" and "spawn" in self.gen.natives:
            return self._gen_spawn(expr)
        if name in _INTRINSICS:
            param_types, return_type, mnemonic = _INTRINSICS[name]
            self._check_call_args(name, expr, param_types)
            self._emit(mnemonic)
            return return_type
        if name in self.gen.functions:
            function = self.gen.functions[name]
            param_types = tuple(p.param_type for p in function.params)
            self._check_call_args(name, expr, param_types)
            self._emit(f"call {name}")
            if function.return_type == _VOID and not allow_void:
                raise CompileError(
                    f"void function '{name}' used as a value",
                    line=expr.line)
            return function.return_type
        if name in self.gen.natives:
            param_types, return_type = self.gen.natives[name]
            self._check_call_args(name, expr, param_types)
            self._emit(f"native {name}")
            if return_type == _VOID and not allow_void:
                raise CompileError(
                    f"void native '{name}' used as a value", line=expr.line)
            return return_type
        raise CompileError(f"undefined function '{name}'", line=expr.line)

    def _gen_spawn(self, expr: ast.Call) -> ast.Type:
        """``spawn(worker, arg)``: start ``worker(arg)`` on a new thread."""
        if len(expr.args) != 2 or not isinstance(expr.args[0], ast.VarRef):
            raise CompileError(
                "spawn() takes a function name and one int argument",
                line=expr.line)
        target_name = expr.args[0].name
        if target_name not in self.gen.functions:
            raise CompileError(f"spawn(): undefined function "
                               f"'{target_name}'", line=expr.line)
        target = self.gen.functions[target_name]
        if (len(target.params) != 1 or target.params[0].param_type != _INT
                or target.return_type != _VOID):
            raise CompileError(
                f"spawn() target '{target_name}' must be "
                "'void f(int arg)'", line=expr.line)
        self._emit(f"iconst {self.gen.function_index[target_name]}")
        arg_type = self._gen_expr(expr.args[1])
        if arg_type != _INT:
            raise CompileError("spawn() argument must be int", line=expr.line)
        self._emit("native spawn")
        return _VOID

    def _check_call_args(self, name: str, expr: ast.Call,
                         param_types: tuple[ast.Type, ...]) -> None:
        if len(expr.args) != len(param_types):
            raise CompileError(
                f"'{name}' expects {len(param_types)} arguments, got "
                f"{len(expr.args)}", line=expr.line)
        for i, (argument, expected) in enumerate(zip(expr.args, param_types)):
            actual = self._gen_expr(argument)
            if actual != expected:
                raise CompileError(
                    f"'{name}' argument {i + 1}: expected {expected}, got "
                    f"{actual}", line=expr.line)

    def _check_assignable(self, declared: ast.Type, actual: ast.Type,
                          line: int) -> None:
        if declared != actual:
            raise CompileError(f"cannot assign {actual} to {declared}",
                               line=line)

    def _field_info(self, access: ast.FieldAccess) -> tuple[str, ast.Type]:
        obj_type = self._infer_type(access.obj)
        if obj_type.is_array or obj_type.name not in self.gen.classes:
            raise CompileError(f"{obj_type} has no fields", line=access.line)
        class_decl = self.gen.classes[obj_type.name]
        for field in class_decl.fields:
            if field.name == access.field:
                return obj_type.name, field.field_type
        raise CompileError(
            f"class '{obj_type.name}' has no field '{access.field}'",
            line=access.line)

    def _infer_type(self, expr: ast.Expr) -> ast.Type:
        """Type of an expression without emitting code (for field lookups)."""
        if isinstance(expr, ast.VarRef):
            binding = self.scope.lookup(expr.name)
            if binding is not None:
                return binding[1]
            if expr.name in self.gen.globals:
                return self.gen.globals[expr.name][1]
            raise CompileError(f"undefined variable '{expr.name}'",
                               line=expr.line)
        if isinstance(expr, ast.FieldAccess):
            _, field_type = self._field_info_static(expr)
            return field_type
        if isinstance(expr, ast.NewObject):
            return ast.Type(expr.class_name)
        if isinstance(expr, ast.Call) and expr.name in self.gen.functions:
            return self.gen.functions[expr.name].return_type
        if isinstance(expr, ast.Index):
            inner = self._infer_type(expr.array)
            return ast.Type(inner.name)
        raise CompileError("expression too complex for field access; "
                           "assign it to a variable first", line=expr.line)

    def _field_info_static(self,
                           access: ast.FieldAccess) -> tuple[str, ast.Type]:
        obj_type = self._infer_type(access.obj)
        if obj_type.is_array or obj_type.name not in self.gen.classes:
            raise CompileError(f"{obj_type} has no fields", line=access.line)
        class_decl = self.gen.classes[obj_type.name]
        for field in class_decl.fields:
            if field.name == access.field:
                return obj_type.name, field.field_type
        raise CompileError(
            f"class '{obj_type.name}' has no field '{access.field}'",
            line=access.line)


def generate_assembly(module: ast.Module,
                      native_signatures: dict[str, tuple[tuple[str, ...],
                                                         str]],
                      entry: str = "main") -> str:
    """Compile a parsed module to an assembly listing."""
    return CodeGenerator(module, native_signatures, entry).generate()

"""MiniJ abstract syntax tree node definitions.

Plain dataclasses; the parser builds them and the code generator consumes
them.  Every node carries its source line for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types -------------------------------------------------------------------

@dataclass(frozen=True)
class Type:
    """A MiniJ type: ``int``, ``float``, ``void``, ``T[]``, or a class."""

    name: str            # "int", "float", "void", or a class name
    is_array: bool = False

    def __str__(self) -> str:
        return self.name + ("[]" if self.is_array else "")


INT = Type("int")
FLOAT = Type("float")
VOID = Type("void")
INT_ARRAY = Type("int", is_array=True)
FLOAT_ARRAY = Type("float", is_array=True)


# -- expressions ---------------------------------------------------------------

@dataclass
class Expr:
    line: int


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str              # "-", "!", "~"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str              # arithmetic / comparison / logical / bitwise
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


@dataclass
class Index(Expr):
    array: Expr
    index: Expr


@dataclass
class FieldAccess(Expr):
    obj: Expr
    field: str


@dataclass
class NewArray(Expr):
    element_type: Type   # int or float
    length: Expr


@dataclass
class NewObject(Expr):
    class_name: str


# -- statements -----------------------------------------------------------------

@dataclass
class Stmt:
    line: int


@dataclass
class VarDecl(Stmt):
    var_type: Type
    name: str
    initializer: Expr | None


@dataclass
class Assign(Stmt):
    target: Expr         # VarRef, Index, or FieldAccess
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    condition: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class While(Stmt):
    condition: Expr
    body: list[Stmt]


@dataclass
class For(Stmt):
    init: Stmt | None
    condition: Expr | None
    update: Stmt | None
    body: list[Stmt]


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Throw(Stmt):
    code: Expr


@dataclass
class TryCatch(Stmt):
    try_body: list[Stmt]
    catch_var: str
    catch_body: list[Stmt]


# -- declarations -----------------------------------------------------------------

@dataclass
class Param:
    param_type: Type
    name: str
    line: int


@dataclass
class FunctionDecl:
    name: str
    params: list[Param]
    return_type: Type
    body: list[Stmt]
    line: int


@dataclass
class FieldDecl:
    field_type: Type
    name: str
    line: int


@dataclass
class ClassDecl:
    name: str
    fields: list[FieldDecl]
    line: int


@dataclass
class GlobalDecl:
    var_type: Type
    name: str
    initializer: Expr | None
    line: int


@dataclass
class Module:
    classes: list[ClassDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)

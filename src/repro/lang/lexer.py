"""MiniJ lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CompileError


class TokenKind(enum.Enum):
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "float", "void", "class", "global", "if", "else", "while", "for",
    "return", "break", "continue", "new", "try", "catch", "throw", "true",
    "false",
})

#: Multi-character operators, longest first so maximal munch works.
_PUNCTUATIONS = [
    "+=", "-=", "*=", "/=", "%=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, @{self.line}:{self.col})"


class Lexer:
    """Turns MiniJ source into a token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, line=self.line, col=self.col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self.pos):
                start_line = self.line
                self._advance(2)
                while self.pos < len(src) and not src.startswith("*/",
                                                                 self.pos):
                    self._advance()
                if self.pos >= len(src):
                    raise CompileError("unterminated block comment",
                                       line=start_line)
                self._advance(2)
            else:
                return

    def tokens(self) -> list[Token]:
        """Lex the whole source; the list always ends with an EOF token."""
        result: list[Token] = []
        src = self.source
        while True:
            self._skip_trivia()
            if self.pos >= len(src):
                result.append(Token(TokenKind.EOF, "", None,
                                    self.line, self.col))
                return result
            line, col = self.line, self.col
            ch = src[self.pos]
            if ch.isdigit() or (ch == "." and self.pos + 1 < len(src)
                                and src[self.pos + 1].isdigit()):
                result.append(self._lex_number(line, col))
            elif ch.isalpha() or ch == "_":
                start = self.pos
                while (self.pos < len(src)
                       and (src[self.pos].isalnum() or src[self.pos] == "_")):
                    self._advance()
                text = src[start:self.pos]
                kind = (TokenKind.KEYWORD if text in KEYWORDS
                        else TokenKind.IDENT)
                result.append(Token(kind, text, text, line, col))
            else:
                for punct in _PUNCTUATIONS:
                    if src.startswith(punct, self.pos):
                        self._advance(len(punct))
                        result.append(Token(TokenKind.PUNCT, punct, punct,
                                            line, col))
                        break
                else:
                    raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith("0x", self.pos) or src.startswith("0X", self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            text = src[start:self.pos]
            try:
                return Token(TokenKind.INT_LIT, text, int(text, 16), line, col)
            except ValueError:
                raise CompileError(f"bad hex literal '{text}'", line=line,
                                   col=col)
        is_float = False
        while self.pos < len(src) and src[self.pos].isdigit():
            self._advance()
        if self.pos < len(src) and src[self.pos] == ".":
            # Disambiguate a float literal from member access on a literal
            # (which MiniJ doesn't have anyway).
            is_float = True
            self._advance()
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
        if self.pos < len(src) and src[self.pos] in "eE":
            is_float = True
            self._advance()
            if self.pos < len(src) and src[self.pos] in "+-":
                self._advance()
            if self.pos >= len(src) or not src[self.pos].isdigit():
                raise CompileError("malformed exponent", line=line, col=col)
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
        text = src[start:self.pos]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, float(text), line, col)
        return Token(TokenKind.INT_LIT, text, int(text), line, col)

"""Native-function registry (the VM's equivalent of JNI).

The class library of the paper's JVM "interacts with the JVM by calling
native functions at certain points, e.g., to perform I/O" (§4.1).  Our
guest programs do the same through the ``NATIVE`` opcode.  The registry
maps names to indices at assembly time and dispatches calls at run time.

Handlers receive ``(interpreter, args)`` and return the result value or
``None``.  Timing is the handler's responsibility (charge via the
platform); the dispatch cost itself is the NATIVE opcode's cost class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.errors import VMLoadError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.interpreter import Interpreter


@dataclass(frozen=True)
class NativeSpec:
    """Declaration of one native function."""

    name: str
    num_args: int
    returns_value: bool
    handler: Callable[["Interpreter", list], object]


class NativeRegistry:
    """Ordered collection of natives; order defines the index space."""

    def __init__(self, specs: list[NativeSpec] | None = None) -> None:
        self._specs: list[NativeSpec] = []
        self._by_name: dict[str, int] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: NativeSpec) -> int:
        """Add a native; returns its index."""
        if spec.name in self._by_name:
            raise VMLoadError(f"duplicate native '{spec.name}'")
        if spec.num_args < 0:
            raise VMLoadError(f"native '{spec.name}': negative arity")
        self._specs.append(spec)
        index = len(self._specs) - 1
        self._by_name[spec.name] = index
        return index

    def native_index(self, name: str) -> int:
        """Resolve a native name to its index (assembler hook)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise VMLoadError(f"undefined native '{name}'") from None

    def spec(self, index: int) -> NativeSpec:
        try:
            return self._specs[index]
        except IndexError:
            raise VMLoadError(f"native index {index} out of range") from None

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [s.name for s in self._specs]

"""Trace-compiling tier-up for the Sanity VM.

The interpreter's dispatch loop costs tens of host operations per guest
bytecode.  For hot code — detected by the opcode sampler that already
piggybacks on the platform-poll branch — this module compiles
straight-line bytecode regions into fused Python closures
("superinstructions"): one generated function executes the whole region,
pre-sums the region's per-instruction cycle costs, and charges the
platform once per block entry (:meth:`Platform.charge_block`) instead of
once per instruction.

Time determinism is the design constraint, not an afterthought:

* **Entry guards.**  A block runs only when it provably cannot cross an
  observable boundary: the whole region must fit before the next
  platform poll (``block.n < until_poll``), within the scheduling slice
  (``block.n <= slice_left``), within an instruction budget, and the
  operand stack must be deep enough for the region's worst-case pops.
  Anything else falls back to the reference interpreter for that entry.

* **Exact charge replay.**  ``charge_block`` either takes a noise-free
  fast path (provably equal to per-instruction charging) or replays the
  per-instruction cost computation exactly — same redraw points, same
  Bresenham fractional carry — so cycles are bit-identical either way.

* **Side exits.**  Every fault-capable instruction records its offset
  before executing; on a guest throw the generated code charges the
  exact prefix, advances the counters by the instructions actually
  retired, restores ``frame.pc`` to the interpreter's convention (one
  past the faulting instruction) and re-raises for the interpreter's
  exception dispatch.

* **Excluded opcodes.**  Calls/returns, allocation (GC), ``THROW``,
  ``NATIVE`` (I/O, time reads, covert-channel hooks) and ``HALT`` never
  appear inside a block — regions stop before them — so every observable
  interaction still happens on the interpreter's reference path.

``REPRO_NO_JIT=1`` disables the tier-up entirely; the differential
harness (``tests/test_tracejit.py``) proves cycles, ledger sums,
transmissions, log bytes and audit verdicts bit-identical with the JIT
on and off, mirroring the ``REPRO_NO_BATCH`` harness of PR 3.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING

from repro.vm.heap import GuestThrow
from repro.vm.isa import OPCODE_COST_LIST, Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.platform import Platform
    from repro.vm.program import Function, Program

#: Keep in sync with the interpreter's virtual memory map (imported
#: lazily below to avoid a hard import cycle at module load).
_WORD = 8


def jit_enabled() -> bool:
    """Whether new interpreters tier up hot regions (``REPRO_NO_JIT``)."""
    return os.environ.get("REPRO_NO_JIT", "") != "1"


#: Conditional branches and their Python condition on the popped value.
_COND_EXPR = {
    Op.IFEQ: "== 0", Op.IFNE: "!= 0", Op.IFLT: "< 0",
    Op.IFLE: "<= 0", Op.IFGT: "> 0", Op.IFGE: ">= 0",
}

#: Opcodes that end a region and are *included* in the compiled block.
_TERMINATORS = frozenset(_COND_EXPR) | {Op.GOTO}

#: Opcodes a block must never contain: observable boundaries (natives do
#: I/O / clock reads / covert hooks, HALT ends the run), frame-shape
#: changes (calls/returns), allocation (may trigger GC), and explicit
#: throws.  Regions stop *before* these; the interpreter runs them.
_UNCOMPILABLE = frozenset({
    Op.NEWARRAY, Op.NEWOBJ, Op.CALL, Op.RET, Op.RETV, Op.THROW,
    Op.NATIVE, Op.HALT,
})

#: (pops, pushes) per compilable opcode, for the static stack-depth
#: analysis that makes operand-stack underflow inside a block impossible.
_STACK_EFFECT = {
    Op.NOP: (0, 0), Op.ICONST: (0, 1), Op.FCONST: (0, 1), Op.POP: (1, 0),
    Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.LOAD: (0, 1), Op.STORE: (1, 0), Op.GLOAD: (0, 1), Op.GSTORE: (1, 0),
    Op.IADD: (2, 1), Op.ISUB: (2, 1), Op.IMUL: (2, 1), Op.IDIV: (2, 1),
    Op.IREM: (2, 1), Op.INEG: (1, 1), Op.ISHL: (2, 1), Op.ISHR: (2, 1),
    Op.IAND: (2, 1), Op.IOR: (2, 1), Op.IXOR: (2, 1),
    Op.FADD: (2, 1), Op.FSUB: (2, 1), Op.FMUL: (2, 1), Op.FDIV: (2, 1),
    Op.FNEG: (1, 1),
    Op.I2F: (1, 1), Op.F2I: (1, 1), Op.FSQRT: (1, 1), Op.FSIN: (1, 1),
    Op.FCOS: (1, 1),
    Op.CMP: (2, 1),
    Op.IFEQ: (1, 0), Op.IFNE: (1, 0), Op.IFLT: (1, 0), Op.IFLE: (1, 0),
    Op.IFGT: (1, 0), Op.IFGE: (1, 0), Op.GOTO: (0, 0),
    Op.ALOAD: (2, 1), Op.ASTORE: (3, 0), Op.ARRAYLEN: (1, 1),
    Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
}

#: In-place wrapping binary integer ops (pop b, wrap(stack[-1] OP b)).
_INT_BINOPS = {Op.IADD: "+", Op.ISUB: "-", Op.IMUL: "*",
               Op.IAND: "&", Op.IOR: "|", Op.IXOR: "^"}
#: In-place float binary ops (no wrap, no fault).
_FLOAT_BINOPS = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}

#: Minimum instructions (terminator included) worth fusing: below this
#: the entry guards cost as much as the dispatch they replace.
_MIN_BLOCK = 3


class CompiledBlock:
    """One compiled straight-line region and its tier-up counters."""

    __slots__ = ("function_index", "function_name", "head", "n",
                 "min_stack", "loops", "run", "fallback", "entries",
                 "side_exits", "instructions", "cycles")

    def __init__(self, function_index: int, function_name: str,
                 head: int, n: int, min_stack: int) -> None:
        self.function_index = function_index
        self.function_name = function_name
        self.head = head            # first pc covered
        self.n = n                  # instructions covered
        self.min_stack = min_stack  # operand-stack depth required at entry
        self.loops = False          # self-loop block (takes a budget arg)
        self.run = None             # generated closure, bound after exec
        self.fallback = None        # shorter variant for tight budgets
        self.entries = 0            # completed full-block executions
        self.side_exits = 0         # guest throws that fell back mid-block
        self.instructions = 0       # guest instructions retired in here
        self.cycles = 0             # base (noise-free) cycles charged


def compile_region(function: "Function", head: int, platform: "Platform",
                   max_len: int = 64,
                   extend_guards: bool = True) -> CompiledBlock | None:
    """Compile the region starting at ``head``, or None if not worth it.

    The expensive part — region scan, codegen, ``compile()`` — is a pure
    function of the bytecode and the platform's *constants* (base cost
    table, memory-template shape), so its artifact is cached on the
    Function and shared across runs; TDR replays the same program many
    times, and only this thin wrapper runs again: it builds a fresh
    namespace around the run's platform closures and ``exec``s the
    cached code object, so no run-local state survives in the cache.
    """
    base_list = platform.instruction_base_costs()
    inline = platform.mem_inline()
    # The probe render captures every constant the template bakes into
    # the source (page geometry, set counts, ledger slots, registerized
    # windows), making the cache key self-validating across configs.
    inline_sig = None if inline is None else tuple(inline[0]("_sig"))
    key = (head, max_len, extend_guards,
           None if base_list is None else tuple(base_list), inline_sig)
    cache = getattr(function, "_tracejit_cache", None)
    if cache is None:
        cache = {}
        function._tracejit_cache = cache
    if key in cache:
        art = cache[key]
    else:
        art = _build_region(function, head, platform, max_len,
                            extend_guards)
        cache[key] = art
    if art is None:
        return None
    block = CompiledBlock(function.index, function.name, head,
                          art["n"], art["need"])
    block.loops = art["loops"]
    ns = dict(art["consts"])
    ns["_B"] = block
    ns["_mem"] = platform.mem_access
    ns["_fetch"] = platform.fetch_access
    ns["_branch"] = platform.branch
    ns["_charge_block"] = platform.charge_block
    if inline is not None:
        ns.update(inline[1])
    exec(art["code"], ns)  # noqa: S102 - generated from a fixed template
    block.run = ns["_block"]
    return block


def _build_region(function: "Function", head: int, platform: "Platform",
                  max_len: int, extend_guards: bool) -> dict | None:
    """Scan, analyse and compile one region to a cacheable artifact.

    The region extends until (and including) the first branch, until the
    first uncompilable opcode (excluded), or until ``max_len``; regions
    shorter than ``_MIN_BLOCK`` are not worth the entry guards.

    The operand stack is *registerized*: the region's stack effect is
    known statically, so stack slots become single-assignment Python
    locals and ``frame.stack`` is only touched at block entry (popping
    the worst-case depth) and at the exits.  This is invisible to the
    guest: nothing can observe ``frame.stack`` mid-block (no polls, GC,
    natives, or checkpoints inside a block), and on a guest throw the
    exception dispatch either clears the frame's stack or discards the
    frame, so the mid-block stack contents were never live.
    """
    from repro.vm.interpreter import CODE_BASE, CODE_STRIDE, GLOBALS_BASE

    ops = function.ops
    args = function.args
    length = len(ops)

    # Superblock scan: the region is the contiguous pc range from
    # ``head`` extended *through* forward conditional branches (each
    # becomes an in-block guard with an early exit) until a GOTO, a
    # backward conditional (a loop back edge), an uncompilable opcode
    # (excluded) or ``max_len``.  Contiguity is what keeps the side-exit
    # pc arithmetic (``head + offset + 1``) valid.
    goto_value = int(Op.GOTO)
    picked: list[int] = []          # pcs included in the region
    terminator_pc: int | None = None
    pc = head
    while pc < length and len(picked) < max_len:
        op = ops[pc]
        if op in _UNCOMPILABLE:
            break
        picked.append(pc)
        if op == goto_value:
            terminator_pc = pc
            break
        if op in _COND_EXPR:
            if not extend_guards or args[pc] <= pc:
                terminator_pc = pc
                break
            pc += 1           # forward conditional: in-block guard
            continue
        pc += 1
    n = len(picked)
    if n < _MIN_BLOCK:
        return None

    # Static stack analysis: the depth required at entry so no pop can
    # ever underflow, mirroring each op's pops/pushes.
    depth = 0
    need = 0
    for pc in picked:
        pops, pushes = _STACK_EFFECT[Op(ops[pc])]
        need = max(need, pops - depth)
        depth += pushes - pops

    # Pre-summed charging data.  ``classes`` drive the generic per-
    # instruction replay, ``bases`` the batched exact loop; ``total`` is
    # the noise-free base sum the fast path charges in one add.  Base
    # costs come from the platform so the block's numbers match whatever
    # cost table the run uses.
    classes = tuple(OPCODE_COST_LIST[ops[pc]] for pc in picked)
    base_list = platform.instruction_base_costs()
    if base_list is not None:
        bases = tuple(base_list[c] for c in classes)
    else:
        bases = (0,) * n
    total = sum(bases)
    #: fault offset -> (class prefix, base prefix, base prefix sum)
    prefix: dict[int, tuple] = {}

    # Everything the generated code needs that is *not* per-run state:
    # run-local closures (_mem/_fetch/_branch/_charge_block), the
    # memory-template objects and the _B counter block are bound by
    # compile_region when it instantiates the cached artifact.
    consts = {
        "_GT": GuestThrow,
        "_sqrt": math.sqrt, "_sin": math.sin, "_cos": math.cos,
        "_CLS": classes, "_BAS": bases, "_TOT": total,
        "_PFX": prefix,
        "_M": (1 << 64) - 1, "_S": 1 << 63, "_W": 1 << 64,
    }

    # Platforms may provide a source template for the memory path, in
    # which case every data access and fetch is expanded inline instead
    # of calling the mem_access closure once per access.
    inline = platform.mem_inline()
    if inline is not None:
        render_mem = inline[0]

    body: list[str] = []
    #: Compile-time model of the operand stack: entry slots ``_e*`` then
    #: single-assignment temporaries ``_t*``.  Aliasing (DUP) and
    #: reordering (SWAP) are free — they only shuffle names.
    vstack = [f"_e{i}" for i in range(need)]
    temp_count = 0
    uses_locals = uses_globals = uses_heap = False
    has_faults = False
    cond_value: str | None = None
    code_window = CODE_BASE + function.index * CODE_STRIDE

    def emit_mem(expr) -> None:
        if inline is not None:
            body.extend(render_mem(str(expr)))
        else:
            body.append(f"_mem({expr})")

    def fetch_lines(addr: int, ind: str = "") -> list[str]:
        if inline is not None:
            return [ind + line for line in render_mem(str(addr))]
        return [f"{ind}_fetch({addr})"]

    def vpop() -> str:
        return vstack.pop()

    def vpush() -> str:
        nonlocal temp_count
        name = f"_t{temp_count}"
        temp_count += 1
        vstack.append(name)
        return name

    def wrap_push(expr: str) -> None:
        body.append(f"_v = ({expr}) & _M")
        body.append(f"{vpush()} = _v - _W if _v & _S else _v")

    for k, pc in enumerate(picked):
        op = Op(ops[pc])
        arg = args[pc]

        def fault_site() -> None:
            nonlocal has_faults
            has_faults = True
            prefix[k] = (classes[:k + 1], bases[:k + 1],
                         sum(bases[:k + 1]))
            body.append(f"_i = {k}")

        if pc == terminator_pc:
            if op is not Op.GOTO:
                cond_value = vpop()
            break  # terminator semantics live in the epilogue
        if op in _COND_EXPR:
            # Mid-region guard: the taken path leaves the block early
            # with the operand stack written back, the instruction-
            # prefix charged, the counters advanced over the k+1
            # retired instructions, and the branch target fetched —
            # byte-for-byte what the interpreter would have done.
            cond = vpop()
            gsite = function.index * CODE_STRIDE + pc
            gtarget = arg
            pfx_total = sum(bases[:k + 1])
            consts[f"_GC{k}"] = classes[:k + 1]
            consts[f"_GB{k}"] = bases[:k + 1]
            body.append(f"_tk = {cond} {_COND_EXPR[op]}")
            body.append(f"_branch({gsite}, _tk)")
            body.append("if _tk:")
            if len(vstack) == 1:
                body.append(f"    _s.append({vstack[0]})")
            elif vstack:
                body.append(f"    _s.extend(({', '.join(vstack)}))")
            body.append(f"    _charge_block(_GC{k}, _GB{k}, {pfx_total})")
            body.append(f"    vm.instruction_count += {k + 1}")
            body.append(f"    thread.executed += {k + 1}")
            body.append("    _B.side_exits += 1")
            body.append(f"    _B.instructions += {k + 1}")
            body.append(f"    _B.cycles += {pfx_total}")
            body.append(f"    frame.pc = {gtarget}")
            body += fetch_lines(code_window + gtarget * 4, "    ")
            body.append("    return")
            continue
        if op is Op.LOAD:
            uses_locals = True
            emit_mem(f"_base + {arg * _WORD}")
            body.append(f"{vpush()} = _L[{arg}]")
        elif op is Op.STORE:
            uses_locals = True
            emit_mem(f"_base + {arg * _WORD}")
            body.append(f"_L[{arg}] = {vpop()}")
        elif op is Op.ICONST or op is Op.FCONST:
            # The constant itself becomes the stack slot: every vstack
            # name is single-assignment, so aliasing it is safe and the
            # value needs no repr round-trip (it rides the namespace).
            name = f"_K{k}"
            consts[name] = arg
            vstack.append(name)
        elif op in _INT_BINOPS:
            b = vpop()
            a = vpop()
            wrap_push(f"{a} {_INT_BINOPS[op]} {b}")
        elif op is Op.CMP:
            b = vpop()
            a = vpop()
            body.append(f"{vpush()} = ({a} > {b}) - ({a} < {b})")
        elif op is Op.ALOAD:
            uses_heap = True
            fault_site()
            idx = vpop()
            ref = vpop()
            body.append(f"_o = _hget({ref})")
            body.append("_d = _o.data")
            body.append(f"if {idx} < 0 or {idx} >= len(_d):")
            body.append("    raise _GT(-2)")
            emit_mem(f"_o.vaddr + 16 + {idx} * {_WORD}")
            body.append(f"{vpush()} = _d[{idx}]")
        elif op is Op.ASTORE:
            uses_heap = True
            fault_site()
            value = vpop()
            idx = vpop()
            ref = vpop()
            body.append(f"_o = _hget({ref})")
            body.append("_d = _o.data")
            body.append(f"if {idx} < 0 or {idx} >= len(_d):")
            body.append("    raise _GT(-2)")
            emit_mem(f"_o.vaddr + 16 + {idx} * {_WORD}")
            body.append(f"_d[{idx}] = {value}")
        elif op is Op.ARRAYLEN:
            uses_heap = True
            fault_site()
            ref = vpop()
            body.append(f"{vpush()} = len(_hget({ref}).data)")
        elif op in _FLOAT_BINOPS:
            b = vpop()
            a = vpop()
            body.append(f"{vpush()} = {a} {_FLOAT_BINOPS[op]} {b}")
        elif op is Op.FDIV:
            fault_site()
            b = vpop()
            a = vpop()
            body.append(f"if {b} == 0.0:")
            body.append("    raise _GT(-1)")
            body.append(f"{vpush()} = {a} / {b}")
        elif op is Op.IDIV or op is Op.IREM:
            fault_site()
            b = vpop()
            a = vpop()
            body.append(f"if {b} == 0:")
            body.append("    raise _GT(-1)")
            body.append(f"_q = abs({a}) // abs({b})")
            body.append(f"if ({a} < 0) != ({b} < 0):")
            body.append("    _q = -_q")
            wrap_push("_q" if op is Op.IDIV else f"{a} - _q * {b}")
        elif op is Op.INEG:
            wrap_push(f"-{vpop()}")
        elif op is Op.ISHL:
            b = vpop()
            a = vpop()
            wrap_push(f"{a} << ({b} & 63)")
        elif op is Op.ISHR:
            b = vpop()
            a = vpop()
            body.append(f"{vpush()} = {a} >> ({b} & 63)")
        elif op is Op.FNEG:
            a = vpop()
            body.append(f"{vpush()} = -{a}")
        elif op is Op.I2F:
            a = vpop()
            body.append(f"{vpush()} = float({a})")
        elif op is Op.F2I:
            wrap_push(f"int({vpop()})")
        elif op is Op.FSQRT:
            fault_site()
            a = vpop()
            body.append(f"if {a} < 0.0:")
            body.append("    raise _GT(-1)")
            body.append(f"{vpush()} = _sqrt({a})")
        elif op is Op.FSIN:
            a = vpop()
            body.append(f"{vpush()} = _sin({a})")
        elif op is Op.FCOS:
            a = vpop()
            body.append(f"{vpush()} = _cos({a})")
        elif op is Op.GLOAD:
            uses_globals = True
            emit_mem(GLOBALS_BASE + arg * _WORD)
            body.append(f"{vpush()} = _G[{arg}]")
        elif op is Op.GSTORE:
            uses_globals = True
            emit_mem(GLOBALS_BASE + arg * _WORD)
            body.append(f"_G[{arg}] = {vpop()}")
        elif op is Op.POP:
            vpop()  # the value was already computed; discarding is free
        elif op is Op.DUP:
            vstack.append(vstack[-1])
        elif op is Op.SWAP:
            vstack[-1], vstack[-2] = vstack[-2], vstack[-1]
        elif op is Op.GETFIELD:
            uses_heap = True
            fault_site()
            ref = vpop()
            body.append(f"_o = _hget({ref})")
            emit_mem(f"_o.vaddr + {16 + arg * _WORD}")
            body.append(f"{vpush()} = _o.data[{arg}]")
        elif op is Op.PUTFIELD:
            uses_heap = True
            fault_site()
            value = vpop()
            ref = vpop()
            body.append(f"_o = _hget({ref})")
            emit_mem(f"_o.vaddr + {16 + arg * _WORD}")
            body.append(f"_o.data[{arg}] = {value}")
        elif op is Op.NOP:
            pass
        else:  # pragma: no cover - every compilable op handled above
            return None

    # Self-loop blocks: a terminator that branches back to this block's
    # own head with a balanced stack (exactly as many surviving slots as
    # entry slots) iterates *inside* the generated function — the entry
    # registers are rebound register-to-register on the back edge, so
    # the hot path pays no stack traffic and no dispatch per iteration.
    # The caller passes the iteration budget ``_r`` (how many whole
    # blocks fit before the next poll/slice/limit boundary), and every
    # iteration charges and counts exactly like a separate entry would.
    loops = (terminator_pc is not None
             and args[terminator_pc] == head
             and len(vstack) == need)

    charge_lines = ["_charge_block(_CLS, _BAS, _TOT)",
                    f"vm.instruction_count += {n}",
                    f"thread.executed += {n}",
                    "_B.entries += 1",
                    f"_B.instructions += {n}",
                    "_B.cycles += _TOT"]
    pushback = []
    if len(vstack) == 1:
        pushback.append(f"_s.append({vstack[0]})")
    elif vstack:
        pushback.append(f"_s.extend(({', '.join(vstack)}))")

    entry_names = [f"_e{i}" for i in range(need)]
    rebind = []
    if need and vstack != entry_names:
        rebind.append(f"{', '.join(entry_names)} = {', '.join(vstack)}")

    if terminator_pc is not None:
        top = Op(ops[terminator_pc])
        target = args[terminator_pc]
        fetch_addr = code_window + target * 4
        site = function.index * CODE_STRIDE + terminator_pc

    if loops:
        # while-True epilogue: charge this iteration, then either take
        # the back edge in-function (budget permitting) or break out
        # with frame.pc set for the interpreter.
        epilogue = list(charge_lines)
        if top is Op.GOTO:
            epilogue += fetch_lines(fetch_addr)
            epilogue.append("_r -= 1")
            epilogue.append("if _r > 0:")
            epilogue += [f"    {line}" for line in rebind]
            epilogue.append("    continue")
            epilogue.append(f"frame.pc = {target}")
            epilogue.append("break")
        else:
            epilogue.append(f"_tk = {cond_value} {_COND_EXPR[top]}")
            epilogue.append(f"_branch({site}, _tk)")
            epilogue.append("if _tk:")
            epilogue += fetch_lines(fetch_addr, "    ")
            epilogue.append("    _r -= 1")
            epilogue.append("    if _r > 0:")
            epilogue += [f"        {line}" for line in rebind]
            epilogue.append("        continue")
            epilogue.append(f"    frame.pc = {target}")
            epilogue.append("else:")
            epilogue.append(f"    frame.pc = {terminator_pc + 1}")
            epilogue.append("break")
    else:
        epilogue = list(pushback) + charge_lines
        if terminator_pc is None:
            end_pc = picked[-1] + 1
            epilogue.append(f"frame.pc = {end_pc}")
        elif top is Op.GOTO:
            epilogue.append(f"frame.pc = {target}")
            epilogue += fetch_lines(fetch_addr)
        else:
            epilogue.append(f"_tk = {cond_value} {_COND_EXPR[top]}")
            epilogue.append(f"_branch({site}, _tk)")
            epilogue.append("if _tk:")
            epilogue.append(f"    frame.pc = {target}")
            epilogue += fetch_lines(fetch_addr, "    ")
            epilogue.append("else:")
            epilogue.append(f"    frame.pc = {terminator_pc + 1}")

    prologue = ["_s = frame.stack"]
    if need == 1:
        prologue.append("_e0 = _s.pop()")
    elif need:
        names = ", ".join(entry_names)
        prologue.append(f"{names} = _s[-{need}:]")
        prologue.append(f"del _s[-{need}:]")
    if uses_locals:
        prologue.append("_L = frame.locals")
        prologue.append("_base = frame.base_vaddr")
    if uses_globals:
        # Fetched per entry, never captured: checkpoint restore swaps
        # vm.globals/vm.heap wholesale between runs.
        prologue.append("_G = vm.globals")
    if uses_heap:
        prologue.append("_hget = vm.heap.get")

    params = "vm, thread, frame, _r" if loops else "vm, thread, frame"
    lines = [f"def _block({params}):"]
    lines += [f"    {line}" for line in prologue]
    inner = body + epilogue if loops else body
    if has_faults:
        lines.append("    _i = 0")
        lines.append("    try:")
        if loops:
            lines.append("        while True:")
            lines += [f"            {line}" for line in inner]
        else:
            lines += [f"        {line}" for line in inner]
        lines.append("    except _GT:")
        lines.append("        _xc, _xb, _xt = _PFX[_i]")
        lines.append("        _n = _i + 1")
        lines.append("        _charge_block(_xc, _xb, _xt)")
        lines.append("        vm.instruction_count += _n")
        lines.append("        thread.executed += _n")
        lines.append("        _B.side_exits += 1")
        lines.append("        _B.instructions += _n")
        lines.append("        _B.cycles += _xt")
        lines.append(f"        frame.pc = {head} + _n")
        lines.append("        raise")
    elif loops:
        lines.append("    while True:")
        lines += [f"        {line}" for line in inner]
    else:
        lines += [f"    {line}" for line in inner]
    if loops:
        lines += [f"    {line}" for line in pushback]
    else:
        lines += [f"    {line}" for line in epilogue]
    source = "\n".join(lines)
    code = compile(source, f"<tracejit {function.name}+{head}>", "exec")
    return {"code": code, "source": source, "n": n, "need": need,
            "loops": loops, "consts": consts}


class TraceJit:
    """Per-run tier-up controller: hotness tracking + compiled blocks.

    State is strictly per ``Interpreter`` (per run): compiled closures
    capture the run's platform fast paths, and :class:`Program` objects
    are shared across runs by the analysis layer's compile cache, so
    nothing may be stashed on the program itself.
    """

    def __init__(self, program: "Program", platform: "Platform",
                 config) -> None:
        from repro.obs.sampling import OpcodeSampler

        self.program = program
        self.platform = platform
        self.hot_samples = max(1, getattr(config, "jit_hot_samples", 4))
        self.max_block = max(_MIN_BLOCK, getattr(config, "jit_max_block", 64))
        #: The tier-up's own site sampler (independent of observability's,
        #: which may be absent; fed from the same poll branch).
        self.sampler = OpcodeSampler(stride=config.poll_interval)
        #: function index -> (pc -> CompiledBlock | None) | None.  The
        #: outer list's identity is stable: the interpreter aliases it
        #: once per run() call.
        self.blocks: list[list | None] = [None] * len(program.functions)
        self._func_samples = [0] * len(program.functions)
        self._compiled = [False] * len(program.functions)
        self.compile_events = 0
        self.compiled_regions = 0

    def observe(self, function: "Function", pc: int, op: int) -> None:
        """One poll-branch sample; tiers the function up when it gets hot.

        Sampling is deterministic (poll points are fixed instruction
        counts), so compilation triggers at identical points across runs.
        """
        self.sampler.record(op, function.index, pc)
        idx = function.index
        count = self._func_samples[idx] + 1
        self._func_samples[idx] = count
        if count >= self.hot_samples and not self._compiled[idx]:
            self._compile_function(function)

    def _compile_function(self, function: "Function") -> None:
        idx = function.index
        self._compiled[idx] = True
        fn_blocks: list = [None] * len(function.ops)
        compiled = 0
        for head in function.region_heads():
            block = compile_region(function, head, self.platform,
                                   self.max_block)
            if block is not None:
                # A short (single-basic-block) variant rides along as the
                # fallback for entries late in a poll window, where the
                # full superblock no longer fits before the boundary.
                if block.n > _MIN_BLOCK:
                    short = compile_region(function, head, self.platform,
                                           self.max_block,
                                           extend_guards=False)
                    if short is not None and short.n < block.n:
                        block.fallback = short
                fn_blocks[head] = block
                compiled += 1
        if compiled:
            self.compile_events += 1
            self.compiled_regions += compiled
            self.blocks[idx] = fn_blocks

    # -- reporting ----------------------------------------------------------

    def region_stats(self) -> list[dict]:
        """Per-region tier-up stats, busiest first (deterministic order).

        A region's numbers merge its whole fallback chain: entries late
        in a poll window run the short variant, and those counters used
        to be dropped here — making ``summary()`` undercount exactly the
        tail-of-window executions.
        """
        regions = []
        for fn_blocks in self.blocks:
            if fn_blocks is None:
                continue
            for head_block in fn_blocks:
                if head_block is None:
                    continue
                entries = side_exits = instructions = cycles = 0
                block = head_block
                while block is not None:
                    entries += block.entries
                    side_exits += block.side_exits
                    instructions += block.instructions
                    cycles += block.cycles
                    block = block.fallback
                regions.append({
                    "function": head_block.function_name,
                    "head_pc": head_block.head,
                    "length": head_block.n,
                    "entries": entries,
                    "side_exits": side_exits,
                    "instructions": instructions,
                    "cycles": cycles,
                })
        regions.sort(key=lambda r: (-r["instructions"], r["function"],
                                    r["head_pc"]))
        return regions

    def summary(self) -> dict:
        """Aggregate tier-up stats for :class:`ExecutionResult`."""
        regions = self.region_stats()
        return {
            "enabled": True,
            "compile_events": self.compile_events,
            "compiled_regions": self.compiled_regions,
            "entries": sum(r["entries"] for r in regions),
            "side_exits": sum(r["side_exits"] for r in regions),
            "jit_instructions": sum(r["instructions"] for r in regions),
            "jit_cycles": sum(r["cycles"] for r in regions),
            "samples": self.sampler.samples,
            "regions": regions,
        }

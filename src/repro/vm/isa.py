"""Instruction set of the Sanity VM.

A compact stack ISA in the spirit of JVM bytecode ("it has only 202
instructions, no interrupts, and does not include legacy features", §3.1).
Ours has 52.  Every opcode maps to a :class:`~repro.hw.cpu.CostClass` so
the CPU model can charge cycles per instruction, and declares its operand
kind so the assembler can validate listings.

Integer values are 64-bit two's-complement (wrapped on every arithmetic
instruction); floats are IEEE doubles.  References are opaque handles into
the heap, with 0 as null.
"""

from __future__ import annotations

import enum

from repro.hw.cpu import CostClass


class Op(enum.IntEnum):
    """Opcodes, grouped by function."""

    # Stack / constants
    NOP = 0
    ICONST = 1      # operand: int value
    FCONST = 2      # operand: float value
    POP = 3
    DUP = 4
    SWAP = 5

    # Locals and globals
    LOAD = 6        # operand: local slot
    STORE = 7       # operand: local slot
    GLOAD = 8       # operand: global index
    GSTORE = 9      # operand: global index

    # Integer arithmetic (64-bit wrapping)
    IADD = 10
    ISUB = 11
    IMUL = 12
    IDIV = 13
    IREM = 14
    INEG = 15
    ISHL = 16
    ISHR = 17
    IAND = 18
    IOR = 19
    IXOR = 20

    # Float arithmetic
    FADD = 21
    FSUB = 22
    FMUL = 23
    FDIV = 24
    FNEG = 25

    # Conversions and math intrinsics
    I2F = 26
    F2I = 27
    FSQRT = 28
    FSIN = 29
    FCOS = 30

    # Comparison and control flow
    CMP = 31        # pops b, a; pushes sign(a - b) as int
    IFEQ = 32       # operand: target pc; pops v, branches if v == 0
    IFNE = 33
    IFLT = 34
    IFLE = 35
    IFGT = 36
    IFGE = 37
    GOTO = 38       # operand: target pc

    # Arrays
    NEWARRAY = 39   # operand: element kind ('i' or 'f'); pops length
    ALOAD = 40      # pops idx, ref; pushes element
    ASTORE = 41     # pops value, idx, ref
    ARRAYLEN = 42   # pops ref; pushes length

    # Objects (records with typed fields)
    NEWOBJ = 43     # operand: class index
    GETFIELD = 44   # operand: field offset; pops ref
    PUTFIELD = 45   # operand: field offset; pops value, ref

    # Calls
    CALL = 46       # operand: function index
    RET = 47
    RETV = 48       # pops return value

    # Exceptions
    THROW = 49      # pops an int exception code

    # Native interface
    NATIVE = 50     # operand: native index

    HALT = 51


#: Operand kind per opcode: None, "int", "float", "target", "slot",
#: "global", "kind", "class", "field", "func", "native".
OPERAND_KIND: dict[Op, str | None] = {
    Op.NOP: None, Op.ICONST: "int", Op.FCONST: "float", Op.POP: None,
    Op.DUP: None, Op.SWAP: None,
    Op.LOAD: "slot", Op.STORE: "slot", Op.GLOAD: "global", Op.GSTORE: "global",
    Op.IADD: None, Op.ISUB: None, Op.IMUL: None, Op.IDIV: None,
    Op.IREM: None, Op.INEG: None, Op.ISHL: None, Op.ISHR: None,
    Op.IAND: None, Op.IOR: None, Op.IXOR: None,
    Op.FADD: None, Op.FSUB: None, Op.FMUL: None, Op.FDIV: None,
    Op.FNEG: None,
    Op.I2F: None, Op.F2I: None, Op.FSQRT: None, Op.FSIN: None, Op.FCOS: None,
    Op.CMP: None,
    Op.IFEQ: "target", Op.IFNE: "target", Op.IFLT: "target",
    Op.IFLE: "target", Op.IFGT: "target", Op.IFGE: "target",
    Op.GOTO: "target",
    Op.NEWARRAY: "kind", Op.ALOAD: None, Op.ASTORE: None, Op.ARRAYLEN: None,
    Op.NEWOBJ: "class", Op.GETFIELD: "field", Op.PUTFIELD: "field",
    Op.CALL: "func", Op.RET: None, Op.RETV: None,
    Op.THROW: None,
    Op.NATIVE: "native",
    Op.HALT: None,
}

#: Cycle-cost class per opcode (fed to :class:`repro.hw.cpu.CpuModel`).
OPCODE_COST_CLASS: dict[int, CostClass] = {
    Op.NOP: CostClass.CONST,
    Op.ICONST: CostClass.CONST,
    Op.FCONST: CostClass.CONST,
    Op.POP: CostClass.MOVE,
    Op.DUP: CostClass.MOVE,
    Op.SWAP: CostClass.MOVE,
    Op.LOAD: CostClass.MEM,
    Op.STORE: CostClass.MEM,
    Op.GLOAD: CostClass.MEM,
    Op.GSTORE: CostClass.MEM,
    Op.IADD: CostClass.ALU,
    Op.ISUB: CostClass.ALU,
    Op.IMUL: CostClass.MUL,
    Op.IDIV: CostClass.DIV,
    Op.IREM: CostClass.DIV,
    Op.INEG: CostClass.ALU,
    Op.ISHL: CostClass.ALU,
    Op.ISHR: CostClass.ALU,
    Op.IAND: CostClass.ALU,
    Op.IOR: CostClass.ALU,
    Op.IXOR: CostClass.ALU,
    Op.FADD: CostClass.FPU,
    Op.FSUB: CostClass.FPU,
    Op.FMUL: CostClass.FPU,
    Op.FDIV: CostClass.FPU_DIV,
    Op.FNEG: CostClass.FPU,
    Op.I2F: CostClass.FPU,
    Op.F2I: CostClass.FPU,
    Op.FSQRT: CostClass.FPU_MATH,
    Op.FSIN: CostClass.FPU_MATH,
    Op.FCOS: CostClass.FPU_MATH,
    Op.CMP: CostClass.ALU,
    Op.IFEQ: CostClass.BRANCH,
    Op.IFNE: CostClass.BRANCH,
    Op.IFLT: CostClass.BRANCH,
    Op.IFLE: CostClass.BRANCH,
    Op.IFGT: CostClass.BRANCH,
    Op.IFGE: CostClass.BRANCH,
    Op.GOTO: CostClass.BRANCH,
    Op.NEWARRAY: CostClass.ALLOC,
    Op.ALOAD: CostClass.MEM,
    Op.ASTORE: CostClass.MEM,
    Op.ARRAYLEN: CostClass.MOVE,
    Op.NEWOBJ: CostClass.ALLOC,
    Op.GETFIELD: CostClass.MEM,
    Op.PUTFIELD: CostClass.MEM,
    Op.CALL: CostClass.CALL,
    Op.RET: CostClass.RET,
    Op.RETV: CostClass.RET,
    Op.THROW: CostClass.CALL,
    Op.NATIVE: CostClass.NATIVE,
    Op.HALT: CostClass.CONST,
}

#: Dense list form of :data:`OPCODE_COST_CLASS` for the interpreter's hot
#: loop — a list index is cheaper than a dict lookup per instruction.
OPCODE_COST_LIST: list[CostClass] = [
    OPCODE_COST_CLASS[Op(i)] for i in range(len(Op))]

#: Guest exception codes raised by the VM itself (host traps).  Guest code
#: may throw any non-negative code it likes.
EXC_DIV_BY_ZERO = -1
EXC_INDEX_OUT_OF_BOUNDS = -2
EXC_NULL_REFERENCE = -3
EXC_STACK_OVERFLOW = -4
EXC_OUT_OF_MEMORY = -5

EXCEPTION_NAMES = {
    EXC_DIV_BY_ZERO: "DivisionByZero",
    EXC_INDEX_OUT_OF_BOUNDS: "IndexOutOfBounds",
    EXC_NULL_REFERENCE: "NullReference",
    EXC_STACK_OVERFLOW: "StackOverflow",
    EXC_OUT_OF_MEMORY: "OutOfMemory",
}

_NAME_BY_CODE = {op.value: op.name for op in Op}


def opcode_name(code: int) -> str:
    """Human-readable mnemonic for an opcode value."""
    return _NAME_BY_CODE.get(code, f"OP_{code}")


_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def wrap_i64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK64
    if value & _SIGN_BIT:
        value -= 1 << 64
    return value

"""The Sanity virtual machine: a JVM-like stack bytecode VM.

Mirrors the paper's clean-slate JVM (§4.1): a small instruction set, no
interrupts of its own, a global instruction counter that identifies any
point in the execution, deterministic round-robin multithreading with a
fixed instruction budget (§3.2), dynamic memory management with a
deterministic mark-and-sweep garbage collector, and exception handling.

The VM is parameterized by a :class:`~repro.vm.platform.Platform`, which
supplies timing (cycle charging, memory hierarchy, branch prediction) and
the native interface (I/O, ``nanoTime``).  The full hardware-backed
platform lives in :mod:`repro.machine`; unit tests use the flat
:class:`~repro.vm.platform.NullPlatform`.
"""

from repro.vm.heap import Heap, HeapConfig
from repro.vm.interpreter import Interpreter, VmConfig
from repro.vm.isa import Op, OPCODE_COST_CLASS, opcode_name
from repro.vm.natives import NativeRegistry, NativeSpec
from repro.vm.platform import NullPlatform, Platform
from repro.vm.program import ClassDef, Function, Program

__all__ = [
    "ClassDef",
    "Function",
    "Heap",
    "HeapConfig",
    "Interpreter",
    "NativeRegistry",
    "NativeSpec",
    "NullPlatform",
    "Op",
    "OPCODE_COST_CLASS",
    "Platform",
    "Program",
    "VmConfig",
    "opcode_name",
]

"""The Sanity VM interpreter.

Design notes
------------

* **Global instruction counter.**  "A simple global instruction counter is
  sufficient to identify any point in the execution" (§3.2).  Every
  executed bytecode increments :attr:`Interpreter.instruction_count`; the
  record/replay layer keys all nondeterministic events on it.

* **Deterministic multithreading.**  Threads are scheduled round-robin and
  each runnable thread is given a fixed budget of instructions before it is
  forced to yield (§3.2), so context switches need no log entries.

* **Timing.**  Every instruction charges its cost class to the platform;
  memory-touching instructions additionally charge a data access at a
  stable virtual address, and control transfers charge an instruction
  fetch.  Operand-stack slots are modelled as registers (a real interpreter
  keeps the hot end of the stack in registers), so only locals, globals,
  arrays, and fields generate data traffic.

* **The dispatch loop is one long function.**  This is deliberate: a
  per-opcode method table costs an extra call per executed instruction,
  which at interpreter-in-an-interpreter depth dominates the simulation's
  host runtime.  The ladder is ordered by measured opcode frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GuestError, VMRuntimeError
from repro.hw.cpu import CostClass
from repro.vm.heap import (GuestThrow, Heap, HeapConfig, KIND_FLOAT_ARRAY,
                           KIND_INT_ARRAY)
from repro.vm.isa import (EXC_DIV_BY_ZERO, EXC_INDEX_OUT_OF_BOUNDS,
                          EXC_STACK_OVERFLOW, EXCEPTION_NAMES,
                          OPCODE_COST_CLASS, OPCODE_COST_LIST, Op,
                          wrap_i64)
from repro.vm.platform import Platform
from repro.vm.program import Function, Program

#: Virtual memory map (stable across executions — §3.6 needs the same
#: virtual layout during play and replay; the *physical* backing is the
#: FrameAllocator's concern).
CODE_BASE = 0x0010_0000
CODE_STRIDE = 0x4000          # per-function code window
GLOBALS_BASE = 0x0020_0000
STACK_BASE = 0x0100_0000
THREAD_STACK_STRIDE = 0x10_0000
FRAME_STRIDE_SLOTS = 64       # max locals per frame, for address layout
_WORD = 8

MAX_CALL_DEPTH = 256

#: Opcode values as plain ints in enum order, unpacked into run()'s
#: locals in one assignment: an ``op == Op.X`` comparison in the ladder
#: costs an enum attribute load (two dict lookups) per test, a local int
#: is immediate.
_OP_VALUES = tuple(int(op) for op in Op)


@dataclass
class VmConfig:
    """Interpreter scheduling parameters."""

    thread_quantum: int = 4096      # instructions per scheduling slice
    poll_interval: int = 256        # instructions between platform polls
    context_switch_cost: CostClass = CostClass.SYNC
    heap: HeapConfig | None = None
    #: Trace-compiling tier-up (:mod:`repro.vm.tracejit`).  ``None``
    #: defers to the ``REPRO_NO_JIT`` environment knob; the compiled
    #: path is bit-identical to the reference interpreter either way.
    jit: bool | None = None
    jit_hot_samples: int = 4        # poll samples before a function tiers up
    jit_max_block: int = 64         # instructions per compiled region


class Frame:
    """One activation record."""

    __slots__ = ("function", "pc", "locals", "stack", "base_vaddr")

    def __init__(self, function: Function, base_vaddr: int) -> None:
        self.function = function
        self.pc = 0
        self.locals = [0] * function.num_locals
        self.stack: list = []
        self.base_vaddr = base_vaddr


class ThreadState:
    """One guest thread: a stack of frames."""

    __slots__ = ("thread_id", "frames", "alive", "executed")

    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self.frames: list[Frame] = []
        self.alive = True
        self.executed = 0

    def frame_base(self, depth: int) -> int:
        return (STACK_BASE + self.thread_id * THREAD_STACK_STRIDE
                + depth * FRAME_STRIDE_SLOTS * _WORD)


class Interpreter:
    """Executes a :class:`Program` against a :class:`Platform`."""

    def __init__(self, program: Program, platform: Platform,
                 config: VmConfig | None = None) -> None:
        self.program = program
        self.platform = platform
        self.config = config or VmConfig()
        self.heap = Heap(self.config.heap)
        self.globals: list = [0] * program.num_globals
        self.instruction_count = 0
        self.halted = False
        #: Optional :class:`repro.obs.sampling.OpcodeSampler`; when set,
        #: the run loop records the opcode at every platform-poll point.
        self.sampler = None
        #: Optional :class:`repro.obs.profiler.CycleProfiler`; when set,
        #: the run loop reconstructs the guest stack on the poll branch
        #: and at compiled-block boundaries (both strided).
        self.profiler = None
        #: Trace-compiling tier-up state (None = pure interpreter).
        #: Strictly per-run: compiled blocks capture this run's platform
        #: fast paths, and Program objects are shared across runs.
        self.jit = None
        jit_on = self.config.jit
        if jit_on is None:
            from repro.vm.tracejit import jit_enabled
            jit_on = jit_enabled()
        if jit_on:
            from repro.vm.tracejit import TraceJit
            self.jit = TraceJit(program, self.platform, self.config)
        self.threads: list[ThreadState] = []
        self._next_thread_id = 0
        self._current_index = 0
        self.spawn_thread(program.entry_function, [])

    # -- thread management ---------------------------------------------------

    def spawn_thread(self, function: Function, args: list) -> int:
        """Start a new guest thread running ``function(*args)``."""
        if len(args) != function.num_params:
            raise VMRuntimeError(
                f"thread entry '{function.name}' expects "
                f"{function.num_params} args, got {len(args)}")
        thread = ThreadState(self._next_thread_id)
        self._next_thread_id += 1
        frame = Frame(function, thread.frame_base(0))
        frame.locals[:len(args)] = args
        thread.frames.append(frame)
        self.threads.append(thread)
        return thread.thread_id

    @property
    def current_thread(self) -> ThreadState:
        return self.threads[self._current_index]

    @property
    def live_threads(self) -> int:
        return sum(1 for t in self.threads if t.alive)

    def _rotate(self) -> bool:
        """Advance to the next runnable thread; False if none remain."""
        for _ in range(len(self.threads)):
            self._current_index = (self._current_index + 1) % len(self.threads)
            if self.threads[self._current_index].alive:
                return True
        return False

    # -- GC -------------------------------------------------------------------

    def _gc_roots(self) -> list[int]:
        roots = [v for v in self.globals if isinstance(v, int)]
        for thread in self.threads:
            if not thread.alive:
                continue
            for frame in thread.frames:
                roots.extend(v for v in frame.locals if isinstance(v, int))
                roots.extend(v for v in frame.stack if isinstance(v, int))
        return roots

    def _maybe_gc(self, gc_wanted: bool) -> None:
        if gc_wanted:
            cost = self.heap.collect(self._gc_roots())
            self.platform.charge_cycles(cost, "gc")

    # -- exception dispatch ----------------------------------------------------

    def _dispatch_exception(self, thread: ThreadState, code: int) -> None:
        """Unwind ``thread`` until a handler accepts ``code``."""
        while thread.frames:
            frame = thread.frames[-1]
            # frame.pc was already advanced past the faulting instruction
            # (or past the CALL, for outer frames), so the handler lookup
            # uses pc - 1: the pc of the instruction that raised.
            handler = frame.function.find_handler(max(0, frame.pc - 1))
            if handler is not None:
                frame.stack.clear()
                frame.stack.append(code)
                frame.pc = handler.handler_pc
                self.platform.fetch_access(
                    CODE_BASE + frame.function.index * CODE_STRIDE
                    + handler.handler_pc * 4)
                return
            thread.frames.pop()
        thread.alive = False
        name = EXCEPTION_NAMES.get(code, str(code))
        raise GuestError(name, f"in thread {thread.thread_id}")

    # -- main loop --------------------------------------------------------------

    def run(self, max_instructions: int | None = None) -> int:
        """Run until the program halts; returns instructions executed.

        Raises :class:`GuestError` on an uncaught guest exception and
        :class:`VMRuntimeError` on host-level faults (call-depth overflow
        is converted into a guest StackOverflow first).
        """
        # Local aliases shave attribute lookups off the hot path: the
        # platform fast paths, the program tables, the instruction
        # counter (mirrored in ``icount``, synced back at every boundary
        # a native or observer could read it), and every opcode constant
        # the ladder compares against (one tuple unpack beats an enum
        # attribute load per comparison).
        platform = self.platform
        charge = platform.charge
        mem = platform.mem_access
        fetch = platform.fetch_access
        cost_of = OPCODE_COST_LIST
        sampler = self.sampler
        profiler = self.profiler
        jit = self.jit
        jit_blocks = jit.blocks if jit is not None else None
        poll_interval = self.config.poll_interval
        quantum = self.config.thread_quantum
        switch_cost = self.config.context_switch_cost
        heap = self.heap
        globals_ = self.globals
        functions = self.program.functions
        classes = self.program.classes
        wrap = wrap_i64
        limit = max_instructions
        executed_at_entry = self.instruction_count
        icount = self.instruction_count

        (OP_NOP, OP_ICONST, OP_FCONST, OP_POP, OP_DUP, OP_SWAP, OP_LOAD,
         OP_STORE, OP_GLOAD, OP_GSTORE, OP_IADD, OP_ISUB, OP_IMUL, OP_IDIV,
         OP_IREM, OP_INEG, OP_ISHL, OP_ISHR, OP_IAND, OP_IOR, OP_IXOR,
         OP_FADD, OP_FSUB, OP_FMUL, OP_FDIV, OP_FNEG, OP_I2F, OP_F2I,
         OP_FSQRT, OP_FSIN, OP_FCOS, OP_CMP, OP_IFEQ, OP_IFNE, OP_IFLT,
         OP_IFLE, OP_IFGT, OP_IFGE, OP_GOTO, OP_NEWARRAY, OP_ALOAD,
         OP_ASTORE, OP_ARRAYLEN, OP_NEWOBJ, OP_GETFIELD, OP_PUTFIELD,
         OP_CALL, OP_RET, OP_RETV, OP_THROW, OP_NATIVE, OP_HALT) = _OP_VALUES

        if not any(t.alive for t in self.threads):
            return 0
        if not self.threads[self._current_index].alive:
            if not self._rotate():
                return 0

        thread = self.threads[self._current_index]
        slice_left = quantum
        # Instructions until the next platform poll: a countdown beats a
        # modulo on every instruction.  Poll points stay exactly at
        # instruction_count % poll_interval == 0; the countdown is
        # resynced whenever a native mutates the counter (idle polls,
        # naive-replay wait skipping).
        until_poll = poll_interval - (icount % poll_interval)

        try:
            while not self.halted:
                if not thread.frames:
                    thread.alive = False
                if not thread.alive:
                    if not self._rotate():
                        break
                    thread = self.threads[self._current_index]
                    slice_left = quantum
                    continue
                if slice_left <= 0:
                    charge(switch_cost)
                    if not self._rotate():
                        break
                    thread = self.threads[self._current_index]
                    slice_left = quantum
                    continue

                frame = thread.frames[-1]
                function = frame.function
                ops = function.ops
                args = function.args
                pc = frame.pc
                if pc >= len(ops):
                    # Fell off the end of a void function: implicit return.
                    thread.frames.pop()
                    if thread.frames:
                        continue
                    thread.alive = False
                    continue

                if jit_blocks is not None:
                    fn_blocks = jit_blocks[function.index]
                    if fn_blocks is not None:
                        block = fn_blocks[pc]
                        # Entry guards: the block must fit strictly before
                        # the next poll, within the scheduling slice and
                        # the instruction budget, and the operand stack
                        # must cover its worst-case pops — so no poll,
                        # context switch, budget stop, or stack underflow
                        # can occur mid-block.  Anything else runs on the
                        # reference interpreter path below.
                        while block is not None:
                            if block.n < until_poll \
                                    and block.n <= slice_left \
                                    and len(frame.stack) >= block.min_stack \
                                    and (limit is None
                                         or icount + block.n
                                         - executed_at_entry <= limit):
                                break
                            # Late in the poll window the superblock no
                            # longer fits; a shorter variant might.
                            block = block.fallback
                        if block is not None:
                            self.instruction_count = icount
                            try:
                                if block.loops:
                                    # Self-loop blocks iterate in-function;
                                    # the budget is how many whole blocks
                                    # fit before the next poll/slice/limit
                                    # boundary (>= 1 by the entry guards).
                                    avail = until_poll - 1
                                    if slice_left < avail:
                                        avail = slice_left
                                    if limit is not None:
                                        rem = (limit - icount
                                               + executed_at_entry)
                                        if rem < avail:
                                            avail = rem
                                    block.run(self, thread, frame,
                                              avail // block.n)
                                else:
                                    block.run(self, thread, frame)
                            except GuestThrow as exc:
                                done = self.instruction_count - icount
                                icount = self.instruction_count
                                slice_left -= done
                                until_poll -= done
                                # Side exit: profile before the unwind
                                # rewrites the stack the block ran on.
                                if profiler is not None:
                                    profiler.block_boundary(thread,
                                                            function, block)
                                self._dispatch_exception(thread, exc.code)
                            else:
                                done = self.instruction_count - icount
                                icount = self.instruction_count
                                slice_left -= done
                                until_poll -= done
                                if profiler is not None:
                                    profiler.block_boundary(thread,
                                                            function, block)
                            if limit is not None and \
                                    icount - executed_at_entry >= limit:
                                break
                            continue

                op = ops[pc]
                arg = args[pc]

                icount += 1
                thread.executed += 1
                slice_left -= 1
                until_poll -= 1
                if until_poll == 0:
                    until_poll = poll_interval
                    # The opcode sampler piggybacks on the poll stride so
                    # its disabled cost stays off the per-instruction
                    # path; the tier-up's hotness sampler rides the same
                    # branch.
                    if sampler is not None:
                        sampler.record(op, function.index, pc)
                    if jit is not None:
                        jit.observe(function, pc, op)
                    self.instruction_count = icount
                    platform.on_quantum(self)
                    icount = self.instruction_count
                    # After on_quantum the batched charges are flushed,
                    # so the ledger the profiler reads here is current;
                    # frame.pc still names the instruction being polled.
                    if profiler is not None:
                        profiler.poll(thread)
                    if self.halted:
                        break
                charge(cost_of[op])
                frame.pc = pc + 1

                try:
                    stack = frame.stack
                    if op == OP_LOAD:
                        mem(frame.base_vaddr + arg * _WORD)
                        stack.append(frame.locals[arg])
                    elif op == OP_STORE:
                        mem(frame.base_vaddr + arg * _WORD)
                        frame.locals[arg] = stack.pop()
                    elif op == OP_ICONST or op == OP_FCONST:
                        stack.append(arg)
                    elif op == OP_IADD:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] + b)
                    elif op == OP_ISUB:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] - b)
                    elif op == OP_IMUL:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] * b)
                    elif op == OP_CMP:
                        b = stack.pop()
                        a = stack.pop()
                        stack.append((a > b) - (a < b))
                    elif OP_IFEQ <= op <= OP_IFGE:
                        v = stack.pop()
                        if op == OP_IFEQ:
                            taken = v == 0
                        elif op == OP_IFNE:
                            taken = v != 0
                        elif op == OP_IFLT:
                            taken = v < 0
                        elif op == OP_IFLE:
                            taken = v <= 0
                        elif op == OP_IFGT:
                            taken = v > 0
                        else:
                            taken = v >= 0
                        site = function.index * CODE_STRIDE + pc
                        platform.branch(site, taken)
                        if taken:
                            frame.pc = arg
                            fetch(CODE_BASE + function.index * CODE_STRIDE
                                  + arg * 4)
                    elif op == OP_GOTO:
                        frame.pc = arg
                        fetch(CODE_BASE + function.index * CODE_STRIDE
                              + arg * 4)
                    elif op == OP_ALOAD:
                        idx = stack.pop()
                        obj = heap.get(stack.pop())
                        data = obj.data
                        if idx < 0 or idx >= len(data):
                            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                        mem(obj.vaddr + 16 + idx * _WORD)
                        stack.append(data[idx])
                    elif op == OP_ASTORE:
                        value = stack.pop()
                        idx = stack.pop()
                        obj = heap.get(stack.pop())
                        data = obj.data
                        if idx < 0 or idx >= len(data):
                            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                        mem(obj.vaddr + 16 + idx * _WORD)
                        data[idx] = value
                    elif op == OP_ARRAYLEN:
                        stack.append(len(heap.get(stack.pop()).data))
                    elif op == OP_FADD:
                        b = stack.pop()
                        stack[-1] = stack[-1] + b
                    elif op == OP_FSUB:
                        b = stack.pop()
                        stack[-1] = stack[-1] - b
                    elif op == OP_FMUL:
                        b = stack.pop()
                        stack[-1] = stack[-1] * b
                    elif op == OP_FDIV:
                        b = stack.pop()
                        if b == 0.0:
                            raise GuestThrow(EXC_DIV_BY_ZERO)
                        stack[-1] = stack[-1] / b
                    elif op == OP_IDIV:
                        b = stack.pop()
                        a = stack.pop()
                        if b == 0:
                            raise GuestThrow(EXC_DIV_BY_ZERO)
                        q = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            q = -q
                        stack.append(wrap(q))
                    elif op == OP_IREM:
                        b = stack.pop()
                        a = stack.pop()
                        if b == 0:
                            raise GuestThrow(EXC_DIV_BY_ZERO)
                        q = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            q = -q
                        stack.append(wrap(a - q * b))
                    elif op == OP_INEG:
                        stack[-1] = wrap(-stack[-1])
                    elif op == OP_ISHL:
                        b = stack.pop() & 63
                        stack[-1] = wrap(stack[-1] << b)
                    elif op == OP_ISHR:
                        b = stack.pop() & 63
                        stack[-1] = stack[-1] >> b
                    elif op == OP_IAND:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] & b)
                    elif op == OP_IOR:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] | b)
                    elif op == OP_IXOR:
                        b = stack.pop()
                        stack[-1] = wrap(stack[-1] ^ b)
                    elif op == OP_FNEG:
                        stack[-1] = -stack[-1]
                    elif op == OP_I2F:
                        stack[-1] = float(stack[-1])
                    elif op == OP_F2I:
                        stack[-1] = wrap(int(stack[-1]))
                    elif op == OP_FSQRT:
                        v = stack[-1]
                        if v < 0.0:
                            raise GuestThrow(EXC_DIV_BY_ZERO)
                        stack[-1] = math.sqrt(v)
                    elif op == OP_FSIN:
                        stack[-1] = math.sin(stack[-1])
                    elif op == OP_FCOS:
                        stack[-1] = math.cos(stack[-1])
                    elif op == OP_GLOAD:
                        mem(GLOBALS_BASE + arg * _WORD)
                        stack.append(globals_[arg])
                    elif op == OP_GSTORE:
                        mem(GLOBALS_BASE + arg * _WORD)
                        globals_[arg] = stack.pop()
                    elif op == OP_POP:
                        stack.pop()
                    elif op == OP_DUP:
                        stack.append(stack[-1])
                    elif op == OP_SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                    elif op == OP_NEWARRAY:
                        length = stack.pop()
                        kind = KIND_INT_ARRAY if arg == 0 \
                            else KIND_FLOAT_ARRAY
                        if length < 0:
                            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                        handle, gc_wanted = heap.new_array(kind, length)
                        stack.append(handle)
                        self._maybe_gc(gc_wanted)
                    elif op == OP_NEWOBJ:
                        class_def = classes[arg]
                        handle, gc_wanted = heap.new_object(
                            arg, class_def.size_slots)
                        stack.append(handle)
                        self._maybe_gc(gc_wanted)
                    elif op == OP_GETFIELD:
                        obj = heap.get(stack.pop())
                        mem(obj.vaddr + 16 + arg * _WORD)
                        stack.append(obj.data[arg])
                    elif op == OP_PUTFIELD:
                        value = stack.pop()
                        obj = heap.get(stack.pop())
                        mem(obj.vaddr + 16 + arg * _WORD)
                        obj.data[arg] = value
                    elif op == OP_CALL:
                        callee = functions[arg]
                        if len(thread.frames) >= MAX_CALL_DEPTH:
                            raise GuestThrow(EXC_STACK_OVERFLOW)
                        new_frame = Frame(
                            callee, thread.frame_base(len(thread.frames)))
                        for i in range(callee.num_params - 1, -1, -1):
                            new_frame.locals[i] = stack.pop()
                        thread.frames.append(new_frame)
                        fetch(CODE_BASE + callee.index * CODE_STRIDE)
                    elif op == OP_RET:
                        thread.frames.pop()
                        if thread.frames:
                            caller = thread.frames[-1]
                            fetch(CODE_BASE
                                  + caller.function.index * CODE_STRIDE
                                  + caller.pc * 4)
                        else:
                            thread.alive = False
                    elif op == OP_RETV:
                        result = stack.pop()
                        thread.frames.pop()
                        if thread.frames:
                            caller = thread.frames[-1]
                            caller.stack.append(result)
                            fetch(CODE_BASE
                                  + caller.function.index * CODE_STRIDE
                                  + caller.pc * 4)
                        else:
                            thread.alive = False
                    elif op == OP_THROW:
                        raise GuestThrow(stack.pop())
                    elif op == OP_NATIVE:
                        # Natives observe (and may advance) the counter:
                        # idle poll iterations, wait skipping.  Publish it
                        # around the call and resync the poll countdown to
                        # the modulo invariant.
                        self.instruction_count = icount
                        try:
                            platform.native_call(arg, self)
                        finally:
                            icount = self.instruction_count
                        until_poll = poll_interval - (icount % poll_interval)
                    elif op == OP_HALT:
                        self.halted = True
                    elif op == OP_NOP:
                        pass
                    else:  # pragma: no cover - exhaustive above
                        raise VMRuntimeError(f"unknown opcode {op}",
                                             pc=pc, function=function.name)
                except GuestThrow as exc:
                    self._dispatch_exception(thread, exc.code)
                    # A native may have advanced the counter before
                    # throwing.
                    until_poll = poll_interval - (icount % poll_interval)
                except IndexError:
                    raise VMRuntimeError(
                        "operand stack underflow",
                        pc=pc, function=function.name) from None

                if limit is not None and \
                        icount - executed_at_entry >= limit:
                    break
        finally:
            self.instruction_count = icount

        return self.instruction_count - executed_at_entry

    # -- helpers for natives ----------------------------------------------------

    def pop_args(self, count: int) -> list:
        """Pop ``count`` operands for a native call (in declaration order)."""
        stack = self.current_thread.frames[-1].stack
        if len(stack) < count:
            raise VMRuntimeError("native call: operand stack underflow")
        if count == 0:
            return []
        taken = stack[-count:]
        del stack[-count:]
        return taken

    def push_result(self, value) -> None:
        """Push a native call's result."""
        self.current_thread.frames[-1].stack.append(value)

"""The Sanity VM interpreter.

Design notes
------------

* **Global instruction counter.**  "A simple global instruction counter is
  sufficient to identify any point in the execution" (§3.2).  Every
  executed bytecode increments :attr:`Interpreter.instruction_count`; the
  record/replay layer keys all nondeterministic events on it.

* **Deterministic multithreading.**  Threads are scheduled round-robin and
  each runnable thread is given a fixed budget of instructions before it is
  forced to yield (§3.2), so context switches need no log entries.

* **Timing.**  Every instruction charges its cost class to the platform;
  memory-touching instructions additionally charge a data access at a
  stable virtual address, and control transfers charge an instruction
  fetch.  Operand-stack slots are modelled as registers (a real interpreter
  keeps the hot end of the stack in registers), so only locals, globals,
  arrays, and fields generate data traffic.

* **The dispatch loop is one long function.**  This is deliberate: a
  per-opcode method table costs an extra call per executed instruction,
  which at interpreter-in-an-interpreter depth dominates the simulation's
  host runtime.  The ladder is ordered by measured opcode frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GuestError, VMRuntimeError
from repro.hw.cpu import CostClass
from repro.vm.heap import (GuestThrow, Heap, HeapConfig, KIND_FLOAT_ARRAY,
                           KIND_INT_ARRAY)
from repro.vm.isa import (EXC_DIV_BY_ZERO, EXC_INDEX_OUT_OF_BOUNDS,
                          EXC_STACK_OVERFLOW, EXCEPTION_NAMES,
                          OPCODE_COST_CLASS, OPCODE_COST_LIST, Op,
                          wrap_i64)
from repro.vm.platform import Platform
from repro.vm.program import Function, Program

#: Virtual memory map (stable across executions — §3.6 needs the same
#: virtual layout during play and replay; the *physical* backing is the
#: FrameAllocator's concern).
CODE_BASE = 0x0010_0000
CODE_STRIDE = 0x4000          # per-function code window
GLOBALS_BASE = 0x0020_0000
STACK_BASE = 0x0100_0000
THREAD_STACK_STRIDE = 0x10_0000
FRAME_STRIDE_SLOTS = 64       # max locals per frame, for address layout
_WORD = 8

MAX_CALL_DEPTH = 256


@dataclass
class VmConfig:
    """Interpreter scheduling parameters."""

    thread_quantum: int = 4096      # instructions per scheduling slice
    poll_interval: int = 256        # instructions between platform polls
    context_switch_cost: CostClass = CostClass.SYNC
    heap: HeapConfig | None = None


class Frame:
    """One activation record."""

    __slots__ = ("function", "pc", "locals", "stack", "base_vaddr")

    def __init__(self, function: Function, base_vaddr: int) -> None:
        self.function = function
        self.pc = 0
        self.locals = [0] * function.num_locals
        self.stack: list = []
        self.base_vaddr = base_vaddr


class ThreadState:
    """One guest thread: a stack of frames."""

    __slots__ = ("thread_id", "frames", "alive", "executed")

    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self.frames: list[Frame] = []
        self.alive = True
        self.executed = 0

    def frame_base(self, depth: int) -> int:
        return (STACK_BASE + self.thread_id * THREAD_STACK_STRIDE
                + depth * FRAME_STRIDE_SLOTS * _WORD)


class Interpreter:
    """Executes a :class:`Program` against a :class:`Platform`."""

    def __init__(self, program: Program, platform: Platform,
                 config: VmConfig | None = None) -> None:
        self.program = program
        self.platform = platform
        self.config = config or VmConfig()
        self.heap = Heap(self.config.heap)
        self.globals: list = [0] * program.num_globals
        self.instruction_count = 0
        self.halted = False
        #: Optional :class:`repro.obs.sampling.OpcodeSampler`; when set,
        #: the run loop records the opcode at every platform-poll point.
        self.sampler = None
        self.threads: list[ThreadState] = []
        self._next_thread_id = 0
        self._current_index = 0
        self.spawn_thread(program.entry_function, [])

    # -- thread management ---------------------------------------------------

    def spawn_thread(self, function: Function, args: list) -> int:
        """Start a new guest thread running ``function(*args)``."""
        if len(args) != function.num_params:
            raise VMRuntimeError(
                f"thread entry '{function.name}' expects "
                f"{function.num_params} args, got {len(args)}")
        thread = ThreadState(self._next_thread_id)
        self._next_thread_id += 1
        frame = Frame(function, thread.frame_base(0))
        frame.locals[:len(args)] = args
        thread.frames.append(frame)
        self.threads.append(thread)
        return thread.thread_id

    @property
    def current_thread(self) -> ThreadState:
        return self.threads[self._current_index]

    @property
    def live_threads(self) -> int:
        return sum(1 for t in self.threads if t.alive)

    def _rotate(self) -> bool:
        """Advance to the next runnable thread; False if none remain."""
        for _ in range(len(self.threads)):
            self._current_index = (self._current_index + 1) % len(self.threads)
            if self.threads[self._current_index].alive:
                return True
        return False

    # -- GC -------------------------------------------------------------------

    def _gc_roots(self) -> list[int]:
        roots = [v for v in self.globals if isinstance(v, int)]
        for thread in self.threads:
            if not thread.alive:
                continue
            for frame in thread.frames:
                roots.extend(v for v in frame.locals if isinstance(v, int))
                roots.extend(v for v in frame.stack if isinstance(v, int))
        return roots

    def _maybe_gc(self, gc_wanted: bool) -> None:
        if gc_wanted:
            cost = self.heap.collect(self._gc_roots())
            self.platform.charge_cycles(cost, "gc")

    # -- exception dispatch ----------------------------------------------------

    def _dispatch_exception(self, thread: ThreadState, code: int) -> None:
        """Unwind ``thread`` until a handler accepts ``code``."""
        while thread.frames:
            frame = thread.frames[-1]
            # frame.pc was already advanced past the faulting instruction
            # (or past the CALL, for outer frames), so the handler lookup
            # uses pc - 1: the pc of the instruction that raised.
            handler = frame.function.find_handler(max(0, frame.pc - 1))
            if handler is not None:
                frame.stack.clear()
                frame.stack.append(code)
                frame.pc = handler.handler_pc
                self.platform.fetch_access(
                    CODE_BASE + frame.function.index * CODE_STRIDE
                    + handler.handler_pc * 4)
                return
            thread.frames.pop()
        thread.alive = False
        name = EXCEPTION_NAMES.get(code, str(code))
        raise GuestError(name, f"in thread {thread.thread_id}")

    # -- main loop --------------------------------------------------------------

    def run(self, max_instructions: int | None = None) -> int:
        """Run until the program halts; returns instructions executed.

        Raises :class:`GuestError` on an uncaught guest exception and
        :class:`VMRuntimeError` on host-level faults (call-depth overflow
        is converted into a guest StackOverflow first).
        """
        # Local aliases shave attribute lookups off the hot path.
        platform = self.platform
        charge = platform.charge
        mem = platform.mem_access
        fetch = platform.fetch_access
        cost_of = OPCODE_COST_LIST
        sampler = self.sampler
        poll_interval = self.config.poll_interval
        quantum = self.config.thread_quantum
        heap = self.heap
        limit = max_instructions
        executed_at_entry = self.instruction_count

        if not any(t.alive for t in self.threads):
            return 0
        if not self.threads[self._current_index].alive:
            if not self._rotate():
                return 0

        thread = self.threads[self._current_index]
        slice_left = quantum
        # Instructions until the next platform poll: a countdown beats a
        # modulo on every instruction.  Poll points stay exactly at
        # instruction_count % poll_interval == 0; the countdown is
        # resynced whenever a native mutates the counter (idle polls,
        # naive-replay wait skipping).
        until_poll = poll_interval - (self.instruction_count % poll_interval)

        while not self.halted:
            if not thread.frames:
                thread.alive = False
            if not thread.alive:
                if not self._rotate():
                    break
                thread = self.threads[self._current_index]
                slice_left = quantum
                continue
            if slice_left <= 0:
                charge(self.config.context_switch_cost)
                if not self._rotate():
                    break
                thread = self.threads[self._current_index]
                slice_left = quantum
                continue

            frame = thread.frames[-1]
            function = frame.function
            ops = function.ops
            args = function.args
            pc = frame.pc
            if pc >= len(ops):
                # Fell off the end of a void function: implicit return.
                thread.frames.pop()
                if thread.frames:
                    continue
                thread.alive = False
                continue
            op = ops[pc]
            arg = args[pc]

            self.instruction_count += 1
            thread.executed += 1
            slice_left -= 1
            until_poll -= 1
            if until_poll == 0:
                until_poll = poll_interval
                # The opcode sampler piggybacks on the poll stride so its
                # disabled cost stays off the per-instruction path.
                if sampler is not None:
                    sampler.record(op)
                platform.on_quantum(self)
                if self.halted:
                    break
            charge(cost_of[op])
            frame.pc = pc + 1

            try:
                stack = frame.stack
                if op == Op.LOAD:
                    mem(frame.base_vaddr + arg * _WORD)
                    stack.append(frame.locals[arg])
                elif op == Op.STORE:
                    mem(frame.base_vaddr + arg * _WORD)
                    frame.locals[arg] = stack.pop()
                elif op == Op.ICONST or op == Op.FCONST:
                    stack.append(arg)
                elif op == Op.IADD:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] + b)
                elif op == Op.ISUB:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] - b)
                elif op == Op.IMUL:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] * b)
                elif op == Op.CMP:
                    b = stack.pop()
                    a = stack.pop()
                    stack.append((a > b) - (a < b))
                elif Op.IFEQ <= op <= Op.IFGE:
                    v = stack.pop()
                    if op == Op.IFEQ:
                        taken = v == 0
                    elif op == Op.IFNE:
                        taken = v != 0
                    elif op == Op.IFLT:
                        taken = v < 0
                    elif op == Op.IFLE:
                        taken = v <= 0
                    elif op == Op.IFGT:
                        taken = v > 0
                    else:
                        taken = v >= 0
                    site = function.index * CODE_STRIDE + pc
                    platform.branch(site, taken)
                    if taken:
                        frame.pc = arg
                        fetch(CODE_BASE + function.index * CODE_STRIDE
                              + arg * 4)
                elif op == Op.GOTO:
                    frame.pc = arg
                    fetch(CODE_BASE + function.index * CODE_STRIDE + arg * 4)
                elif op == Op.ALOAD:
                    idx = stack.pop()
                    obj = heap.get(stack.pop())
                    data = obj.data
                    if idx < 0 or idx >= len(data):
                        raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                    mem(obj.vaddr + 16 + idx * _WORD)
                    stack.append(data[idx])
                elif op == Op.ASTORE:
                    value = stack.pop()
                    idx = stack.pop()
                    obj = heap.get(stack.pop())
                    data = obj.data
                    if idx < 0 or idx >= len(data):
                        raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                    mem(obj.vaddr + 16 + idx * _WORD)
                    data[idx] = value
                elif op == Op.ARRAYLEN:
                    stack.append(len(heap.get(stack.pop()).data))
                elif op == Op.FADD:
                    b = stack.pop()
                    stack[-1] = stack[-1] + b
                elif op == Op.FSUB:
                    b = stack.pop()
                    stack[-1] = stack[-1] - b
                elif op == Op.FMUL:
                    b = stack.pop()
                    stack[-1] = stack[-1] * b
                elif op == Op.FDIV:
                    b = stack.pop()
                    if b == 0.0:
                        raise GuestThrow(EXC_DIV_BY_ZERO)
                    stack[-1] = stack[-1] / b
                elif op == Op.IDIV:
                    b = stack.pop()
                    a = stack.pop()
                    if b == 0:
                        raise GuestThrow(EXC_DIV_BY_ZERO)
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    stack.append(wrap_i64(q))
                elif op == Op.IREM:
                    b = stack.pop()
                    a = stack.pop()
                    if b == 0:
                        raise GuestThrow(EXC_DIV_BY_ZERO)
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    stack.append(wrap_i64(a - q * b))
                elif op == Op.INEG:
                    stack[-1] = wrap_i64(-stack[-1])
                elif op == Op.ISHL:
                    b = stack.pop() & 63
                    stack[-1] = wrap_i64(stack[-1] << b)
                elif op == Op.ISHR:
                    b = stack.pop() & 63
                    stack[-1] = stack[-1] >> b
                elif op == Op.IAND:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] & b)
                elif op == Op.IOR:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] | b)
                elif op == Op.IXOR:
                    b = stack.pop()
                    stack[-1] = wrap_i64(stack[-1] ^ b)
                elif op == Op.FNEG:
                    stack[-1] = -stack[-1]
                elif op == Op.I2F:
                    stack[-1] = float(stack[-1])
                elif op == Op.F2I:
                    stack[-1] = wrap_i64(int(stack[-1]))
                elif op == Op.FSQRT:
                    v = stack[-1]
                    if v < 0.0:
                        raise GuestThrow(EXC_DIV_BY_ZERO)
                    stack[-1] = math.sqrt(v)
                elif op == Op.FSIN:
                    stack[-1] = math.sin(stack[-1])
                elif op == Op.FCOS:
                    stack[-1] = math.cos(stack[-1])
                elif op == Op.GLOAD:
                    mem(GLOBALS_BASE + arg * _WORD)
                    stack.append(self.globals[arg])
                elif op == Op.GSTORE:
                    mem(GLOBALS_BASE + arg * _WORD)
                    self.globals[arg] = stack.pop()
                elif op == Op.POP:
                    stack.pop()
                elif op == Op.DUP:
                    stack.append(stack[-1])
                elif op == Op.SWAP:
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                elif op == Op.NEWARRAY:
                    length = stack.pop()
                    kind = KIND_INT_ARRAY if arg == 0 else KIND_FLOAT_ARRAY
                    if length < 0:
                        raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
                    handle, gc_wanted = heap.new_array(kind, length)
                    stack.append(handle)
                    self._maybe_gc(gc_wanted)
                elif op == Op.NEWOBJ:
                    class_def = self.program.classes[arg]
                    handle, gc_wanted = heap.new_object(
                        arg, class_def.size_slots)
                    stack.append(handle)
                    self._maybe_gc(gc_wanted)
                elif op == Op.GETFIELD:
                    obj = heap.get(stack.pop())
                    mem(obj.vaddr + 16 + arg * _WORD)
                    stack.append(obj.data[arg])
                elif op == Op.PUTFIELD:
                    value = stack.pop()
                    obj = heap.get(stack.pop())
                    mem(obj.vaddr + 16 + arg * _WORD)
                    obj.data[arg] = value
                elif op == Op.CALL:
                    callee = self.program.functions[arg]
                    if len(thread.frames) >= MAX_CALL_DEPTH:
                        raise GuestThrow(EXC_STACK_OVERFLOW)
                    new_frame = Frame(callee,
                                      thread.frame_base(len(thread.frames)))
                    for i in range(callee.num_params - 1, -1, -1):
                        new_frame.locals[i] = stack.pop()
                    thread.frames.append(new_frame)
                    fetch(CODE_BASE + callee.index * CODE_STRIDE)
                elif op == Op.RET:
                    thread.frames.pop()
                    if thread.frames:
                        caller = thread.frames[-1]
                        fetch(CODE_BASE + caller.function.index * CODE_STRIDE
                              + caller.pc * 4)
                    else:
                        thread.alive = False
                elif op == Op.RETV:
                    result = stack.pop()
                    thread.frames.pop()
                    if thread.frames:
                        caller = thread.frames[-1]
                        caller.stack.append(result)
                        fetch(CODE_BASE + caller.function.index * CODE_STRIDE
                              + caller.pc * 4)
                    else:
                        thread.alive = False
                elif op == Op.THROW:
                    raise GuestThrow(stack.pop())
                elif op == Op.NATIVE:
                    platform.native_call(arg, self)
                    # Natives may advance the instruction counter (idle
                    # poll iterations, wait skipping) — resync the poll
                    # countdown to the modulo invariant.
                    until_poll = poll_interval - (
                        self.instruction_count % poll_interval)
                elif op == Op.HALT:
                    self.halted = True
                elif op == Op.NOP:
                    pass
                else:  # pragma: no cover - exhaustive above
                    raise VMRuntimeError(f"unknown opcode {op}",
                                         pc=pc, function=function.name)
            except GuestThrow as exc:
                self._dispatch_exception(thread, exc.code)
                # A native may have advanced the counter before throwing.
                until_poll = poll_interval - (
                    self.instruction_count % poll_interval)
            except IndexError:
                raise VMRuntimeError("operand stack underflow",
                                     pc=pc, function=function.name) from None

            if limit is not None and \
                    self.instruction_count - executed_at_entry >= limit:
                break

        return self.instruction_count - executed_at_entry

    # -- helpers for natives ----------------------------------------------------

    def pop_args(self, count: int) -> list:
        """Pop ``count`` operands for a native call (in declaration order)."""
        stack = self.current_thread.frames[-1].stack
        if len(stack) < count:
            raise VMRuntimeError("native call: operand stack underflow")
        if count == 0:
            return []
        taken = stack[-count:]
        del stack[-count:]
        return taken

    def push_result(self, value) -> None:
        """Push a native call's result."""
        self.current_thread.frames[-1].stack.append(value)

"""Guest heap with a deterministic mark-and-sweep garbage collector.

§3.6: "During execution, no memory pages are allocated or released on the
TC; the JVM performs its own memory management via garbage collection.
Garbage collection is not a source of time noise, as long as it is itself
deterministic."

Our GC is deterministic by construction: it triggers at a fixed allocated-
bytes threshold, scans roots in a fixed order, and charges a cost that is a
pure function of the number of objects scanned and bytes swept.  Heap
objects carry stable virtual addresses from a bump allocator so array and
field accesses feed the cache model with reproducible addresses; addresses
are never reused (the virtual address space is large and free), which keeps
the address stream identical whether or not a GC happened to reclaim the
handle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMRuntimeError
from repro.vm.isa import EXC_OUT_OF_MEMORY

#: Heap virtual addresses start here (see the machine memory map).
HEAP_BASE = 0x1000_0000
_WORD = 8

KIND_INT_ARRAY = 0
KIND_FLOAT_ARRAY = 1
KIND_OBJECT = 2


@dataclass(frozen=True)
class HeapConfig:
    """Allocation limits and GC cost coefficients."""

    max_heap_bytes: int = 64 * 1024 * 1024
    gc_threshold_bytes: int = 8 * 1024 * 1024
    gc_base_cycles: int = 20_000
    gc_cycles_per_live_object: int = 40
    gc_cycles_per_swept_byte: int = 1


class HeapObject:
    """One heap allocation: an array or a record."""

    __slots__ = ("kind", "data", "vaddr", "size_bytes", "class_index", "marked")

    def __init__(self, kind: int, data: list, vaddr: int,
                 size_bytes: int, class_index: int = -1) -> None:
        self.kind = kind
        self.data = data
        self.vaddr = vaddr
        self.size_bytes = size_bytes
        self.class_index = class_index
        self.marked = False


class GuestThrow(Exception):
    """Internal control-flow signal: the guest raised exception ``code``.

    The interpreter catches this and walks the exception tables; it is not
    part of the public API.
    """

    def __init__(self, code: int) -> None:
        self.code = code
        super().__init__(f"guest exception {code}")


class Heap:
    """Handle-based guest heap.

    References are positive integers indexing ``_objects``; 0 is null.
    Handles of collected objects become ``None`` entries; the allocator
    never reuses handles, so a dangling reference is detected rather than
    silently aliased.
    """

    def __init__(self, config: HeapConfig | None = None,
                 base: int = HEAP_BASE) -> None:
        self.config = config or HeapConfig()
        self._objects: list[HeapObject | None] = [None]  # index 0 = null
        # ``base`` lets the executive give each guest process its own heap
        # arena (disjoint virtual addresses, so cross-process cache
        # behaviour matches distinct physical frames).
        self._bump = base
        self.allocated_bytes = 0
        self.live_bytes = 0
        self.bytes_since_gc = 0
        self.gc_runs = 0
        self.objects_collected = 0

    # -- allocation --------------------------------------------------------

    def _allocate(self, kind: int, data: list, size_bytes: int,
                  class_index: int = -1) -> tuple[int, bool]:
        """Returns (handle, gc_wanted)."""
        if self.live_bytes + size_bytes > self.config.max_heap_bytes:
            raise GuestThrow(EXC_OUT_OF_MEMORY)
        obj = HeapObject(kind, data, self._bump, size_bytes, class_index)
        # Bump by the rounded size so every object begins on a word boundary.
        self._bump += (size_bytes + _WORD - 1) & ~(_WORD - 1)
        self._objects.append(obj)
        handle = len(self._objects) - 1
        self.allocated_bytes += size_bytes
        self.live_bytes += size_bytes
        self.bytes_since_gc += size_bytes
        gc_wanted = self.bytes_since_gc >= self.config.gc_threshold_bytes
        return handle, gc_wanted

    def new_array(self, kind: int, length: int) -> tuple[int, bool]:
        """Allocate an int or float array of ``length`` elements."""
        if length < 0:
            raise VMRuntimeError(f"negative array length {length}")
        fill = 0 if kind == KIND_INT_ARRAY else 0.0
        return self._allocate(kind, [fill] * length, 16 + length * _WORD)

    def new_object(self, class_index: int, num_fields: int) -> tuple[int, bool]:
        """Allocate a record with ``num_fields`` zeroed slots."""
        return self._allocate(KIND_OBJECT, [0] * num_fields,
                              16 + num_fields * _WORD, class_index)

    # -- access ------------------------------------------------------------

    def get(self, handle: int) -> HeapObject:
        """Dereference a handle; raises on null or dangling references."""
        if handle <= 0 or handle >= len(self._objects):
            raise GuestThrow(-3)  # EXC_NULL_REFERENCE
        obj = self._objects[handle]
        if obj is None:
            raise VMRuntimeError(
                f"dangling reference {handle} (collected object)")
        return obj

    @property
    def num_objects(self) -> int:
        return sum(1 for o in self._objects[1:] if o is not None)

    # -- garbage collection --------------------------------------------------

    def collect(self, roots: list[int]) -> int:
        """Mark-and-sweep from ``roots``; returns the deterministic cost.

        Our object graphs are flat by construction at the *reference* level
        only through record fields and array-of-ref is not a first-class
        type, but record fields may hold handles; we conservatively treat
        every integer field value that is a valid live handle as a
        reference.  (The MiniJ compiler only stores references it created,
        so conservatism costs nothing in practice and keeps the collector
        simple and deterministic.)
        """
        cfg = self.config
        # Mark.
        stack = [r for r in roots if 0 < r < len(self._objects)
                 and self._objects[r] is not None]
        scanned = 0
        while stack:
            handle = stack.pop()
            obj = self._objects[handle]
            if obj is None or obj.marked:
                continue
            obj.marked = True
            scanned += 1
            if obj.kind == KIND_OBJECT:
                for value in obj.data:
                    if (isinstance(value, int) and 0 < value
                            < len(self._objects)
                            and self._objects[value] is not None
                            and not self._objects[value].marked):
                        stack.append(value)
        # Sweep.
        swept_bytes = 0
        for idx in range(1, len(self._objects)):
            obj = self._objects[idx]
            if obj is None:
                continue
            if obj.marked:
                obj.marked = False
            else:
                swept_bytes += obj.size_bytes
                self.live_bytes -= obj.size_bytes
                self.objects_collected += 1
                self._objects[idx] = None
        self.gc_runs += 1
        self.bytes_since_gc = 0
        return (cfg.gc_base_cycles
                + cfg.gc_cycles_per_live_object * scanned
                + cfg.gc_cycles_per_swept_byte * swept_bytes)

"""Loaded program representation: functions, classes, globals.

A :class:`Program` is what the assembler (:mod:`repro.asm`) or the MiniJ
compiler (:mod:`repro.lang`) produces and what the interpreter executes.
Code is stored as two parallel lists per function (opcodes and operands),
which keeps the interpreter's dispatch loop cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VMLoadError
from repro.vm.isa import Op


@dataclass(frozen=True)
class ExceptionHandler:
    """One entry of a function's exception table.

    Covers pcs in ``[start_pc, end_pc)``; on an in-range throw, control
    transfers to ``handler_pc`` with the exception code pushed.
    """

    start_pc: int
    end_pc: int
    handler_pc: int


@dataclass
class Function:
    """One compiled function."""

    name: str
    num_params: int
    num_locals: int          # includes parameter slots
    ops: list[int] = field(default_factory=list)
    args: list = field(default_factory=list)
    handlers: list[ExceptionHandler] = field(default_factory=list)
    index: int = -1          # assigned at link time

    def __post_init__(self) -> None:
        if self.num_params < 0 or self.num_locals < self.num_params:
            raise VMLoadError(
                f"function '{self.name}': invalid slot counts "
                f"(params={self.num_params}, locals={self.num_locals})")

    def __getstate__(self) -> dict:
        # The trace compiler memoizes compiled-region artifacts (code
        # objects) on the instance; code objects cannot pickle and the
        # cache is a pure in-process accelerator, so drop it.
        state = dict(self.__dict__)
        state.pop("_tracejit_cache", None)
        return state

    @property
    def code_length(self) -> int:
        return len(self.ops)

    def find_handler(self, pc: int) -> ExceptionHandler | None:
        """First exception-table entry covering ``pc``, if any."""
        for handler in self.handlers:
            if handler.start_pc <= pc < handler.end_pc:
                return handler
        return None

    def branch_targets(self) -> set[int]:
        """All pcs this function's branches (IFxx/GOTO) can jump to."""
        branch_ops = (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT,
                      Op.IFGE, Op.GOTO)
        return {arg for op, arg in zip(self.ops, self.args)
                if op in branch_ops}

    def region_heads(self) -> list[int]:
        """Candidate entry pcs for straight-line region compilation.

        A head is any pc control can *jump* to: the function entry,
        every branch target (loop heads are backward-branch targets),
        the fall-through successor of each conditional branch, the
        return point after each CALL, and each exception handler.  Code
        between consecutive heads is only ever entered at the top, so a
        region compiler may fuse it into one superinstruction.
        """
        length = len(self.ops)
        heads = {0} | self.branch_targets()
        conditional = (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT,
                       Op.IFGE)
        for pc, op in enumerate(self.ops):
            if op in conditional or op == Op.CALL or op == Op.NATIVE:
                if pc + 1 < length:
                    heads.add(pc + 1)
        for handler in self.handlers:
            heads.add(handler.handler_pc)
        return sorted(h for h in heads if 0 <= h < length)


@dataclass
class ClassDef:
    """A record type: named fields laid out at consecutive offsets."""

    name: str
    fields: list[str]
    index: int = -1

    def field_offset(self, name: str) -> int:
        try:
            return self.fields.index(name)
        except ValueError:
            raise VMLoadError(
                f"class '{self.name}' has no field '{name}'") from None

    @property
    def size_slots(self) -> int:
        return len(self.fields)


class Program:
    """A linked program: functions + classes + globals, ready to run."""

    def __init__(self, functions: list[Function],
                 classes: list[ClassDef] | None = None,
                 global_names: list[str] | None = None,
                 entry: str = "main") -> None:
        if not functions:
            raise VMLoadError("a program needs at least one function")
        self.functions = functions
        self.classes = classes or []
        self.global_names = global_names or []
        self.entry = entry
        self._func_by_name: dict[str, Function] = {}
        for idx, function in enumerate(functions):
            if function.name in self._func_by_name:
                raise VMLoadError(f"duplicate function '{function.name}'")
            function.index = idx
            self._func_by_name[function.name] = function
        for idx, class_def in enumerate(self.classes):
            class_def.index = idx
        if entry not in self._func_by_name:
            raise VMLoadError(f"entry function '{entry}' not defined")
        if self._func_by_name[entry].num_params != 0:
            raise VMLoadError(f"entry function '{entry}' must take no "
                              "parameters")
        self._validate()

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        try:
            return self._func_by_name[name]
        except KeyError:
            raise VMLoadError(f"undefined function '{name}'") from None

    @property
    def entry_function(self) -> Function:
        return self._func_by_name[self.entry]

    @property
    def num_globals(self) -> int:
        return len(self.global_names)

    def _validate(self) -> None:
        """Static checks: branch targets, call indices, slot bounds."""
        num_funcs = len(self.functions)
        for function in self.functions:
            length = function.code_length
            if len(function.args) != length:
                raise VMLoadError(
                    f"function '{function.name}': ops/args length mismatch")
            for pc, (op, arg) in enumerate(zip(function.ops, function.args)):
                if op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT,
                          Op.IFGE, Op.GOTO):
                    if not 0 <= arg < length:
                        raise VMLoadError(
                            f"function '{function.name}' pc={pc}: branch "
                            f"target {arg} out of range")
                elif op == Op.CALL:
                    if not 0 <= arg < num_funcs:
                        raise VMLoadError(
                            f"function '{function.name}' pc={pc}: call "
                            f"index {arg} out of range")
                elif op in (Op.LOAD, Op.STORE):
                    if not 0 <= arg < function.num_locals:
                        raise VMLoadError(
                            f"function '{function.name}' pc={pc}: local "
                            f"slot {arg} out of range")
                elif op in (Op.GLOAD, Op.GSTORE):
                    if not 0 <= arg < self.num_globals:
                        raise VMLoadError(
                            f"function '{function.name}' pc={pc}: global "
                            f"{arg} out of range")
                elif op == Op.NEWOBJ:
                    if not 0 <= arg < len(self.classes):
                        raise VMLoadError(
                            f"function '{function.name}' pc={pc}: class "
                            f"{arg} out of range")
            for handler in function.handlers:
                if not (0 <= handler.start_pc <= handler.end_pc <= length
                        and 0 <= handler.handler_pc < length):
                    raise VMLoadError(
                        f"function '{function.name}': bad handler range "
                        f"{handler}")

    def total_instructions(self) -> int:
        """Static code size across functions (for reporting)."""
        return sum(f.code_length for f in self.functions)

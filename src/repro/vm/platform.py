"""The platform interface between the VM and the (simulated) hardware.

The interpreter itself is hardware-agnostic: all timing flows through a
:class:`Platform`.  The production implementation is the timed core of
:mod:`repro.machine`; :class:`NullPlatform` is a flat-cost stand-in used by
the VM unit tests and by quick functional runs where timing is irrelevant.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.hw.cpu import CostClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.interpreter import Interpreter


class Platform(abc.ABC):
    """Everything the interpreter needs from the world.

    Methods are called on the interpreter's hot path; implementations
    should be cheap and must be deterministic given their configuration
    and noise seed.
    """

    @abc.abstractmethod
    def charge(self, cost_class: CostClass) -> None:
        """Charge the cycle cost of one instruction of ``cost_class``."""

    @abc.abstractmethod
    def mem_access(self, vaddr: int) -> None:
        """Charge a data memory access at virtual address ``vaddr``."""

    @abc.abstractmethod
    def fetch_access(self, code_vaddr: int) -> None:
        """Charge an instruction fetch (on control transfers)."""

    @abc.abstractmethod
    def branch(self, branch_site: int, taken: bool) -> None:
        """Record a conditional branch outcome (charges mispredicts)."""

    @abc.abstractmethod
    def charge_cycles(self, cycles: int, source: str = "other") -> None:
        """Charge a raw cycle amount (GC, natives, padding).

        ``source`` tags the charge for the cycle-attribution ledger
        (see :mod:`repro.obs.ledger`); platforms without a ledger may
        ignore it.
        """

    def charge_block(self, cost_classes, base_costs=(),
                     base_total: int = 0) -> None:
        """Charge a compiled block's instruction stream in one call.

        The reference implementation simply replays :meth:`charge` per
        instruction, so any platform is automatically correct under the
        trace-compiling tier-up; timed platforms may install a batched
        override that charges ``base_total`` (the pre-summed noise-free
        base cost of ``cost_classes``; ``base_costs`` is the per-
        instruction base-cost tuple) in one add when no noise applies.
        """
        charge = self.charge
        for cost_class in cost_classes:
            charge(cost_class)

    def instruction_base_costs(self):
        """Dense base-cost table indexed by :class:`CostClass`, or None.

        The trace compiler uses this to pre-sum a block's cycle cost at
        compile time; ``None`` (the default) means the platform has no
        meaningful base table and block totals are charged by replaying
        ``charge`` per instruction.
        """
        return None

    def mem_inline(self):
        """Source template for inlining ``mem_access`` into trace blocks.

        Returns ``(render, namespace)`` where ``render(expr)`` yields
        source lines charging a memory access at address ``expr`` with
        state updates identical to :meth:`mem_access`, and ``namespace``
        holds the objects those lines reference.  ``None`` (the default)
        makes compiled blocks call :meth:`mem_access` per access.
        """
        return None

    @abc.abstractmethod
    def on_quantum(self, interpreter: "Interpreter") -> None:
        """Periodic hook: interrupts, preemption, bus decay, input polling."""

    @abc.abstractmethod
    def native_call(self, index: int, interpreter: "Interpreter") -> None:
        """Execute native #``index``; operands on the interpreter stack."""


class NullPlatform(Platform):
    """Flat-cost platform for functional testing.

    Counts cycles as one per instruction and ignores the memory system.
    Provides a tiny native set: ``print_int``, ``print_float``,
    ``nano_time`` (returns the cycle counter), and ``halt_check`` hooks are
    not needed here.
    """

    NATIVE_NAMES = ["print_int", "print_float", "nano_time", "abort"]

    def __init__(self) -> None:
        self.cycles = 0
        self.quantum_calls = 0
        self.printed: list = []

    def charge(self, cost_class: CostClass) -> None:
        self.cycles += 1

    def mem_access(self, vaddr: int) -> None:
        self.cycles += 1

    def fetch_access(self, code_vaddr: int) -> None:
        self.cycles += 1

    def branch(self, branch_site: int, taken: bool) -> None:
        pass

    def charge_cycles(self, cycles: int, source: str = "other") -> None:
        self.cycles += cycles

    def on_quantum(self, interpreter: "Interpreter") -> None:
        self.quantum_calls += 1

    def native_call(self, index: int, interpreter: "Interpreter") -> None:
        name = self.NATIVE_NAMES[index]
        stack = interpreter.current_thread.frames[-1].stack
        if name == "print_int":
            self.printed.append(int(stack.pop()))
        elif name == "print_float":
            self.printed.append(float(stack.pop()))
        elif name == "nano_time":
            stack.append(self.cycles)
        elif name == "abort":
            raise RuntimeError("guest abort")

    def native_index(self, name: str) -> int:
        """Resolve a native name (assembler hook)."""
        return self.NATIVE_NAMES.index(name)

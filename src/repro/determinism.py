"""Deterministic pseudo-randomness for the simulated hardware substrate.

All stochastic components in the simulator (interrupt arrivals, bus
contention, storage latency variance, ...) draw from a :class:`SplitMix64`
stream seeded explicitly by the caller.  This gives the two properties the
reproduction needs:

* **Determinism** — the same seed always yields the same noise trace, so
  experiments are exactly repeatable run-to-run (and in CI).
* **Independence** — "time noise" in the paper's sense is whatever the
  record/replay machinery does *not* capture.  We model that by seeding the
  noise stream differently for play and for replay, while everything that is
  logged is reproduced exactly.

SplitMix64 is used instead of :mod:`random` because its state is a single
64-bit integer, it is trivially forkable (:meth:`SplitMix64.fork`), and its
output is fully specified — no dependence on CPython implementation details.
"""

from __future__ import annotations

import math

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """Finalization mix of SplitMix64; also useful as a cheap hash."""
    z = (value + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_string(text: str) -> int:
    """Deterministically hash ``text`` to a 64-bit seed (FNV-1a + mix)."""
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
    return mix64(acc)


class SplitMix64:
    """A tiny, fully deterministic 64-bit PRNG (Steele et al., OOPSLA'14).

    The generator passes through to a handful of convenience distributions
    (uniform, exponential, normal) that the hardware noise models use.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        return mix64(self._state ^ _GOLDEN_GAMMA ^ 0)

    def fork(self, label: str = "") -> "SplitMix64":
        """Derive an independent child stream.

        Forking is how one experiment seed fans out to the many independent
        noise sources without the sources' draw counts interfering.
        """
        child_seed = self.next_u64()
        if label:
            child_seed ^= hash_string(label)
        return SplitMix64(child_seed)

    # -- distributions -----------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return low + (high - low) * self.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        u = self.random()
        # Guard against log(0).
        if u <= 0.0:
            u = 2.0 ** -53
        return -mean * math.log(u)

    def normal(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normally distributed float (Box-Muller, one draw per call)."""
        u1 = self.random()
        u2 = self.random()
        if u1 <= 0.0:
            u1 = 2.0 ** -53
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mu + sigma * z

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normally distributed float."""
        return math.exp(self.normal(mu, sigma))

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def sample_bits(self, count: int) -> list[int]:
        """Return ``count`` uniform bits (used for covert payloads)."""
        return [self.next_u64() & 1 for _ in range(count)]


class ZeroNoise:
    """A stand-in RNG whose every draw is the distribution's floor.

    Used by mitigation paths that *eliminate* a noise source: the component
    keeps its code path (so play and replay execute identically) but the
    stochastic contribution collapses to a constant.
    """

    def next_u64(self) -> int:
        return 0

    def fork(self, label: str = "") -> "ZeroNoise":
        return self

    def random(self) -> float:
        return 0.0

    def uniform(self, low: float, high: float) -> float:
        return low

    def randint(self, low: int, high: int) -> int:
        return low

    def exponential(self, mean: float) -> float:
        return 0.0

    def normal(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        return mu

    def lognormal(self, mu: float, sigma: float) -> float:
        return math.exp(mu)

    def choice(self, seq):
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[0]

    def shuffle(self, seq: list) -> None:
        return None

    def sample_bits(self, count: int) -> list[int]:
        return [0] * count

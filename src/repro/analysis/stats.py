"""Small, dependency-light statistics used across detectors and benches.

Everything here is deterministic and pure; numpy is avoided on these hot
paths because the inputs are short lists (per-trace IPDs) where numpy's
conversion overhead dominates.
"""

from __future__ import annotations

import math


def mean(values: list[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def variance(values: list[float]) -> float:
    """Population variance; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / len(values)


def stdev(values: list[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def spread_percent(values: list[float]) -> float:
    """(max - min) / min as a percentage — Fig 2 / Fig 6's variance metric.

    "we calculated the difference between the longest and the shortest
    execution", normalized to the fastest (§6.3).
    """
    if not values:
        raise ValueError("spread of empty data")
    lowest = min(values)
    if lowest <= 0:
        raise ValueError("spread needs positive values")
    return (max(values) - lowest) / lowest * 100.0


def cdf_points(values: list[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def ks_distance(sample_a: list[float], sample_b: list[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic."""
    if not sample_a or not sample_b:
        raise ValueError("KS distance needs non-empty samples")
    a = sorted(sample_a)
    b = sorted(sample_b)
    i = j = 0
    d = 0.0
    while i < len(a) and j < len(b):
        if a[i] < b[j]:
            i += 1
        elif b[j] < a[i]:
            j += 1
        else:
            # Advance both sides through the tied value before measuring,
            # so identical samples yield distance 0.
            value = a[i]
            while i < len(a) and a[i] == value:
                i += 1
            while j < len(b) and b[j] == value:
                j += 1
        d = max(d, abs(i / len(a) - j / len(b)))
    return d


def equiprobable_bin_edges(training: list[float], bins: int) -> list[float]:
    """Interior bin edges that make ``training`` roughly uniform.

    Used by the CCE detector: IPDs are quantized into Q equiprobable bins
    learned from legitimate traffic (Gianvecchio & Wang).
    """
    if bins < 2:
        raise ValueError("need at least two bins")
    if not training:
        raise ValueError("cannot derive bins from empty training data")
    return [percentile(training, 100.0 * k / bins) for k in range(1, bins)]


def quantize(values: list[float], edges: list[float]) -> list[int]:
    """Map values to bin indices given interior edges (ascending)."""
    symbols = []
    for value in values:
        index = 0
        while index < len(edges) and value > edges[index]:
            index += 1
        symbols.append(index)
    return symbols


def entropy_bits(symbols: list[int]) -> float:
    """Shannon entropy of a symbol sequence, in bits."""
    if not symbols:
        return 0.0
    counts: dict[int, int] = {}
    for symbol in symbols:
        counts[symbol] = counts.get(symbol, 0) + 1
    total = len(symbols)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def auc_mann_whitney(positive_scores: list[float],
                     negative_scores: list[float]) -> float:
    """Exact ROC AUC via the Mann-Whitney U statistic.

    AUC = P(score(covert) > score(legit)) + 0.5 * P(tie).
    """
    if not positive_scores or not negative_scores:
        raise ValueError("AUC needs both positive and negative scores")
    wins = 0.0
    for p in positive_scores:
        for n in negative_scores:
            if p > n:
                wins += 1.0
            elif p == n:
                wins += 0.5
    return wins / (len(positive_scores) * len(negative_scores))


def roc_points(positive_scores: list[float],
               negative_scores: list[float]) -> list[tuple[float, float]]:
    """ROC curve as (false-positive rate, true-positive rate) points.

    The threshold sweeps over every distinct score; a trace is flagged
    covert when its score exceeds the threshold.
    """
    if not positive_scores or not negative_scores:
        raise ValueError("ROC needs both positive and negative scores")
    thresholds = sorted(set(positive_scores) | set(negative_scores),
                        reverse=True)
    points = [(0.0, 0.0)]
    for threshold in thresholds:
        tpr = sum(1 for s in positive_scores if s >= threshold) / \
            len(positive_scores)
        fpr = sum(1 for s in negative_scores if s >= threshold) / \
            len(negative_scores)
        points.append((fpr, tpr))
    if points[-1] != (1.0, 1.0):
        points.append((1.0, 1.0))
    return points


def correlation(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation; 0.0 when either side is constant."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("correlation needs two equal-length samples")
    mx, my = mean(xs), mean(ys)
    sx, sy = stdev(xs), stdev(ys)
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / \
        (len(xs) * sx * sy)

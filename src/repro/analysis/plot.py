"""Terminal plotting for the reproduced figures.

The paper's figures are scatter plots (Fig 3, Fig 7), CDFs (Fig 2), and
bar/ROC charts; these helpers render their shapes as ASCII so the bench
output *shows* the result rather than only printing summary statistics.
No plotting dependency is needed or wanted — the output must live inside
pytest logs and terminals.
"""

from __future__ import annotations

from repro.errors import ReproError

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(steps - 1, max(0, int(position * (steps - 1) + 0.5)))


def ascii_scatter(series: dict[str, list[tuple[float, float]]],
                  width: int = 60, height: int = 20,
                  xlabel: str = "x", ylabel: str = "y",
                  diagonal: bool = False) -> str:
    """Scatter plot of one or more point series.

    ``diagonal=True`` draws the y=x reference line (the "perfect
    accuracy" line of Fig 3 and Fig 7).
    """
    if not series or all(not points for points in series.values()):
        raise ReproError("nothing to plot")
    if width < 10 or height < 5:
        raise ReproError("plot area too small")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    lo = min(min(xs), min(ys)) if diagonal else min(xs)
    hi = max(max(xs), max(ys)) if diagonal else max(xs)
    y_lo = lo if diagonal else min(ys)
    y_hi = hi if diagonal else max(ys)

    grid = [[" "] * width for _ in range(height)]
    if diagonal:
        for column in range(width):
            x_value = lo + (hi - lo) * column / max(1, width - 1)
            row = _scale(x_value, y_lo, y_hi, height)
            grid[height - 1 - row][column] = "."
    for index, (label, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            column = _scale(x, lo, hi, width)
            row = _scale(y, y_lo, y_hi, height)
            grid[height - 1 - row][column] = marker

    lines = [f"{ylabel} ({y_lo:.3g} .. {y_hi:.3g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} ({lo:.3g} .. {hi:.3g})")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} = {label}"
                        for i, label in enumerate(series))
    lines.append(" " + legend)
    return "\n".join(lines)


def ascii_cdf(series: dict[str, list[float]], width: int = 60,
              height: int = 16, xlabel: str = "value") -> str:
    """Empirical CDF curves for one or more samples (Fig 2's shape)."""
    if not series or all(not values for values in series.values()):
        raise ReproError("nothing to plot")
    everything = [v for values in series.values() for v in values]
    lo, hi = min(everything), max(everything)
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        ordered = sorted(values)
        for column in range(width):
            x_value = lo + (hi - lo) * column / max(1, width - 1)
            fraction = sum(1 for v in ordered if v <= x_value) / len(ordered)
            row = _scale(fraction, 0.0, 1.0, height)
            grid[height - 1 - row][column] = marker
    lines = ["fraction (0 .. 1)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} ({lo:.3g} .. {hi:.3g})")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} = {label}"
                        for i, label in enumerate(series))
    lines.append(" " + legend)
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], width: int = 50,
               unit: str = "") -> str:
    """Horizontal bar chart (Fig 6's shape)."""
    if not values:
        raise ReproError("nothing to plot")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        length = 0 if peak <= 0 else max(
            1 if value > 0 else 0, int(value / peak * width))
        lines.append(f"  {label:<{label_width}s} "
                     f"{value:>10.3f}{unit} |{'#' * length}")
    return "\n".join(lines)

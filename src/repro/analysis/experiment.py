"""Experiment harness for the detector/channel matrix (§6.6-§6.8).

Two trace sources feed the detectors:

* **VM traces** — full executions of the mini-NFS guest on the simulated
  machine (the benches use these for the TDR detector, which needs logs
  and replays);
* **Synthetic traces** — IPD sequences drawn from a statistical model
  *calibrated to the same NFS workload* (one-way WAN delay + exponential
  client think time + size-dependent service time over a cycling file set
  + East-coast jitter).  These make the large trace populations of the
  ROC experiments affordable; the model preserves the two properties the
  detectors key on: a heavy jitter tail and temporal correlation through
  the file-size cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.base import CovertChannel
from repro.channels.codec import random_bits
from repro.determinism import SplitMix64
from repro.detectors.base import Detector
from repro.detectors.roc import RocCurve, evaluate_detector
from repro.net.jitter import EAST_COAST_JITTER, JitterModel


@dataclass
class NfsTrafficModel:
    """Synthetic legit-IPD generator calibrated to the mini-NFS workload.

    The client reads files of 1..30 kB one after the other (§6.6), in
    ``chunk_kb`` pieces, so a size-s file produces ceil(s / chunk_kb)
    consecutive request/response IPDs that all share that file's service
    level: IPD = one_way + think + service(file) + jitter.  The *runs* of
    similar IPDs give legitimate traffic its temporal correlation and
    burstiness — the structure that i.i.d. mimicry channels (TRCTC,
    MBCTC) cannot reproduce and that the CCE and regularity tests key on.
    """

    one_way_ms: float = 5.0
    mean_think_ms: float = 0.3
    service_ms_per_kb: float = 0.3
    service_base_ms: float = 0.25
    chunk_kb: int = 4
    file_sizes_kb: list[int] = field(
        default_factory=lambda: list(range(1, 31)))
    jitter: JitterModel = field(default_factory=lambda: EAST_COAST_JITTER)

    def ipds(self, count: int, rng: SplitMix64) -> list[float]:
        """One trace's IPD sequence (ms).

        Files are picked uniformly from the working set per read — a trace
        is a window over a long-running session, and different sessions
        touch the files in different orders.  The multi-chunk runs within
        each file carry the temporal correlation.
        """
        out: list[float] = []
        while len(out) < count:
            size_kb = rng.choice(self.file_sizes_kb)
            service = self.service_base_ms + self.service_ms_per_kb * size_kb
            chunks = max(1, -(-size_kb // self.chunk_kb))
            for _ in range(chunks):
                if len(out) >= count:
                    break
                think = rng.exponential(self.mean_think_ms)
                out.append(self.one_way_ms + think + service
                           + self.jitter.sample_ms(rng))
        return out

    def mean_ipd_ms(self) -> float:
        """Rough expected IPD (for channel parameter selection)."""
        total_chunks = 0
        weighted_service = 0.0
        for size_kb in self.file_sizes_kb:
            chunks = max(1, -(-size_kb // self.chunk_kb))
            total_chunks += chunks
            weighted_service += chunks * (self.service_base_ms
                                          + self.service_ms_per_kb * size_kb)
        return (self.one_way_ms + self.mean_think_ms
                + weighted_service / total_chunks + self.jitter.median_ms())


def generate_legit_traces(model: NfsTrafficModel, num_traces: int,
                          packets_per_trace: int,
                          rng: SplitMix64) -> list[list[float]]:
    """A population of legitimate IPD traces."""
    return [model.ipds(packets_per_trace, rng.fork(f"legit-{i}"))
            for i in range(num_traces)]


def generate_covert_traces(channel: CovertChannel, model: NfsTrafficModel,
                           num_traces: int, packets_per_trace: int,
                           rng: SplitMix64,
                           adversary_sample_size: int = 240
                           ) -> list[list[float]]:
    """Covert IPD traces: the channel encodes a random payload over a
    natural trace from the same model.

    The adversary re-records a fresh legitimate sample before each trace
    (a compromised host sees its own traffic continuously), so
    channel-model error is per-trace noise rather than a constant offset
    the shape test could latch onto.
    """
    traces: list[list[float]] = []
    for i in range(num_traces):
        trace_rng = rng.fork(f"covert-{i}")
        sample = model.ipds(adversary_sample_size,
                            trace_rng.fork("adversary"))
        channel.fit(sample, trace_rng.fork("channel-fit"))
        natural = model.ipds(packets_per_trace, trace_rng)
        bits = random_bits(max(1, channel.bits_needed(packets_per_trace)),
                           trace_rng)
        traces.append(channel.encode(natural, bits, trace_rng))
    return traces


def vm_covert_schedule(channel: CovertChannel,
                       natural_ipds_ms: list[float], bits: list[int],
                       rng: SplitMix64,
                       frequency_hz: float = 3.4e9) -> list[int]:
    """Per-packet ``covert_delay`` schedule (cycles) for a VM execution.

    ``natural_ipds_ms`` comes from a calibration run of the same workload
    on a clean machine (the adversary profiles the host it compromised).
    The first transmission anchors the trace and carries no delay.
    """
    delays_ms = channel.delays_for(natural_ipds_ms, bits, rng)
    cycles = [0]
    cycles.extend(round(d * 1e-3 * frequency_hz) for d in delays_ms)
    return cycles


@dataclass
class MatrixCell:
    """One (channel, detector) evaluation."""

    channel: str
    detector: str
    roc: RocCurve

    @property
    def auc(self) -> float:
        return self.roc.auc


def _matrix_channel_worker(task) -> list[MatrixCell]:
    """One channel's full detector row (top-level: fleet workers pickle it).

    The per-channel RNG is forked by the parent in the serial loop order,
    so the traces each worker generates are bit-identical to the serial
    path regardless of scheduling.
    """
    (channel, detectors_factory, model, num_test, packets_per_trace,
     rng, training, held_out_legit) = task
    covert = generate_covert_traces(channel, model, num_test,
                                    packets_per_trace, rng)
    return [MatrixCell(channel.name, detector.name,
                       evaluate_detector(detector, training, covert,
                                         held_out_legit))
            for detector in detectors_factory()]


def run_detector_matrix(channels: list[CovertChannel],
                        detectors_factory,
                        model: NfsTrafficModel | None = None,
                        num_training: int = 30,
                        num_test: int = 25,
                        packets_per_trace: int = 120,
                        seed: int = 2014,
                        jobs: int | None = 1) -> list[MatrixCell]:
    """Evaluate every detector against every channel (Fig 8's grid).

    ``detectors_factory`` is a zero-argument callable returning fresh
    :class:`Detector` instances — each (channel, detector) cell trains
    from scratch so cells stay independent.  ``jobs`` parallelizes over
    channels through :func:`repro.analysis.parallel.run_fleet`; results
    are independent of the worker count because every channel derives its
    RNG from its own named fork of the root seed.
    """
    from repro.analysis.parallel import run_fleet

    model = model or NfsTrafficModel()
    root = SplitMix64(seed)
    training = generate_legit_traces(model, num_training, packets_per_trace,
                                     root.fork("training"))
    held_out_legit = generate_legit_traces(model, num_test,
                                           packets_per_trace,
                                           root.fork("held-out"))
    # Fork every channel's RNG up front, in the serial loop order, so the
    # root RNG state evolution matches the serial path exactly.
    tasks = [(channel, detectors_factory, model, num_test, packets_per_trace,
              root.fork(f"chan-{channel.name}"), training, held_out_legit)
             for channel in channels]
    rows = run_fleet(tasks, jobs=jobs, worker=_matrix_channel_worker)
    return [cell for row in rows for cell in row]


def matrix_to_figures(cells: list[MatrixCell],
                      focus_channel: str | None = None) -> dict:
    """The ``fig8`` figure payload for the run store / HTML report.

    Carries the full AUC matrix (every channel × detector cell) plus the
    complete ROC curves for one *focus* channel — the report's curve
    chart shows one channel's detectors (≤ one categorical slot each),
    while the matrix rides along for the data-table twin.  ``focus``
    defaults to the first channel in cell order.
    """
    channels: list[str] = []
    for cell in cells:
        if cell.channel not in channels:
            channels.append(cell.channel)
    focus = focus_channel or (channels[0] if channels else None)
    curves = [{"detector": cell.detector, "auc": cell.auc,
               "points": [[float(fpr), float(tpr)]
                          for fpr, tpr in cell.roc.points]}
              for cell in cells if cell.channel == focus]
    matrix = [{"channel": cell.channel, "detector": cell.detector,
               "auc": cell.auc} for cell in cells]
    return {"fig8": {"channel": focus, "curves": curves,
                     "matrix": matrix}}


def matrix_as_table(cells: list[MatrixCell]) -> str:
    """Render the matrix as the bench's text table (AUC per cell)."""
    channels = sorted({c.channel for c in cells})
    detectors = []
    for cell in cells:
        if cell.detector not in detectors:
            detectors.append(cell.detector)
    lines = ["channel     " + "".join(f"{d:>12s}" for d in detectors)]
    by_key = {(c.channel, c.detector): c.auc for c in cells}
    for channel in channels:
        row = f"{channel:<12s}"
        for detector in detectors:
            auc = by_key.get((channel, detector))
            row += f"{auc:>12.3f}" if auc is not None else f"{'-':>12s}"
        lines.append(row)
    return "\n".join(lines)

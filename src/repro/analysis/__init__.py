"""Statistics and experiment helpers used by the detectors and benches."""

from repro.analysis.parallel import (MachineSpec, default_jobs, execute_spec,
                                     run_fleet)
from repro.analysis.stats import (auc_mann_whitney, cdf_points, correlation,
                                  entropy_bits, equiprobable_bin_edges,
                                  ks_distance, mean, percentile, quantize,
                                  roc_points, spread_percent, stdev,
                                  variance)

__all__ = [
    "MachineSpec",
    "auc_mann_whitney",
    "default_jobs",
    "execute_spec",
    "run_fleet",
    "cdf_points",
    "correlation",
    "entropy_bits",
    "equiprobable_bin_edges",
    "ks_distance",
    "mean",
    "percentile",
    "quantize",
    "roc_points",
    "spread_percent",
    "stdev",
    "variance",
]

"""Seeded, order-deterministic parallel experiment fleet.

The experiment pipelines (detector matrices, the Fig 6/8 and Table 1
benches) are embarrassingly parallel at the granularity of one machine
run: every run is fully described by its seeds and configuration, and the
simulator is deterministic, so executing runs in worker processes cannot
change any result — only wall-clock time.

Two pieces make that safe:

* :class:`MachineSpec` — a frozen, picklable description of one machine
  execution (program, config, seeds, workload, covert schedule, replay
  log).  Workers rebuild the ``Machine`` from the spec; live machines —
  with their closures, ledgers, and open sessions — never cross a process
  boundary.
* :func:`run_fleet` — maps a top-level worker function over a task list
  with a ``ProcessPoolExecutor`` (``fork`` start method where available)
  and returns results **in submission order**, so callers see exactly the
  list a serial loop would have produced.  ``jobs=None`` uses
  :func:`default_jobs`; ``jobs<=1`` (or a single task) degrades to the
  plain serial loop, which keeps single-core environments and debuggers
  happy.

Determinism note: worker processes recompute everything from seeds, so
``run_fleet(specs, jobs=4)`` is bit-identical to ``jobs=1`` — there is a
regression test asserting cycles, transmissions, ledger totals, and AUCs
match between the two.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, NamedTuple, Sequence

from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.obs.snapshot import FleetObservations, ObsSnapshot

__all__ = ["MachineSpec", "ObservedExecution", "default_jobs",
           "execute_spec", "run_fleet", "run_fleet_observed"]


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the host's CPU count."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to rebuild and run one machine, picklably.

    ``program`` is a symbolic reference, resolved (and compiled, with a
    per-process cache) inside the worker:

    * ``"nfs"`` / ``"kvstore"`` — the bundled server applications;
    * ``"kernel:<name>"`` — a SciMark kernel (``sor``, ``fft``, ...);
    * ``"zero-array:<elements>"`` — the §2.4 microbenchmark;
    * ``"src:<minij source>"`` — any MiniJ program, compiled on demand.

    ``workload`` (play mode only) is ``"nfs:<seed>:<requests>"`` or
    ``"kvstore:<seed>:<requests>"``; ``log_bytes`` (replay mode only) is
    the serialized event log to reproduce.
    """

    program: str
    config: MachineConfig
    seed: int = 0
    mode: str = "play"
    workload: str | None = None
    covert_schedule: tuple[int, ...] | None = None
    log_bytes: bytes | None = None
    max_instructions: int | None = 200_000_000
    #: Attach a fresh :class:`~repro.obs.Observability` bundle inside the
    #: worker and return an :class:`ObservedExecution` instead of a bare
    #: result.  Off by default: unobserved specs pay nothing.
    observe: bool = False
    #: With ``observe``, also enable the cycle-exact stack profiler; the
    #: profile rides home on ``ExecutionResult.profile`` (plain dict, so
    #: it crosses the pool like every other result field).
    profile: bool = False


class ObservedExecution(NamedTuple):
    """A worker's result plus the picklable image of what it observed."""

    result: ExecutionResult
    snapshot: ObsSnapshot


@lru_cache(maxsize=64)
def _compiled(program: str):
    """Per-process program cache: compile each symbolic ref once."""
    from repro.apps import (build_kernel_program, build_kvstore_program,
                            build_nfs_program, compile_app,
                            zero_array_source)

    if program == "nfs":
        return build_nfs_program()
    if program == "kvstore":
        return build_kvstore_program()
    if program.startswith("kernel:"):
        return build_kernel_program(program.split(":", 1)[1])
    if program.startswith("zero-array:"):
        return compile_app(zero_array_source(int(program.split(":", 1)[1])))
    if program.startswith("src:"):
        return compile_app(program.split(":", 1)[1])
    raise ReplayError(f"unknown program spec '{program}'")


def _workload(spec: MachineSpec):
    if spec.workload is None:
        return None
    from repro.apps import build_kvstore_workload, build_nfs_workload
    from repro.determinism import SplitMix64

    kind, wseed, requests = spec.workload.split(":")
    builder = {"nfs": build_nfs_workload,
               "kvstore": build_kvstore_workload}.get(kind)
    if builder is None:
        raise ReplayError(f"unknown workload spec '{spec.workload}'")
    return builder(SplitMix64(int(wseed)), num_requests=int(requests))


def execute_spec(spec: MachineSpec) -> "ExecutionResult | ObservedExecution":
    """Run one machine described by ``spec`` (the fleet worker).

    Top-level by design: worker processes import this module and receive
    only the picklable spec, never a live machine.  With
    ``spec.observe=True`` the worker attaches a fresh observability
    bundle and ships its state home as an :class:`ObsSnapshot` — the
    collectors themselves (registry locks, clock-bound tracers, attached
    ledgers) never cross the pool.
    """
    from repro.core.log import EventLog
    from repro.core.tdr import play, replay

    obs = None
    if spec.observe:
        from repro.obs import Observability

        obs = Observability(profile=spec.profile)
    program = _compiled(spec.program)
    schedule = (list(spec.covert_schedule)
                if spec.covert_schedule is not None else None)
    if spec.mode == "play":
        result = play(program, spec.config, workload=_workload(spec),
                      seed=spec.seed, covert_schedule=schedule,
                      max_instructions=spec.max_instructions, obs=obs)
    elif spec.mode == "replay":
        if spec.log_bytes is None:
            raise ReplayError("replay spec needs log_bytes")
        log = EventLog.from_bytes(spec.log_bytes)
        result = replay(program, log, spec.config, seed=spec.seed,
                        max_instructions=spec.max_instructions, obs=obs)
    else:
        raise ReplayError(f"unknown mode '{spec.mode}'")
    if obs is None:
        return result
    return ObservedExecution(result, ObsSnapshot.capture(obs, result))


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    # fork is the fast path (no re-import, copy-on-write program cache);
    # spawn still works because every worker is a top-level callable.
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def _apply_repro_env(env: dict) -> None:
    """Pool initializer: mirror the parent's ``REPRO_*`` switches.

    The differential escape hatches (``REPRO_NO_JIT``, ``REPRO_NO_BATCH``,
    ``REPRO_JOBS``, ...) select between bit-identical implementations, so
    a worker disagreeing with its parent would silently compare a fast
    path against itself.  fork inherits the environment anyway; this
    makes the contract explicit and start-method independent, and drops
    switches the parent has since cleared.
    """
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def run_fleet(tasks: Sequence, jobs: int | None = None,
              worker: Callable = execute_spec) -> list:
    """Map ``worker`` over ``tasks``, results in submission order.

    ``worker`` must be a module-level callable and every task picklable
    (the default worker is :func:`execute_spec` over
    :class:`MachineSpec`).  With ``jobs`` absent, :func:`default_jobs`
    decides; with ``jobs<=1``, a single task, or no usable process pool,
    the loop runs serially in-process — same results either way, because
    every task is rebuilt from seeds.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(tasks)) if tasks else 1
    if jobs <= 1:
        return [worker(task) for task in tasks]
    repro_env = {key: value for key, value in os.environ.items()
                 if key.startswith("REPRO_")}
    try:
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=_pool_context(),
                                 initializer=_apply_repro_env,
                                 initargs=(repro_env,)) as pool:
            # Submission order in, submission order out: map() guarantees
            # result order matches the input iterable regardless of
            # completion order.
            return list(pool.map(worker, tasks))
    except (OSError, PermissionError):
        # Sandboxes without process-spawn rights fall back to serial.
        return [worker(task) for task in tasks]


def run_fleet_observed(specs: Sequence[MachineSpec], jobs: int | None = None
                       ) -> tuple[list[ExecutionResult], FleetObservations]:
    """Fleet execution that keeps the workers' observability.

    Every spec runs with ``observe=True`` (each worker builds its own
    bundle), and the returned :class:`FleetObservations` merges the
    per-worker snapshots **in submission order** — so the aggregate
    ledger totals and metrics counters are bit-identical whatever
    ``jobs`` is, including the serial ``jobs=1`` path, which uses the
    same snapshot-and-merge machinery.
    """
    observed = [spec if spec.observe else replace(spec, observe=True)
                for spec in specs]
    outputs = run_fleet(observed, jobs=jobs)
    fleet_obs = FleetObservations()
    results: list[ExecutionResult] = []
    for output in outputs:
        results.append(output.result)
        fleet_obs.absorb(output.snapshot)
    return results, fleet_obs

"""Time-Deterministic Replay (TDR) — reproduction of Chen et al., OSDI 2014.

``repro`` implements the paper's contribution (time-deterministic replay
and TDR-based covert-timing-channel detection) together with every
substrate it depends on, over a simulated hardware platform with an
explicit virtual timing model.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured results.

Quickstart::

    from repro import (MachineConfig, InteractiveClient, Request,
                       SplitMix64, compile_app, round_trip)

    program = compile_app('''
        void main() {
            int[] buf = new int[64];
            while (wait_packet(buf) >= 0) { send_packet(buf, 4); }
            exit();
        }
    ''')
    client = InteractiveClient([Request(b"ping")], SplitMix64(7))
    outcome = round_trip(program, MachineConfig(), workload=client)
    assert outcome.audit.is_consistent()   # replay timing == play timing

The most commonly used names are re-exported here; the subpackages hold
the full API:

* ``repro.core``      — play/replay/audit (the paper's contribution)
* ``repro.machine``   — the simulated TC/SC machine and noise scenarios
* ``repro.vm``        — the Sanity bytecode VM
* ``repro.lang``      — the MiniJ guest-language compiler
* ``repro.asm``       — assembler/disassembler
* ``repro.hw``        — caches, TLB, bus, IRQs, storage, CPU model
* ``repro.channels``  — IPCTC / TRCTC / MBCTC / Needle covert channels
* ``repro.detectors`` — shape, KS, regularity, CCE, and the TDR detector
* ``repro.apps``      — guest applications (mini-NFS, SciMark, ...)
* ``repro.net``       — packets, traces, WAN jitter
* ``repro.analysis``  — statistics and the experiment harness
* ``repro.obs``       — metrics, cycle-attribution ledger, span tracing
"""

from repro.apps import compile_app
from repro.core.audit import AuditReport, compare_traces
from repro.core.log import EventLog
from repro.core.tdr import TdrResult, play, replay, replay_naive, round_trip
from repro.determinism import SplitMix64
from repro.errors import ReproError
from repro.lang import compile_minij
from repro.machine import (ExecutionResult, InteractiveClient, Machine,
                           MachineConfig, Request, ScriptedArrivals,
                           machine_type, scenario_config)
from repro.net import PacketTrace
from repro.obs import Observability, format_attribution_table

__version__ = "1.0.0"

__all__ = [
    "AuditReport",
    "EventLog",
    "ExecutionResult",
    "InteractiveClient",
    "Machine",
    "MachineConfig",
    "Observability",
    "PacketTrace",
    "Request",
    "ReproError",
    "ScriptedArrivals",
    "SplitMix64",
    "TdrResult",
    "__version__",
    "compare_traces",
    "compile_app",
    "compile_minij",
    "format_attribution_table",
    "machine_type",
    "play",
    "replay",
    "replay_naive",
    "round_trip",
    "scenario_config",
]

"""Bit-level helpers for covert payloads."""

from __future__ import annotations

from repro.determinism import SplitMix64
from repro.errors import ChannelError


def bytes_to_bits(data: bytes) -> list[int]:
    """MSB-first bit expansion."""
    bits: list[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: list[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits`; trailing partial bytes are
    zero-padded."""
    if not all(b in (0, 1) for b in bits):
        raise ChannelError("bits must be 0/1")
    out = bytearray()
    for start in range(0, len(bits), 8):
        chunk = bits[start:start + 8]
        chunk = chunk + [0] * (8 - len(chunk))
        value = 0
        for bit in chunk:
            value = (value << 1) | bit
        out.append(value)
    return bytes(out)


def random_bits(count: int, rng: SplitMix64) -> list[int]:
    """A uniform covert payload (what an encrypted secret looks like)."""
    if count < 0:
        raise ChannelError(f"negative bit count: {count}")
    return rng.sample_bits(count)


def bit_accuracy(sent: list[int], received: list[int]) -> float:
    """Fraction of correctly received bits (over the overlap)."""
    if not sent or not received:
        return 0.0
    overlap = min(len(sent), len(received))
    correct = sum(1 for a, b in zip(sent[:overlap], received[:overlap])
                  if a == b)
    return correct / overlap

"""Traffic-replay covert timing channel (TRCTC; Cabuk, §5.1).

"TRCTC tries to confuse detectors by replaying the IPDs from legitimate
traffic (without covert channels).  It categorizes IPDs in the legitimate
traffic stream into two bins (B0 and B1 for small and large IPDs,
respectively).  It then transmits a 0 by choosing a delay from B0 and a 1
by choosing a delay from B1.  However, since the encoding scheme is
constant, TRCTC exhibits more regular patterns than a legitimate traffic
stream."

Because the replayed values come from a *finite recorded sample*, the
covert trace repeats exact values and freezes the distribution at the
recording epoch — which is what gives the KS test its partial power
(Fig 8b: KS 0.833) while first-order statistics still match (shape 0.457).
"""

from __future__ import annotations

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


class Trctc(CovertChannel):
    """Bin-replay channel over a recorded legitimate sample."""

    name = "trctc"

    def __init__(self, sample_size: int = 60,
                 recalibrate: bool = True) -> None:
        super().__init__()
        if sample_size < 4:
            raise ChannelError("TRCTC needs a sample of at least 4 IPDs")
        self.sample_size = sample_size
        self.recalibrate = recalibrate
        self._bin0: list[float] = []
        self._bin1: list[float] = []
        self._cut = 0.0

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        # The replay pool is a *bounded* recording (that is the channel's
        # defining constraint and its statistical tell: exact values
        # repeat).  A careful adversary additionally recalibrates the
        # pool's first-order statistics against everything it has seen, so
        # the flow-level mean/variance stay on target even when the pool
        # is small.
        sample = list(legit_ipds_ms[:self.sample_size])
        if len(sample) < 4:
            raise ChannelError(
                f"TRCTC sample too small: {len(sample)} IPDs")
        if self.recalibrate and len(legit_ipds_ms) > len(sample):
            from repro.analysis.stats import mean, stdev

            pool_mean, pool_std = mean(sample), stdev(sample)
            long_mean, long_std = mean(legit_ipds_ms), stdev(legit_ipds_ms)
            if pool_std > 1e-9:
                scale = long_std / pool_std
                sample = [long_mean + (v - pool_mean) * scale
                          for v in sample]
        ordered = sorted(sample)
        half = len(ordered) // 2
        self._bin0 = ordered[:half]
        self._bin1 = ordered[half:]
        self._cut = (ordered[half - 1] + ordered[half]) / 2.0

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        covert: list[float] = []
        for i, _ in enumerate(natural_ipds_ms):
            bit = bits[i % len(bits)] if bits else 0
            source = self._bin1 if bit else self._bin0
            covert.append(rng.choice(source))
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        return [1 if ipd > self._cut else 0 for ipd in observed_ipds_ms]

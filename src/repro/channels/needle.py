"""The low-rate "needle" channel (§6.8).

"the sender toggles its use of the covert channel, transmitting a single
bit once every 100 packets.  Thus, the channel does not change high-level
traffic statistics very much, which makes it very difficult to detect
with existing methods."

Encoding: every ``period``-th packet carries one bit; bit 1 adds
``delta_ms`` of extra delay, bit 0 adds nothing.  Every other packet keeps
its natural timing.  The delta sits inside the legitimate jitter tail
(p99 = 3.91 ms on the paper's path), so one delayed packet per hundred is
statistically invisible — but a per-packet TDR comparison sees exactly
``delta_ms`` of unexplained deviation (Fig 8d: Sanity AUC 1.0, all
statistical detectors fail).
"""

from __future__ import annotations

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


class NeedleChannel(CovertChannel):
    """One bit every ``period`` packets via a small extra delay."""

    name = "needle"

    def __init__(self, period: int = 100, delta_ms: float = 2.0,
                 offset: int = 0) -> None:
        super().__init__()
        if period < 1:
            raise ChannelError(f"period must be >= 1: {period}")
        if delta_ms <= 0:
            raise ChannelError(f"delta must be positive: {delta_ms}")
        self.period = period
        self.delta_ms = delta_ms
        self.offset = offset % period
        self.packets_per_bit = period
        self._baseline_ms = 0.0

    def carrier_positions(self, num_ipds: int) -> list[int]:
        """IPD indices that carry bits."""
        return list(range(self.offset, num_ipds, self.period))

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        # The receiver thresholds against typical legitimate IPDs.
        ordered = sorted(legit_ipds_ms)
        self._baseline_ms = ordered[len(ordered) // 2]

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        covert = list(natural_ipds_ms)
        for slot, index in enumerate(self.carrier_positions(len(covert))):
            bit = bits[slot % len(bits)] if bits else 0
            if bit:
                covert[index] += self.delta_ms
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        threshold = self._baseline_ms + self.delta_ms / 2.0
        return [1 if observed_ipds_ms[index] > threshold else 0
                for index in self.carrier_positions(len(observed_ipds_ms))]

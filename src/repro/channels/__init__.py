"""Covert timing channels (§5.1, §6.6-§6.8).

Four channels, three from the literature plus the paper's low-rate
"needle" channel:

============  ========================================================
Channel       Encoding
============  ========================================================
IPCTC         bit 1 → packet in a "large" slot, bit 0 → "small" slot
TRCTC         replay IPDs from two bins of recorded legitimate traffic
MBCTC         sample IPDs from a statistical model fit to legit traffic
Needle        one bit every ``period`` packets, via a small extra delay
============  ========================================================

The executive (:mod:`repro.exec`) adds a scheduler/IPC channel family,
modelled here as two more :class:`CovertChannel` implementations:

============  ========================================================
SCHEDTC       bit 1 → hold the CPU for extra whole scheduler quanta
MBOXTC        bit walks a bounded-mailbox occupancy level up/down
============  ========================================================

All channels implement :class:`~repro.channels.base.CovertChannel`:
``fit`` on the adversary's recorded legitimate IPDs, ``encode`` a bit
string into a covert IPD sequence, ``delays_for`` the equivalent
per-packet extra-delay schedule for the ``covert_delay`` VM primitive,
and ``decode`` on the receiver side.
"""

from repro.channels.base import CovertChannel
from repro.channels.codec import (bit_accuracy, bits_to_bytes,
                                  bytes_to_bits, random_bits)
from repro.channels.ipctc import Ipctc
from repro.channels.mailbox import MailboxChannel
from repro.channels.mbctc import Mbctc
from repro.channels.needle import NeedleChannel
from repro.channels.schedtc import SchedYieldChannel
from repro.channels.trctc import Trctc

__all__ = [
    "CovertChannel",
    "Ipctc",
    "MailboxChannel",
    "Mbctc",
    "NeedleChannel",
    "SchedYieldChannel",
    "Trctc",
    "bit_accuracy",
    "bits_to_bytes",
    "bytes_to_bits",
    "random_bits",
]


def all_channels() -> list[CovertChannel]:
    """Fresh instances of the four channels (paper defaults)."""
    return [Ipctc(), Trctc(), Mbctc(), NeedleChannel()]


def exec_channels() -> list[CovertChannel]:
    """Fresh instances of the scheduler/IPC channel family."""
    return [SchedYieldChannel(), MailboxChannel()]


def channel_by_name(name: str) -> CovertChannel:
    """A fresh channel instance by its :attr:`CovertChannel.name`."""
    for channel in all_channels() + exec_channels():
        if channel.name == name:
            return channel
    from repro.errors import ChannelError

    known = ", ".join(c.name for c in all_channels() + exec_channels())
    raise ChannelError(f"unknown covert channel '{name}' (known: {known})")

"""Covert-channel capacity estimation (§5.1's information-theoretic side).

The paper cites Arimoto/Blahut for channel-capacity computation; this
module provides the pieces the evaluation story needs:

* :func:`bsc_capacity` — capacity (bits per use) of a binary symmetric
  channel with the measured crossover probability;
* :func:`measure_error_rate` — empirical bit-error rate of a channel
  through a jittery WAN path;
* :func:`capacity_report` — bits-per-second throughput estimate from the
  error rate, packet rate, and bits-per-packet, quantifying §6.9's
  conclusion: forcing the adversary's deltas below the TDR noise floor
  drives capacity toward zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channels.base import CovertChannel
from repro.channels.codec import bit_accuracy, random_bits
from repro.determinism import SplitMix64
from repro.net.link import WanLink


def binary_entropy(p: float) -> float:
    """H(p) in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bsc_capacity(error_rate: float) -> float:
    """Capacity of a binary symmetric channel: 1 - H(p)."""
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error rate out of range: {error_rate}")
    return 1.0 - binary_entropy(error_rate)


def measure_error_rate(channel: CovertChannel, natural_ipds_ms: list[float],
                       link: WanLink | None, rng: SplitMix64,
                       rounds: int = 4) -> float:
    """Empirical crossover probability of ``channel`` over a WAN path.

    The channel encodes random payloads over the natural IPD sequence;
    the receiver decodes from arrival-side IPDs (after link jitter, when
    a link is given) and the mismatch fraction is the error rate.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    errors = 0.0
    total = 0
    for round_index in range(rounds):
        round_rng = rng.fork(f"round-{round_index}")
        bits = random_bits(
            max(1, channel.bits_needed(len(natural_ipds_ms))), round_rng)
        covert = channel.encode(natural_ipds_ms, bits, round_rng)
        if link is None:
            observed = covert
        else:
            send_times = [0.0]
            for ipd in covert:
                send_times.append(send_times[-1] + ipd)
            arrivals = link.transit_times_ms(send_times,
                                             round_rng.fork("wan"))
            observed = [b - a for a, b in zip(arrivals, arrivals[1:])]
        decoded = channel.decode(observed)
        accuracy = bit_accuracy(bits, decoded)
        errors += (1.0 - accuracy) * min(len(bits), len(decoded))
        total += min(len(bits), len(decoded))
    if total == 0:
        raise ValueError("channel carried no bits over this trace length")
    return errors / total


@dataclass(frozen=True)
class CapacityReport:
    """Throughput estimate for one channel configuration."""

    channel: str
    error_rate: float
    capacity_bits_per_use: float
    uses_per_second: float

    @property
    def bits_per_second(self) -> float:
        return self.capacity_bits_per_use * self.uses_per_second


def capacity_report(channel: CovertChannel,
                    natural_ipds_ms: list[float],
                    link: WanLink | None, rng: SplitMix64,
                    rounds: int = 4) -> CapacityReport:
    """Measure a channel's usable capacity through a given path."""
    error_rate = measure_error_rate(channel, natural_ipds_ms, link, rng,
                                    rounds=rounds)
    mean_ipd_ms = sum(natural_ipds_ms) / len(natural_ipds_ms)
    packets_per_second = 1000.0 / mean_ipd_ms
    uses_per_second = packets_per_second / channel.packets_per_bit
    return CapacityReport(
        channel=channel.name,
        error_rate=error_rate,
        capacity_bits_per_use=bsc_capacity(min(error_rate, 0.5)),
        uses_per_second=uses_per_second)

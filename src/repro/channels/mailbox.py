"""Mailbox-occupancy covert timing channel (MBOXTC).

The IPC-level channel of :mod:`repro.exec.scenarios` seen from the
network: the sender modulates how many messages it keeps queued in a
bounded mailbox, and every queued message adds a fixed service delay to
the receiver's relay path — so the packet stream's IPD floats on a
random walk of the occupancy level (bit 1 enqueues one extra message,
bit 0 drains one).  The slowly-varying occupancy component gives covert
traces long-range temporal correlation that legitimate traffic does not
share, which is what the regularity/CCE family keys on, while the mean
shift alone is enough for the first-order tests.

Synthetic (statistical-population) twin of the VM-level ``mbox``
scenario, shaped for the Fig 8 ROC harness.  Distinct from
:class:`~repro.channels.mbctc.Mbctc` (model-based IPD mimicry).
"""

from __future__ import annotations

import statistics

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


class MailboxChannel(CovertChannel):
    """Occupancy-walk channel over a bounded mailbox."""

    name = "mboxtc"

    def __init__(self, per_message_ms: float = 5.0, depth: int = 6) -> None:
        super().__init__()
        if per_message_ms <= 0:
            raise ChannelError(
                f"per-message delay must be positive: {per_message_ms}")
        if depth < 1:
            raise ChannelError(f"mailbox depth must be >= 1: {depth}")
        self.per_message_ms = per_message_ms
        self.depth = depth
        self._baseline = 0.0

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        self._baseline = statistics.median(legit_ipds_ms)

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        occupancy = 0
        covert: list[float] = []
        for i, natural in enumerate(natural_ipds_ms):
            bit = bits[i % len(bits)] if bits else 0
            if bit:
                occupancy = min(occupancy + 1, self.depth)
            else:
                occupancy = max(occupancy - 1, 0)
            covert.append(natural + occupancy * self.per_message_ms)
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        per_message = self.per_message_ms
        depth = self.depth
        previous = 0
        bits: list[int] = []
        for ipd in observed_ipds_ms:
            level = round((ipd - self._baseline) / per_message)
            level = max(0, min(depth, level))
            if level > previous:
                bit = 1
            elif level < previous:
                bit = 0
            else:
                # Saturated at an end of the walk: the level can only
                # have stayed put because the bit pushed past the clamp.
                bit = 1 if level == depth else 0
            bits.append(bit)
            previous = level
        return bits

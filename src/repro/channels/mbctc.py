"""Model-based covert timing channel (MBCTC; Gianvecchio et al., §5.1).

"MBCTC generates IPDs to mimic the statistical properties of legitimate
traffic.  It periodically fits samples of a legitimate traffic to several
models and picks the best fit. ... the shape of the MBCTC traffic is
almost the same as the one of legitimate traffic.  However, as there is
no correlation between consecutive IPDs, MBCTC is highly regular."

Like the original, this implementation fits *several* candidate models
and picks the best one by Kolmogorov-Smirnov distance on the training
sample: a shifted log-normal (WAN IPDs have a propagation-delay floor)
and a smoothed-quantile model (a piecewise-linear inverse CDF — the
flexible nonparametric end of the candidate family).  It refreshes the
fit every ``refit_window`` packets over the natural stream it observes,
as the original does.  Encoding: bit 0 draws from the lower half of the
fitted model, bit 1 from the upper half (inverse-CDF split at the
median), so the marginal stays model-shaped while bits remain decodable.
"""

from __future__ import annotations

import math

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


def _lognormal_mle(values: list[float]) -> tuple[float, float]:
    """(mu, sigma) of a log-normal by MLE; values must be positive."""
    logs = [math.log(max(v, 1e-6)) for v in values]
    mu = sum(logs) / len(logs)
    var = sum((x - mu) ** 2 for x in logs) / len(logs)
    return mu, math.sqrt(max(var, 1e-8))


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation of the standard normal inverse CDF."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile out of range: {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                            + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


class _ShiftedLognormal:
    """Candidate model: floor + LogNormal(mu, sigma)."""

    def __init__(self, sample: list[float]) -> None:
        self.floor = 0.95 * min(sample)
        residuals = [max(v - self.floor, 1e-3) for v in sample]
        self.mu, self.sigma = _lognormal_mle(residuals)

    def quantile(self, p: float) -> float:
        p = min(max(p, 1e-9), 1 - 1e-9)
        return self.floor + math.exp(self.mu
                                     + self.sigma * _normal_quantile(p))

    def median(self) -> float:
        return self.floor + math.exp(self.mu)


class _QuantileModel:
    """Candidate model: smoothed piecewise-linear inverse CDF."""

    ANCHORS = 16

    def __init__(self, sample: list[float]) -> None:
        ordered = sorted(sample)
        n = len(ordered)
        self.points: list[tuple[float, float]] = []
        for k in range(self.ANCHORS + 1):
            q = k / self.ANCHORS
            rank = min(n - 1, int(q * (n - 1)))
            self.points.append((q, ordered[rank]))

    def quantile(self, p: float) -> float:
        p = min(max(p, 0.0), 1.0)
        for (q0, v0), (q1, v1) in zip(self.points, self.points[1:]):
            if p <= q1:
                fraction = (p - q0) / (q1 - q0)
                return v0 + fraction * (v1 - v0)
        return self.points[-1][1]

    def median(self) -> float:
        return self.quantile(0.5)


def _model_ks(model, sample: list[float]) -> float:
    """KS distance between a fitted model and the training sample."""
    ordered = sorted(sample)
    n = len(ordered)
    worst = 0.0
    for k in range(1, 20):
        p = k / 20.0
        value = model.quantile(p)
        empirical = sum(1 for v in ordered if v <= value) / n
        worst = max(worst, abs(empirical - p))
    return worst


class Mbctc(CovertChannel):
    """Best-fit model channel with periodic refits."""

    name = "mbctc"

    def __init__(self, refit_window: int = 15) -> None:
        super().__init__()
        if refit_window < 4:
            raise ChannelError("refit window must be >= 4")
        self.refit_window = refit_window
        self._sample: list[float] = []
        self._model = None

    def _refit(self, sample: list[float]) -> None:
        # "It periodically fits samples of a legitimate traffic to
        # several models and picks the best fit."
        candidates = [_ShiftedLognormal(sample), _QuantileModel(sample)]
        self._model = min(candidates, key=lambda m: _model_ks(m, sample))

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        if any(v <= 0 for v in legit_ipds_ms):
            legit_ipds_ms = [max(v, 1e-3) for v in legit_ipds_ms]
        self._sample = list(legit_ipds_ms)
        self._refit(self._sample)

    def _draw(self, bit: int, rng: SplitMix64) -> float:
        # Inverse-CDF sampling restricted to the bit's half of the model.
        u = rng.random()
        p = 0.5 * u if bit == 0 else 0.5 + 0.5 * u
        return self._model.quantile(p)

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        covert: list[float] = []
        window: list[float] = []
        for i, natural in enumerate(natural_ipds_ms):
            bit = bits[i % len(bits)] if bits else 0
            covert.append(self._draw(bit, rng))
            # Periodic refit over the most recent *legitimate* IPDs the
            # channel can observe (the natural stream it is suppressing).
            window.append(max(natural, 1e-3))
            if len(window) >= self.refit_window:
                self._refit(window)
                window = []
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        median = self._model.median()
        return [1 if ipd > median else 0 for ipd in observed_ipds_ms]

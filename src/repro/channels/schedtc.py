"""Scheduler-yield covert timing channel (SCHEDTC).

The executive-level channel of :mod:`repro.exec.scenarios` seen from the
network: the sender process holds the CPU for extra scheduler quanta
before yielding, so the relayed packet stream's IPDs carry a
quantum-granular additive offset — bit 1 adds ``hold_quanta`` whole
quanta, bit 0 adds nothing.  The granularity is the tell: delays come
only in multiples of the scheduling quantum, producing a shifted,
strongly bimodal IPD mixture that first-order tests (shape, KS) separate
from legitimate traffic easily.

This is the synthetic (statistical-population) twin of the VM-level
``sched`` scenario, shaped for the Fig 8 ROC harness.
"""

from __future__ import annotations

import statistics

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


class SchedYieldChannel(CovertChannel):
    """Quantum-granular CPU-hold channel."""

    name = "schedtc"

    def __init__(self, quantum_ms: float = 6.0, hold_quanta: int = 2) -> None:
        super().__init__()
        if quantum_ms <= 0:
            raise ChannelError(f"quantum must be positive: {quantum_ms}")
        if hold_quanta < 1:
            raise ChannelError(f"hold must be >= 1 quantum: {hold_quanta}")
        self.quantum_ms = quantum_ms
        self.hold_quanta = hold_quanta
        self._baseline = 0.0

    @property
    def hold_ms(self) -> float:
        return self.quantum_ms * self.hold_quanta

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        # The receiver thresholds against the typical legitimate IPD.
        self._baseline = statistics.median(legit_ipds_ms)

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        hold = self.hold_ms
        covert: list[float] = []
        for i, natural in enumerate(natural_ipds_ms):
            bit = bits[i % len(bits)] if bits else 0
            covert.append(natural + (hold if bit else 0.0))
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        threshold = self._baseline + self.hold_ms / 2.0
        return [1 if ipd > threshold else 0 for ipd in observed_ipds_ms]

"""IP covert timing channel (IPCTC; Cabuk et al., §5.1).

"Like most early timing channels, IPCTC is based on a simple idea: the
sender transmits bit 1 by sending a packet within a pre-determined time
interval, and transmits 0 by remaining silent in that interval.  Due to
their unique traffic signatures, IPCTCs are straightforward to detect."

Realized over a request-driven flow: a packet lands in the next slot of
the right parity — bit 1 stretches the IPD to two slots, bit 0 to one.
The resulting IPD sequence is two-valued and strongly periodic, which is
exactly the "unique traffic signature" that every detector catches
(Fig 8a: all AUC = 1.0).
"""

from __future__ import annotations

from repro.channels.base import CovertChannel
from repro.determinism import SplitMix64
from repro.errors import ChannelError


class Ipctc(CovertChannel):
    """Slot-based on/off channel."""

    name = "ipctc"

    def __init__(self, slot_ms: float = 12.0) -> None:
        super().__init__()
        if slot_ms <= 0:
            raise ChannelError(f"slot must be positive: {slot_ms}")
        self.slot_ms = slot_ms

    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        # IPCTC ignores legitimate traffic entirely — its weakness.
        return None

    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        covert: list[float] = []
        for i, _ in enumerate(natural_ipds_ms):
            bit = bits[i % len(bits)] if bits else 0
            covert.append(self.slot_ms * (2.0 if bit else 1.0))
        return covert

    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        threshold = 1.5 * self.slot_ms
        return [1 if ipd > threshold else 0 for ipd in observed_ipds_ms]

"""Common covert-channel interface."""

from __future__ import annotations

import abc

from repro.determinism import SplitMix64
from repro.errors import ChannelError


class CovertChannel(abc.ABC):
    """A covert timing channel over inter-packet delays.

    Life cycle:

    1. :meth:`fit` — the adversary records some legitimate IPDs from the
       compromised host (TRCTC and MBCTC need this; IPCTC and Needle are
       parameterized directly);
    2. :meth:`encode` — transform a natural IPD sequence into the covert
       one carrying ``bits``;
    3. :meth:`delays_for` — express the same transformation as the
       per-packet extra-delay schedule consumed by the ``covert_delay``
       VM primitive (delays are clamped at zero: a server can postpone a
       response but never send it before it is ready);
    4. :meth:`decode` — receiver-side bit recovery from observed IPDs.
    """

    name: str = "channel"
    #: How many packets carry one bit (1 for dense channels).
    packets_per_bit: int = 1

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        """Train on the adversary's recorded legitimate IPD sample."""
        if not legit_ipds_ms:
            raise ChannelError(f"{self.name}: empty legitimate sample")
        self._fit(legit_ipds_ms, rng)
        self._fitted = True

    def encode(self, natural_ipds_ms: list[float], bits: list[int],
               rng: SplitMix64) -> list[float]:
        """Covert IPD sequence carrying ``bits`` over a natural trace."""
        self._require_fitted()
        if not all(b in (0, 1) for b in bits):
            raise ChannelError(f"{self.name}: bits must be 0/1")
        return self._encode(natural_ipds_ms, bits, rng)

    def delays_for(self, natural_ipds_ms: list[float], bits: list[int],
                   rng: SplitMix64) -> list[float]:
        """Per-packet extra delays (ms) realizing :meth:`encode`.

        Element k is the delay inserted before transmitting packet k+1
        (packet 0 anchors the trace).  Negative adjustments are clamped
        to zero — timing channels can only postpone.
        """
        covert = self.encode(natural_ipds_ms, bits, rng)
        return [max(0.0, c - n) for c, n in zip(covert, natural_ipds_ms)]

    def decode(self, observed_ipds_ms: list[float]) -> list[int]:
        """Receiver-side bit recovery."""
        self._require_fitted()
        return self._decode(observed_ipds_ms)

    def bits_needed(self, num_ipds: int) -> int:
        """How many payload bits a trace with ``num_ipds`` IPDs carries."""
        return max(0, num_ipds // self.packets_per_bit)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ChannelError(f"{self.name}: fit() before use")

    @abc.abstractmethod
    def _fit(self, legit_ipds_ms: list[float], rng: SplitMix64) -> None:
        """Channel-specific training."""

    @abc.abstractmethod
    def _encode(self, natural_ipds_ms: list[float], bits: list[int],
                rng: SplitMix64) -> list[float]:
        """Channel-specific encoding."""

    @abc.abstractmethod
    def _decode(self, observed_ipds_ms: list[float]) -> list[int]:
        """Channel-specific decoding."""

"""The machine: hardware assembly, mode handling, and the run loop.

A :class:`Machine` is single-shot: construct it with a config, a seed, and
a mode (``play`` / ``replay`` / ``naive-replay``), then :meth:`Machine.run`
one program on it.  The seed drives only the machine's *noise* — the
sources of time variability that the record/replay machinery deliberately
does not capture.  Running the same program with the same inputs and a
different seed is the paper's definition of a repeated execution on real
hardware; with the same seed it is the simulator's determinism check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.log import EventLog
from repro.core.session import (NaiveReplaySession, PlaySession,
                                ReplaySession, Session)
from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError, ReplayError
from repro.hw.branch import BranchPredictor, BranchPredictorConfig
from repro.hw.bus import BusConfig, MemoryBus
from repro.hw.cache import Cache, CacheHierarchy
from repro.hw.clock import VirtualClock
from repro.hw.cpu import CpuModel, CpuTimingConfig
from repro.hw.interrupts import InterruptController, standard_sources
from repro.hw.memory import AddressSpace, FrameAllocator
from repro.hw.nic import Nic
from repro.hw.storage import Hdd, PaddedStorage, Ssd
from repro.hw.tlb import Tlb, TlbConfig
from repro.machine.config import MachineConfig, StorageKind
from repro.machine.natives import MACHINE_REGISTRY
from repro.machine.platform import TimedCorePlatform
from repro.obs.ledger import CycleLedger, Source
from repro.obs.sampling import OpcodeSampler
from repro.machine.ringbuf import STBuffer, TSBuffer
from repro.machine.workload import Workload
from repro.vm.interpreter import Interpreter, VmConfig
from repro.vm.program import Program

MODES = ("play", "replay", "naive-replay")


@dataclass
class ExecutionResult:
    """Everything one execution produced."""

    mode: str
    config_name: str
    seed: int
    tx: list[tuple[int, bytes]]           # (cycle, payload) transmissions
    console: list
    total_cycles: int
    total_ns: float
    instructions: int
    log: EventLog | None                  # present after a play run
    stats: dict[str, float] = field(default_factory=dict)
    #: Per-source cycle attribution (largest first); None without obs.
    ledger: dict[str, int] | None = None
    #: Per-process per-source attribution (``cycles{process=...}``);
    #: None except for executive (multi-process) runs with obs, where the
    #: per-process sums add up exactly to ``total_cycles``.
    process_ledger: dict[str, dict[str, int]] | None = None
    #: Sampled opcode-name histogram; None without obs.
    opcodes: dict[str, int] | None = None
    #: Trace-JIT tier-up summary (compile events, per-region entry /
    #: side-exit / cycle counts); None when the run was pure-interpreter
    #: (``REPRO_NO_JIT=1``).  Purely observational: cycles, ledger sums,
    #: transmissions and verdicts are bit-identical with the JIT on/off.
    jit: dict | None = None
    #: Cycle-exact stack profile (``CycleProfiler.export()``); None
    #: unless obs enabled profiling.  Per-source totals inside it sum
    #: exactly to ``ledger``, and — like every collector — profiling
    #: on/off leaves every other field bit-identical.
    profile: dict | None = None
    #: Exact ns-per-cycle rational of the producing clock (numerator /
    #: denominator).  A zero numerator marks a legacy result that must
    #: fall back to the float ratio.
    ns_num: int = 0
    ns_den: int = 1

    def tx_times_ms(self) -> list[float]:
        """Transmission times in milliseconds.

        Uses the clock's exact integer/Fraction ns conversion (integer
        product, one correctly rounded division) rather than a float
        ``total_ns / total_cycles`` scale, so long runs do not
        reintroduce the drift the VirtualClock rewrite removed.
        """
        if self.ns_num:
            num = self.ns_num
            den = self.ns_den * 1_000_000
            return [cycle * num / den for cycle, _ in self.tx]
        scale = self.total_ns / self.total_cycles if self.total_cycles else 0.0
        return [cycle * scale * 1e-6 for cycle, _ in self.tx]

    def ipds_ms(self) -> list[float]:
        """Inter-packet delays of the transmitted trace, in ms."""
        times = self.tx_times_ms()
        return [b - a for a, b in zip(times, times[1:])]


class Machine:
    """One simulated machine, assembled per the TC/SC design of §3.3."""

    def __init__(self, config: MachineConfig, seed: int = 0,
                 mode: str = "play", log: EventLog | None = None,
                 workload: Workload | None = None,
                 covert_enabled: bool = False,
                 covert_schedule: list[int] | None = None,
                 obs=None) -> None:
        if mode not in MODES:
            raise HardwareConfigError(f"unknown mode '{mode}'; "
                                      f"expected one of {MODES}")
        if mode != "play" and log is None:
            raise ReplayError(f"mode '{mode}' needs an event log")
        if mode != "play" and workload is not None:
            raise ReplayError("replay modes take inputs from the log, "
                              "not from a workload")
        self.config = config
        self.seed = seed
        self.mode = mode
        self.workload = workload
        # A non-empty schedule implies the channel primitive is active.
        self.covert_schedule = list(covert_schedule or [])
        self.covert_enabled = covert_enabled or bool(self.covert_schedule)
        self._covert_cursor = 0
        self.registry = MACHINE_REGISTRY

        root = SplitMix64(seed)
        # Residual sources: always stochastic (§6.9 — they bound accuracy).
        bus_rng = root.fork("bus")
        cpu_rng = root.fork("cpu")
        irq_rng = root.fork("irq")
        preempt_rng = root.fork("preempt")
        storage_rng = root.fork("storage")
        frames_rng = root.fork("frames")
        cache_init_rng = root.fork("cache-init")

        self.clock = VirtualClock(config.frequency_hz)
        # Observability (a repro.obs.Observability bundle, or None): the
        # ledger is per-run so play and replay never conflate totals; the
        # tracer and registry are shared across the bundle's machines.
        self.obs = obs
        self.ledger: CycleLedger | None = None
        if obs is not None and obs.ledger_enabled:
            self.ledger = CycleLedger()
            self.clock.attach_ledger(self.ledger)
        self.bus = MemoryBus(
            BusConfig(contention_probability=config.bus_contention_probability,
                      max_stall_cycles=config.bus_max_stall_cycles),
            bus_rng)
        self.cpu = CpuModel(
            CpuTimingConfig(costs=config.cost_table,
                            freq_scaling_enabled=config.freq_scaling,
                            turbo_enabled=config.turbo,
                            speculation_sigma=config.speculation_sigma),
            cpu_rng)
        self.l1 = Cache(config.l1_config)
        l2_config = config.l2_config
        if config.cache_partitioning:
            # Page-coloring-style partitioning: the timed core keeps a
            # private half of the L2 (half the sets), and the co-tenant
            # can no longer touch it.
            from dataclasses import replace as _replace

            l2_config = _replace(l2_config,
                                 size_bytes=l2_config.size_bytes // 2)
        self.l2 = Cache(l2_config)
        self.hierarchy = CacheHierarchy(self.l1, self.l2, self.bus,
                                        dram_cycles=config.dram_cycles)
        self.tlb = Tlb(TlbConfig(entries=config.tlb_entries,
                                 miss_cycles=config.tlb_miss_cycles))
        self.predictor = BranchPredictor(BranchPredictorConfig(
            table_entries=config.btb_entries,
            mispredict_cycles=config.mispredict_cycles))
        frame_allocator = FrameAllocator(
            config.num_frames, deterministic=config.deterministic_frames,
            noise_rng=frames_rng)
        self.address_space = AddressSpace(frame_allocator)
        self._irq_rng = irq_rng
        self.irq_controller = InterruptController(
            standard_sources(),
            irq_rng if config.irqs_enabled else ZeroNoise(),
            routed_to_timed_core=(config.irqs_enabled
                                  and not config.irqs_to_supporting_core))
        self._co_tenant_rng = root.fork("co-tenant")
        # The neighbor VM alternates bursty busy/idle phases; while busy
        # it contends for memory bandwidth and slows the timed core.
        self._co_tenant_busy = False
        self._co_tenant_phase_end = 0
        self._last_world_cycle = 0
        self._preempt_rng = preempt_rng
        self._next_preempt = (
            int(preempt_rng.exponential(config.preempt_mean_interval_cycles))
            if config.preemption_enabled else None)
        if config.storage == StorageKind.HDD:
            device = Hdd(storage_rng)
        else:
            device = Ssd(storage_rng)
        self.storage = PaddedStorage(device) if config.pad_storage else device
        self.nic = Nic()
        self.st_buffer = STBuffer()
        self.ts_buffer = TSBuffer()

        # Initialization and quiescence (§3.6): flush the caches, TLB, and
        # predictor, or start them in a pseudo-random "dirty" state.
        if config.flush_caches_at_start:
            self.hierarchy.flush()
            self.tlb.flush()
            self.predictor.flush()
        elif config.random_initial_cache:
            self.l1.randomize(cache_init_rng)
            self.l2.randomize(cache_init_rng)

        self.session: Session = self._build_session(log)
        if obs is not None and obs.tracer is not None:
            self.session.tracer = obs.tracer
        self.platform = TimedCorePlatform(self)
        self._ran = False

    def _build_session(self, log: EventLog | None) -> Session:
        if self.mode == "play":
            return PlaySession()
        if self.mode == "replay":
            return ReplaySession(log)
        return NaiveReplaySession(log)

    @property
    def is_play(self) -> bool:
        return self.mode == "play"

    def next_covert_delay(self) -> int:
        """Pop the next covert-delay schedule entry (0 when exhausted or
        on a clean machine)."""
        if self._covert_cursor >= len(self.covert_schedule):
            return 0
        value = self.covert_schedule[self._covert_cursor]
        self._covert_cursor += 1
        return max(0, int(value))

    # -- world interface (SC side) -----------------------------------------------

    def schedule_arrival(self, cycle: int, payload: bytes) -> None:
        """Workload hook: a packet reaches the NIC at ``cycle``."""
        self.nic.schedule_rx(cycle, payload)

    def no_more_arrivals(self) -> bool:
        """True when no input packet can ever appear again (play mode)."""
        if self.st_buffer.pending or self.nic.pending_rx:
            return False
        return self.workload is None or self.workload.finished()

    def service_world(self) -> None:
        """Advance the supporting core's world to the current time.

        Called from the interpreter's quantum hook and from every idle
        poll iteration: stages arrived packets, applies IRQ and preemption
        interference, and decays bus traffic.
        """
        now = self.clock.cycles
        config = self.config
        if self.is_play:
            ready = self.nic.poll_rx(now - config.sc_processing_cycles)
            for payload in ready:
                self.st_buffer.stage(payload)
                self.bus.add_traffic(Nic.DMA_TRAFFIC)
        if config.irqs_enabled:
            direct, lines, traffic = \
                self.irq_controller.pending_interference(now)
            if direct:
                self.clock.advance(direct, Source.INTERRUPT)
                self.hierarchy.pollute(self._irq_rng, lines,
                                       lines * 2)
            if traffic:
                self.bus.add_traffic(traffic)
        if self._next_preempt is not None:
            while self._next_preempt <= now:
                duration = int(self._preempt_rng.exponential(
                    config.preempt_mean_duration_cycles))
                self.clock.advance(duration, Source.PREEMPT)
                self.hierarchy.pollute(self._preempt_rng, 96, 384)
                self._next_preempt += max(1, int(self._preempt_rng.exponential(
                    config.preempt_mean_interval_cycles)))
        if config.co_tenant_intensity > 0.0:
            self._co_tenant_interference(now)
        self.bus.decay_traffic(0.6)
        if self.bus.traffic_level < config.background_bus_traffic:
            self.bus.set_traffic_level(config.background_bus_traffic)

    def _co_tenant_interference(self, now: int) -> None:
        """Cross-VM interference (§7 "Multi-tenancy").

        The neighbor alternates busy/idle phases (exponential durations).
        While busy it saturates the shared memory bus, stretching the
        timed core's progress; without partitioning it also pollutes the
        shared L2.  Cache/memory partitioning [33] confines the damage to
        a small bandwidth residual — "we speculate that recent work in
        the real-time domain could mitigate the cross-talk".
        """
        config = self.config
        rng = self._co_tenant_rng
        elapsed = now - self._last_world_cycle
        self._last_world_cycle = now
        while self._co_tenant_phase_end <= now:
            self._co_tenant_busy = not self._co_tenant_busy
            mean = 4e6 if self._co_tenant_busy else \
                4e6 * (1.0 / max(config.co_tenant_intensity, 1e-3) - 1.0 + 0.2)
            self._co_tenant_phase_end = now + max(
                1, int(rng.exponential(mean)))
        if not self._co_tenant_busy or elapsed <= 0:
            return
        slowdown = 0.05 if not config.cache_partitioning else 0.005
        self.clock.advance(int(elapsed * config.co_tenant_intensity
                               * slowdown), Source.CO_TENANT)
        self.bus.add_traffic(config.co_tenant_intensity * 0.3)
        if not config.cache_partitioning:
            self.l2.pollute(rng, 16)

    # -- execution --------------------------------------------------------------------

    def vm_config(self) -> VmConfig:
        """The interpreter configuration this machine's runs use."""
        return VmConfig(thread_quantum=self.config.thread_quantum,
                        poll_interval=self.config.vm_poll_interval)

    def attach_observers(self, vm: Interpreter) -> None:
        """Give ``vm`` this machine's obs collectors (sampler, profiler)."""
        if self.obs is None:
            return
        if self.obs.sample_opcodes:
            vm.sampler = OpcodeSampler(stride=self.config.vm_poll_interval)
        if getattr(self.obs, "profile_enabled", False) \
                and self.ledger is not None:
            from repro.obs.profiler import CycleProfiler

            vm.profiler = CycleProfiler(
                self.ledger, vm.program,
                flush=getattr(self.platform, "flush_charges", None),
                stride=self.obs.profile_stride,
                jit_stride=self.obs.profile_jit_stride)

    def run(self, program: Program,
            max_instructions: int | None = 200_000_000) -> ExecutionResult:
        """Execute ``program`` to completion; returns the result."""
        if self._ran:
            raise HardwareConfigError(
                "a Machine is single-shot; build a new one per execution")
        self._ran = True
        vm = Interpreter(program, self.platform, self.vm_config())
        self.attach_observers(vm)
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is not None:
            tracer.bind(self.clock.now_ns,
                        track=f"{self.mode}:{self.config.name}")
            tracer.begin("machine.run", mode=self.mode,
                         config=self.config.name, seed=self.seed)
        if self.workload is not None:
            if tracer is not None:
                with tracer.span("workload.start"):
                    self.workload.start(self)
            else:
                self.workload.start(self)
        if tracer is not None:
            tracer.begin("vm.execute")
        vm.run(max_instructions)
        self.platform.flush_charges()
        if tracer is not None:
            tracer.end("vm.execute", instructions=vm.instruction_count)
            tracer.end("machine.run", total_cycles=self.clock.cycles)
        result = self.make_result(vm)
        if self.obs is not None and self.obs.registry.enabled:
            registry = self.obs.registry
            registry.counter(
                "tdr_runs_total", "Machine executions completed").inc()
            registry.counter(
                f"tdr_runs_{self.mode.replace('-', '_')}_total",
                f"Executions in {self.mode} mode").inc()
            registry.histogram(
                "tdr_run_cycles", "Virtual cycles per run").observe(
                result.total_cycles)
            registry.histogram(
                "tdr_run_instructions", "Instructions per run").observe(
                result.instructions)
            registry.counter(
                "tdr_tx_packets_total", "Packets transmitted").inc(
                len(result.tx))
            if result.jit is not None:
                registry.counter(
                    "tdr_jit_compile_events_total",
                    "Functions tiered up to compiled blocks").inc(
                    result.jit["compile_events"])
                registry.counter(
                    "tdr_jit_compiled_regions_total",
                    "Bytecode regions compiled to superinstructions").inc(
                    result.jit["compiled_regions"])
                registry.counter(
                    "tdr_jit_block_entries_total",
                    "Compiled-block executions").inc(result.jit["entries"])
                registry.counter(
                    "tdr_jit_side_exits_total",
                    "Mid-block falls back to the interpreter").inc(
                    result.jit["side_exits"])
        return result

    def make_result(self, vm: Interpreter) -> ExecutionResult:
        """Assemble the :class:`ExecutionResult` of the machine's state.

        Split out of :meth:`run` so checkpoint/segment replay (which
        drives the interpreter itself) produces identical results.
        """
        self.platform.flush_charges()
        profile = None
        if vm.profiler is not None:
            # Post-flush: the residual sweep closes the accounting, so
            # the exported per-source totals equal the ledger exactly.
            vm.profiler.finish()
            profile = vm.profiler.export()
        log = self.session.log if isinstance(self.session, PlaySession) \
            else None
        ns_num, ns_den = self.clock.ns_ratio
        return ExecutionResult(
            mode=self.mode,
            config_name=self.config.name,
            seed=self.seed,
            tx=list(self.platform.tx_trace),
            console=list(self.platform.console),
            total_cycles=self.clock.cycles,
            total_ns=self.clock.now_ns(),
            instructions=vm.instruction_count,
            log=log,
            stats=self._collect_stats(vm),
            ledger=self.ledger.totals() if self.ledger is not None else None,
            process_ledger=(self.ledger.process_totals() or None
                            if self.ledger is not None else None),
            opcodes=(vm.sampler.histogram() if vm.sampler is not None
                     else None),
            jit=(vm.jit.summary() if vm.jit is not None else None),
            profile=profile,
            ns_num=ns_num, ns_den=ns_den)

    def _collect_stats(self, vm: Interpreter) -> dict[str, float]:
        l1, l2 = self.l1, self.l2
        stats = {
            "l1_hits": l1.hits, "l1_misses": l1.misses,
            "l2_hits": l2.hits, "l2_misses": l2.misses,
            "dram_accesses": self.hierarchy.dram_accesses,
            "tlb_misses": self.tlb.misses,
            "branch_mispredicts": self.predictor.mispredictions,
            "bus_collisions": self.bus.collisions,
            "bus_stall_cycles": self.bus.total_stall_cycles,
            "irq_firings": self.irq_controller.firings,
            "gc_runs": vm.heap.gc_runs,
            "storage_reads": self.storage.reads,
            "events_handled": self.session.events_handled,
        }
        if isinstance(self.session, ReplaySession):
            stats["injection_slack"] = self.session.max_injection_slack
        return stats

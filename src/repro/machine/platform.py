"""The timed core: the :class:`~repro.vm.platform.Platform` implementation
backed by the simulated hardware.

Everything the paper's §3 describes comes together here:

* per-instruction cycle charging through the CPU model (with its residual
  speculation noise and optional frequency scaling);
* data/instruction accesses through TLB → virt-phys translation →
  physically-indexed L1/L2 → DRAM over the contended bus;
* conditional branches through the 2-bit predictor;
* the S-T / T-S ring-buffer protocol with symmetric costs in play and
  replay (§3.4-3.5);
* the blocking-receive idle loop, which advances the instruction counter
  once per poll stride so arrivals are identifiable points (§3.2) and
  which the *naive* replayer skips (§2.5);
* the native interface (I/O, ``nano_time``, ``covert_delay``).

Batched cycle charging
----------------------

At interpreter-in-an-interpreter depth, one host-level
``VirtualClock.advance`` per guest instruction is the dominant simulation
overhead.  The virtual clock, however, is only ever *read* at controlled
boundaries — platform polls, event injections (``nano_time`` / packet
delivery), transmissions, covert delays, and I/O — so between boundaries
the platform accumulates cycles in plain integer slots (one per ledger
source) and flushes them as a single ``advance`` per source at the next
boundary.  Per-source sums, the clock total, transmission cycles, and
audit verdicts are bit-identical to the unbatched path, because integer
addition is associative and nothing observes the clock mid-batch; only
the *number* of ledger charge events changes (one per flush instead of
one per instruction).  Set ``REPRO_NO_BATCH=1`` to fall back to the
immediate-advance path for differential testing.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.hw.cpu import CostClass
from repro.obs.ledger import Source
from repro.vm.heap import GuestThrow
from repro.vm.isa import EXC_INDEX_OUT_OF_BOUNDS, EXC_NULL_REFERENCE
from repro.vm.platform import Platform

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.vm.interpreter import Interpreter

_WORD = 8
_PAGE_SHIFT = 12

#: Accumulator slots, flushed in this (fixed, deterministic) order.
_ACC_INSTR, _ACC_CACHE, _ACC_TLB, _ACC_BUS, _ACC_BRANCH = range(5)
_ACC_SOURCES = (Source.INSTRUCTION, Source.CACHE, Source.TLB, Source.BUS,
                Source.BRANCH)


def batching_enabled() -> bool:
    """Whether new platforms use the batched charging fast path."""
    return os.environ.get("REPRO_NO_BATCH", "") != "1"


class TimedCorePlatform(Platform):
    """Timed-core execution environment for one machine run."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        config = machine.config
        self.config = config
        # Hot-path aliases.
        self.clock = machine.clock
        self.cpu = machine.cpu
        self.tlb = machine.tlb
        self.space = machine.address_space
        self.hierarchy = machine.hierarchy
        self.predictor = machine.predictor
        self.bus = machine.bus
        self.session = machine.session
        self.st_buffer = machine.st_buffer
        self.ts_buffer = machine.ts_buffer
        # Attribution ledger, if the machine was built with observability.
        # ``mem_access`` keeps a combined-advance fast path when absent.
        self._ledger = machine.clock.ledger
        self.console: list = []
        self.tx_trace: list[tuple[int, bytes]] = []
        #: Set by :class:`repro.exec.Executive` when this machine hosts
        #: multiple guest processes; the exec_* natives dispatch into it.
        self.executive = None
        # A JIT register-allocates locals: LOAD/STORE of stack slots do
        # not touch the memory hierarchy (Table 2's Oracle-JIT model).
        from repro.machine.config import RuntimeKind
        from repro.vm.heap import HEAP_BASE
        from repro.vm.interpreter import STACK_BASE

        self._registerized_base = ((STACK_BASE, HEAP_BASE)
                                   if config.runtime == RuntimeKind.ORACLE_JIT
                                   else None)
        registry = machine.registry
        self._specs = [registry.spec(i) for i in range(len(registry))]
        self._handlers = [getattr(self, f"_native_{spec.name}")
                          for spec in self._specs]
        # Batched-charging state.  ``_acc`` holds per-source pending
        # cycles; ``_acc_misc`` the rare sources (gc, ...).  The class
        # bodies below are the unbatched (immediate-advance) reference
        # implementations; the batched fast paths are installed as
        # instance attributes so the interpreter's hot-loop aliases pick
        # them up transparently.
        self.batching = batching_enabled()
        self._acc = [0, 0, 0, 0, 0]
        self._acc_misc: dict[str, int] = {}
        if self.batching:
            self._install_batched_paths()

    # -- Platform interface ---------------------------------------------------

    def charge(self, cost_class: CostClass) -> None:
        self.clock.advance(self.cpu.instruction_cost(cost_class),
                           Source.INSTRUCTION)

    def mem_access(self, vaddr: int) -> None:
        if self._registerized_base is not None and \
                self._registerized_base[0] <= vaddr < \
                self._registerized_base[1]:
            return
        if self._ledger is None:
            cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
            paddr = self.space.translate(vaddr)
            cost += self.hierarchy.access(paddr)
            if cost:
                self.clock.advance(cost)
            return
        # Attributed path: TLB walk, cache/DRAM latency, and the bus-stall
        # share of DRAM fills land in their own buckets.  The split changes
        # only bookkeeping — the summed advance is identical to the fast
        # path, so cycle counts stay bit-identical either way.
        tlb_cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
        if tlb_cost:
            self.clock.advance(tlb_cost, Source.TLB)
        paddr = self.space.translate(vaddr)
        stall_before = self.bus.total_stall_cycles
        cost = self.hierarchy.access(paddr)
        stall = self.bus.total_stall_cycles - stall_before
        if stall:
            self.clock.advance(cost - stall, Source.CACHE)
            self.clock.advance(stall, Source.BUS)
        elif cost:
            self.clock.advance(cost, Source.CACHE)

    def fetch_access(self, code_vaddr: int) -> None:
        self.mem_access(code_vaddr)

    def branch(self, branch_site: int, taken: bool) -> None:
        penalty = self.predictor.record(branch_site, taken)
        if penalty:
            self.clock.advance(penalty, Source.BRANCH)

    def charge_cycles(self, cycles: int, source: str = "other") -> None:
        if self.batching:
            misc = self._acc_misc
            misc[source] = misc.get(source, 0) + cycles
            return
        self.clock.advance(cycles, source)

    def instruction_base_costs(self) -> list[int]:
        """Noise-free base costs per :class:`CostClass` (dense list)."""
        return list(self.cpu._cost_list)

    def mem_inline(self):
        """Template for inlining the fused memory path into trace blocks.

        Only available when the batched closures are installed (the
        ``REPRO_NO_BATCH`` escape hatch also disables inlining, so the
        unbatched reference path stays the plain closure-call form).
        """
        return getattr(self, "_mem_inline", None)

    def flush_charges(self) -> None:
        """Drain pending batched cycles into the clock, one advance per
        source, in a fixed order.

        Called at every boundary where the virtual clock becomes
        observable.  Cheap when nothing is pending; a no-op on the
        unbatched (``REPRO_NO_BATCH=1``) path, whose accumulators never
        fill.
        """
        acc = self._acc
        advance = self.clock.advance
        for slot, source in enumerate(_ACC_SOURCES):
            pending = acc[slot]
            if pending:
                acc[slot] = 0
                advance(pending, source)
        misc = self._acc_misc
        if misc:
            for source, pending in misc.items():
                if pending:
                    advance(pending, source)
            misc.clear()

    def _install_batched_paths(self) -> None:
        """Bind closure-based fast paths for the per-instruction hot calls.

        Closures over local aliases beat bound methods here: the
        interpreter calls ``charge``/``mem_access``/``fetch_access``
        once or more per guest instruction, so every attribute lookup
        removed is measurable.  The no-ledger variant does no ``Source``
        tagging at all — one plain integer add per charge — which keeps
        the obs-off configuration inside its <5% overhead bound.
        """
        acc = self._acc
        instruction_cost = self.cpu.instruction_cost
        tlb_access = self.tlb.access
        translate = self.space.translate
        hierarchy_access = self.hierarchy.access
        record_branch = self.predictor.record
        registerized = self._registerized_base
        bus = self.bus

        # The per-instruction cost computation is inlined from
        # CpuModel.instruction_cost: at one call per guest instruction,
        # the method-call overhead alone is a measurable share of the
        # simulation.  The state updates are identical (shared counters,
        # same redraw points, same Bresenham fractional carry) so
        # instruction_cost() callers interleave transparently.
        cpu = self.cpu
        cost_list = cpu._cost_list
        speculation_period = cpu.config.speculation_period
        recompute_noise = cpu._recompute_noise

        def charge(cost_class: CostClass) -> None:
            cpu._instructions += 1
            left = cpu._until_redraw - 1
            if left:
                cpu._until_redraw = left
            else:
                cpu._until_redraw = speculation_period
                recompute_noise()
            combined = cpu._combined
            frac = cpu._frac
            base = cost_list[cost_class]
            if combined == 1.0 and frac == 0.0:
                acc[_ACC_INSTR] += base
                return
            exact = base * combined + frac
            cost = int(exact)
            cpu._frac = exact - cost
            acc[_ACC_INSTR] += cost

        # Block-level charging for the trace-compiling tier-up.  The
        # fast path is provably exact: with no pending fractional carry,
        # a unit combined factor, and no redraw point inside the block
        # (``_until_redraw > n`` — the redraw fires when the countdown
        # *reaches* zero, before the cost is read), every one of the n
        # per-instruction charges would have returned its base cost
        # unchanged.  Otherwise the loop replays the per-instruction
        # computation exactly — same counter updates, same redraw
        # points, same Bresenham carry — so cycle totals are
        # bit-identical to n individual charge() calls either way.
        def charge_block(cost_classes, base_costs=(),
                         base_total: int = 0) -> None:
            n = len(cost_classes)
            if cpu._combined == 1.0 and cpu._frac == 0.0 \
                    and cpu._until_redraw > n:
                cpu._instructions += n
                cpu._until_redraw -= n
                acc[_ACC_INSTR] += base_total
                return
            if len(base_costs) != n:
                base_costs = [cost_list[c] for c in cost_classes]
            # Replay loop on locals; _recompute_noise only touches the
            # factor fields, so the countdown and fractional carry can
            # live in registers and be written back once.  With no
            # redraw point inside the block the noise factor is constant
            # and the countdown moves in one step, leaving only the
            # Bresenham carry to replay per instruction.
            total = 0
            until = cpu._until_redraw
            combined = cpu._combined
            frac = cpu._frac
            if until > n:
                for base in base_costs:
                    exact = base * combined + frac
                    cost = int(exact)
                    frac = exact - cost
                    total += cost
                until -= n
            else:
                for base in base_costs:
                    until -= 1
                    if until == 0:
                        until = speculation_period
                        recompute_noise()
                        combined = cpu._combined
                    if combined == 1.0 and frac == 0.0:
                        total += base
                        continue
                    exact = base * combined + frac
                    cost = int(exact)
                    frac = exact - cost
                    total += cost
            cpu._instructions += n
            cpu._until_redraw = until
            cpu._frac = frac
            acc[_ACC_INSTR] += total

        # Preconditions for the fused memory path, which inlines the TLB
        # hit, the page-table lookup, and the L1 hit directly into one
        # closure: LRU L1 (the inline hit does an LRU move) and the
        # platform's fixed 4 KiB page geometry.  Anything else falls back
        # to the generic component-call closures below.
        l1 = self.hierarchy.l1
        tlb = self.tlb
        from repro.hw.cache import ReplacementPolicy
        fused_ok = (l1.config.policy is ReplacementPolicy.LRU
                    and self.space._page_shift == _PAGE_SHIFT)
        tlb_entries = tlb._entries
        tlb_miss = tlb.miss
        page_table = self.space._page_table
        l1_sets = l1._sets
        l1_shift = l1._line_shift
        l1_nsets = l1._num_sets
        l1_hit_cycles = l1.config.hit_cycles
        l1_miss_path = self.hierarchy.access_after_l1_miss
        _page_mask = (1 << _PAGE_SHIFT) - 1

        if self._ledger is None:
            # No attribution wanted: everything lands in one slot (the
            # flush tag is ignored without a ledger), so the hot path is
            # a plain integer add.
            if fused_ok:
                def mem_access(vaddr: int) -> None:
                    if registerized is not None and \
                            registerized[0] <= vaddr < registerized[1]:
                        return
                    vpn = vaddr >> _PAGE_SHIFT
                    if vpn in tlb_entries:
                        tlb.hits += 1
                        del tlb_entries[vpn]
                        tlb_entries[vpn] = True
                        cost = 0
                    else:
                        cost = tlb_miss(vpn)
                    pfn = page_table.get(vpn)
                    if pfn is None:
                        paddr = translate(vaddr)
                    else:
                        paddr = (pfn << _PAGE_SHIFT) | (vaddr & _page_mask)
                    line = paddr >> l1_shift
                    ways = l1_sets[line % l1_nsets]
                    tag = line // l1_nsets
                    if tag in ways:
                        l1.hits += 1
                        del ways[tag]
                        ways[tag] = True
                        cost += l1_hit_cycles
                        if l1._pending_writeback:
                            cost += l1.take_writeback_cost()
                    else:
                        cost += l1_miss_path(paddr, line % l1_nsets, tag)
                    acc[_ACC_INSTR] += cost
            else:
                def mem_access(vaddr: int) -> None:
                    if registerized is not None and \
                            registerized[0] <= vaddr < registerized[1]:
                        return
                    cost = tlb_access(vaddr >> _PAGE_SHIFT)
                    cost += hierarchy_access(translate(vaddr))
                    if cost:
                        acc[_ACC_INSTR] += cost

            def branch(branch_site: int, taken: bool) -> None:
                penalty = record_branch(branch_site, taken)
                if penalty:
                    acc[_ACC_INSTR] += penalty
        else:
            if fused_ok:
                def mem_access(vaddr: int) -> None:
                    if registerized is not None and \
                            registerized[0] <= vaddr < registerized[1]:
                        return
                    vpn = vaddr >> _PAGE_SHIFT
                    if vpn in tlb_entries:
                        tlb.hits += 1
                        del tlb_entries[vpn]
                        tlb_entries[vpn] = True
                    else:
                        acc[_ACC_TLB] += tlb_miss(vpn)
                    pfn = page_table.get(vpn)
                    if pfn is None:
                        paddr = translate(vaddr)
                    else:
                        paddr = (pfn << _PAGE_SHIFT) | (vaddr & _page_mask)
                    line = paddr >> l1_shift
                    ways = l1_sets[line % l1_nsets]
                    tag = line // l1_nsets
                    if tag in ways:
                        l1.hits += 1
                        del ways[tag]
                        ways[tag] = True
                        cost = l1_hit_cycles
                        if l1._pending_writeback:
                            cost += l1.take_writeback_cost()
                        acc[_ACC_CACHE] += cost
                        return
                    # L1 misses can reach DRAM, whose fills traverse the
                    # contended bus; split the stall share out exactly as
                    # the unbatched path does.
                    stall_before = bus.total_stall_cycles
                    cost = l1_miss_path(paddr, line % l1_nsets, tag)
                    stall = bus.total_stall_cycles - stall_before
                    if stall:
                        acc[_ACC_CACHE] += cost - stall
                        acc[_ACC_BUS] += stall
                    else:
                        acc[_ACC_CACHE] += cost
            else:
                def mem_access(vaddr: int) -> None:
                    if registerized is not None and \
                            registerized[0] <= vaddr < registerized[1]:
                        return
                    tlb_cost = tlb_access(vaddr >> _PAGE_SHIFT)
                    if tlb_cost:
                        acc[_ACC_TLB] += tlb_cost
                    paddr = translate(vaddr)
                    stall_before = bus.total_stall_cycles
                    cost = hierarchy_access(paddr)
                    stall = bus.total_stall_cycles - stall_before
                    if stall:
                        acc[_ACC_CACHE] += cost - stall
                        acc[_ACC_BUS] += stall
                    elif cost:
                        acc[_ACC_CACHE] += cost

            def branch(branch_site: int, taken: bool) -> None:
                penalty = record_branch(branch_site, taken)
                if penalty:
                    acc[_ACC_BRANCH] += penalty

        # Inline-expansion template for compiled trace blocks: the same
        # fused hit path as mem_access above, rendered as source lines
        # so generated superinstructions avoid one closure call per
        # memory access.  State updates are line-for-line identical to
        # the closure, so cycle totals and hit counters cannot diverge.
        self._mem_inline = None
        if fused_ok:
            ledger = self._ledger is not None
            inline_ns = {
                "_tlbO": tlb, "_tlbE": tlb_entries, "_tlbM": tlb_miss,
                "_ptg": page_table.get, "_xl": translate,
                "_l1S": l1_sets, "_l1O": l1, "_l1M": l1_miss_path,
                "_l1wb": l1.take_writeback_cost,
                "_acc": acc, "_busO": bus,
            }

            def render_mem(expr: str) -> list[str]:
                lines = [f"_am = {expr}"]
                body = [f"_avp = _am >> {_PAGE_SHIFT}",
                        "if _avp in _tlbE:",
                        "    _tlbO.hits += 1",
                        "    del _tlbE[_avp]",
                        "    _tlbE[_avp] = True"]
                if ledger:
                    body += ["else:",
                             f"    _acc[{_ACC_TLB}] += _tlbM(_avp)"]
                else:
                    body += ["    _amc = 0",
                             "else:",
                             "    _amc = _tlbM(_avp)"]
                body += ["_apf = _ptg(_avp)",
                         "if _apf is None:",
                         "    _apa = _xl(_am)",
                         "else:",
                         f"    _apa = (_apf << {_PAGE_SHIFT})"
                         f" | (_am & {_page_mask})",
                         f"_ali = _apa >> {l1_shift}",
                         f"_awy = _l1S[_ali % {l1_nsets}]",
                         f"_atg = _ali // {l1_nsets}",
                         "if _atg in _awy:",
                         "    _l1O.hits += 1",
                         "    del _awy[_atg]",
                         "    _awy[_atg] = True"]
                if ledger:
                    body += [f"    _amc = {l1_hit_cycles}",
                             "    if _l1O._pending_writeback:",
                             "        _amc += _l1wb()",
                             f"    _acc[{_ACC_CACHE}] += _amc",
                             "else:",
                             "    _asb = _busO.total_stall_cycles",
                             f"    _amc = _l1M(_apa, _ali % {l1_nsets},"
                             " _atg)",
                             "    _ast = _busO.total_stall_cycles - _asb",
                             "    if _ast:",
                             f"        _acc[{_ACC_CACHE}] += _amc - _ast",
                             f"        _acc[{_ACC_BUS}] += _ast",
                             "    else:",
                             f"        _acc[{_ACC_CACHE}] += _amc"]
                else:
                    body += [f"    _amc += {l1_hit_cycles}",
                             "    if _l1O._pending_writeback:",
                             "        _amc += _l1wb()",
                             "else:",
                             f"    _amc += _l1M(_apa, _ali % {l1_nsets},"
                             " _atg)",
                             f"_acc[{_ACC_INSTR}] += _amc"]
                if registerized is not None:
                    lines.append(f"if not ({registerized[0]} <= _am"
                                 f" < {registerized[1]}):")
                    lines += ["    " + b for b in body]
                else:
                    lines += body
                return lines

            self._mem_inline = (render_mem, inline_ns)

        self.charge = charge
        self.charge_block = charge_block
        self.mem_access = mem_access
        self.fetch_access = mem_access
        self.branch = branch

    def on_quantum(self, interpreter: "Interpreter") -> None:
        self.flush_charges()
        self.machine.service_world()

    def native_call(self, index: int, interpreter: "Interpreter") -> None:
        spec = self._specs[index]
        args = interpreter.pop_args(spec.num_args)
        result = self._handlers[index](interpreter, args)
        if spec.returns_value:
            interpreter.push_result(result)

    # -- shared helpers -----------------------------------------------------------

    def _guest_array(self, vm: "Interpreter", handle: int):
        if handle == 0:
            raise GuestThrow(EXC_NULL_REFERENCE)
        return vm.heap.get(handle)

    def _charge_st_check(self) -> None:
        """The read-compare-write next-entry check of §3.5 (both modes)."""
        for vaddr in self.st_buffer.check_addresses():
            self.mem_access(vaddr)

    def _try_recv(self, vm: "Interpreter", buf_handle: int) -> int:
        """One non-blocking receive attempt; returns byte count or -1."""
        self._charge_st_check()
        # Event-injection boundary: the session (and its tracer) must see
        # the clock exactly as the unbatched path would.
        self.flush_charges()
        staged = self.st_buffer.head() if self.machine.is_play else None
        payload = self.session.packet_due(vm.instruction_count, staged)
        if payload is None:
            return -1
        if self.machine.is_play:
            self.st_buffer.consume()
        else:
            # Keep the ring indices (and hence the charged addresses)
            # aligned with play: replay stages the logged packet into the
            # same slot before consuming it (the SC's job during replay).
            self.st_buffer.stage(payload)
            self.st_buffer.consume()
        if self.session.injection_overhead_cycles:
            self.clock.advance(self.session.injection_overhead_cycles,
                               Source.INJECTION)
        obj = self._guest_array(vm, buf_handle)
        count = min(len(payload), len(obj.data))
        for vaddr in self.st_buffer.copy_addresses(count):
            self.mem_access(vaddr)
        data = obj.data
        base = obj.vaddr + 16
        for i in range(count):
            data[i] = payload[i]
            self.mem_access(base + i * _WORD)
        return count

    def _input_exhausted(self) -> bool:
        if self.machine.is_play:
            return self.machine.no_more_arrivals()
        return self.session.exhausted()

    # -- natives ----------------------------------------------------------------------

    def _native_print_int(self, vm: "Interpreter", args: list) -> None:
        self.console.append(int(args[0]))

    def _native_print_float(self, vm: "Interpreter", args: list) -> None:
        self.console.append(float(args[0]))

    def _native_nano_time(self, vm: "Interpreter", args: list) -> int:
        self.flush_charges()    # the guest is about to read the clock
        live = int(self.clock.now_ns())
        # Figure 4: identical memory accesses in play and replay.
        cell_vaddr = self.session.time_cell.vaddr
        self.mem_access(cell_vaddr)
        self.mem_access(cell_vaddr)
        self.flush_charges()    # event-injection boundary
        value = self.session.observe_time(vm.instruction_count, live)
        if self.session.injection_overhead_cycles:
            self.clock.advance(self.session.injection_overhead_cycles,
                               Source.INJECTION)
        return value

    def _native_send_packet(self, vm: "Interpreter", args: list) -> None:
        buf_handle, length = args
        obj = self._guest_array(vm, buf_handle)
        if length < 0 or length > len(obj.data):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        data = obj.data
        base = obj.vaddr + 16
        payload = bytearray(length)
        for i in range(length):
            payload[i] = int(data[i]) & 0xFF
            self.mem_access(base + i * _WORD)
        for vaddr in self.ts_buffer.write_addresses(length):
            self.mem_access(vaddr)
        self.ts_buffer.advance()
        packet = bytes(payload)
        # Transmission boundary: the tx timestamp is a clock read.
        self.flush_charges()
        cycle = self.clock.cycles
        self.tx_trace.append((cycle, packet))
        # The SC reads the entry off the T-S buffer in both modes (it
        # forwards during play, discards during replay) — bus traffic is
        # the same either way.
        self.bus.add_traffic(0.15)
        if self.machine.is_play:
            self.machine.nic.transmit(cycle, packet)
            if self.machine.workload is not None:
                self.machine.workload.on_transmit(self.machine, cycle,
                                                  packet)

    def _native_recv_packet(self, vm: "Interpreter", args: list) -> int:
        return self._try_recv(vm, args[0])

    def _native_wait_packet(self, vm: "Interpreter", args: list) -> int:
        stride = self.config.poll_stride_cycles
        session = self.session
        while True:
            count = self._try_recv(vm, args[0])
            if count >= 0:
                return count
            if self._input_exhausted():
                return -1
            if (not self.machine.is_play
                    and not session.packet_pending()):
                # A damaged log can leave a non-PACKET entry at the
                # cursor while the guest blocks for a packet; nothing
                # can ever consume it, so the wait is hopeless and the
                # guest must see end-of-input rather than spin to the
                # instruction budget.
                return -1
            if session.skips_waits:
                target = session.wait_target(vm.instruction_count)
                if target is None:
                    return -1
                # A conventional replayer fast-forwards through the idle
                # phase: the instruction counter jumps, wall time barely
                # moves (Fig 3's "replay faster than play" segments).
                vm.instruction_count = max(vm.instruction_count, target)
                self.clock.advance(2_000, Source.INJECTION)
                continue
            # One poll iteration = one counted point in the execution.
            vm.instruction_count += 1
            self.clock.advance(self.cpu.scale_block(stride), Source.IDLE)
            self.machine.service_world()

    def _native_storage_read(self, vm: "Interpreter", args: list) -> int:
        from repro.determinism import mix64
        from repro.machine.natives import STORAGE_BLOCK_WORDS

        block, buf_handle = args
        if block < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        self.flush_charges()    # I/O boundary
        obj = self._guest_array(vm, buf_handle)
        # The SC performs the I/O (§3.7); the TC waits for the (possibly
        # padded) device latency and the DMA raises bus traffic.
        latency = self.machine.storage.read(block)
        self.clock.advance(latency, Source.STORAGE)
        self.bus.add_traffic(0.25)
        count = min(STORAGE_BLOCK_WORDS, len(obj.data))
        data = obj.data
        base = obj.vaddr + 16
        for i in range(count):
            # Deterministic block contents: a pure function of the block
            # number, so storage needs no log entries.
            data[i] = mix64(block * STORAGE_BLOCK_WORDS + i) & 0x7FFFFFFF
            self.mem_access(base + i * _WORD)
        return count

    def _native_covert_delay(self, vm: "Interpreter", args: list) -> None:
        (cycles,) = args
        if cycles < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        if self.machine.covert_enabled:
            self.flush_charges()    # covert boundary
            self.clock.advance(cycles, Source.COVERT)

    def _native_covert_next_delay(self, vm: "Interpreter",
                                  args: list) -> int:
        """Next entry of the channel encoder's delay schedule (§6.6).

        On the compromised machine (play with a schedule installed) this
        hands the guest its next covert delay; on a clean machine — and in
        particular during an audit replay — it returns 0, so the replayed
        timing is what the timing "ought to have been".  The returned
        value flows only into ``covert_delay``, never into control flow or
        outputs, so it needs no log entry.
        """
        return self.machine.next_covert_delay()

    def _native_busy_cycles(self, vm: "Interpreter", args: list) -> None:
        """A deterministic compute block abstracted to its cycle cost.

        Models a tight data-independent kernel (checksum/compression/...)
        whose duration is a pure function of its argument: the same noise
        sources apply as to interpreted code (via ``scale_block``), and
        replay reproduces it exactly because the argument is part of the
        deterministic data flow.
        """
        (cycles,) = args
        if cycles < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        if cycles:
            self.clock.advance(self.cpu.scale_block(cycles), Source.COMPUTE)

    def _native_spawn(self, vm: "Interpreter", args: list) -> None:
        func_idx, arg = args
        if not 0 <= func_idx < len(vm.program.functions):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        vm.spawn_thread(vm.program.functions[func_idx], [arg])

    def _native_exit(self, vm: "Interpreter", args: list) -> None:
        vm.halted = True

    # -- executive syscalls -------------------------------------------------
    #
    # These natives are only meaningful on a machine driven by the guest
    # executive (:mod:`repro.exec`); the executive installs itself as
    # ``self.executive`` before the first slice.  The handlers delegate
    # immediately: all scheduling, mailbox, and charging policy lives in
    # one place.

    def _exec(self):
        executive = self.executive
        if executive is None:
            from repro.errors import VMRuntimeError
            raise VMRuntimeError(
                "executive syscall outside a multi-process (exec) run")
        return executive

    def _native_exec_yield(self, vm: "Interpreter", args: list) -> None:
        self._exec().sys_yield(vm)

    def _native_msg_send(self, vm: "Interpreter", args: list) -> None:
        mbox, buf_handle, length = args
        self._exec().sys_send(vm, mbox, buf_handle, length)

    def _native_msg_recv(self, vm: "Interpreter", args: list) -> int:
        mbox, buf_handle = args
        return self._exec().sys_recv(vm, mbox, buf_handle)

    def _native_proc_spawn(self, vm: "Interpreter", args: list) -> int:
        return self._exec().sys_spawn(vm, args[0])

    def _native_mbox_len(self, vm: "Interpreter", args: list) -> int:
        return self._exec().sys_mbox_len(vm, args[0])

    def _native_proc_id(self, vm: "Interpreter", args: list) -> int:
        return self._exec().sys_proc_id(vm)

"""The timed core: the :class:`~repro.vm.platform.Platform` implementation
backed by the simulated hardware.

Everything the paper's §3 describes comes together here:

* per-instruction cycle charging through the CPU model (with its residual
  speculation noise and optional frequency scaling);
* data/instruction accesses through TLB → virt-phys translation →
  physically-indexed L1/L2 → DRAM over the contended bus;
* conditional branches through the 2-bit predictor;
* the S-T / T-S ring-buffer protocol with symmetric costs in play and
  replay (§3.4-3.5);
* the blocking-receive idle loop, which advances the instruction counter
  once per poll stride so arrivals are identifiable points (§3.2) and
  which the *naive* replayer skips (§2.5);
* the native interface (I/O, ``nano_time``, ``covert_delay``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.cpu import CostClass
from repro.obs.ledger import Source
from repro.vm.heap import GuestThrow
from repro.vm.isa import EXC_INDEX_OUT_OF_BOUNDS, EXC_NULL_REFERENCE
from repro.vm.platform import Platform

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.vm.interpreter import Interpreter

_WORD = 8
_PAGE_SHIFT = 12


class TimedCorePlatform(Platform):
    """Timed-core execution environment for one machine run."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        config = machine.config
        self.config = config
        # Hot-path aliases.
        self.clock = machine.clock
        self.cpu = machine.cpu
        self.tlb = machine.tlb
        self.space = machine.address_space
        self.hierarchy = machine.hierarchy
        self.predictor = machine.predictor
        self.bus = machine.bus
        self.session = machine.session
        self.st_buffer = machine.st_buffer
        self.ts_buffer = machine.ts_buffer
        # Attribution ledger, if the machine was built with observability.
        # ``mem_access`` keeps a combined-advance fast path when absent.
        self._ledger = machine.clock.ledger
        self.console: list = []
        self.tx_trace: list[tuple[int, bytes]] = []
        # A JIT register-allocates locals: LOAD/STORE of stack slots do
        # not touch the memory hierarchy (Table 2's Oracle-JIT model).
        from repro.machine.config import RuntimeKind
        from repro.vm.heap import HEAP_BASE
        from repro.vm.interpreter import STACK_BASE

        self._registerized_base = ((STACK_BASE, HEAP_BASE)
                                   if config.runtime == RuntimeKind.ORACLE_JIT
                                   else None)
        registry = machine.registry
        self._specs = [registry.spec(i) for i in range(len(registry))]
        self._handlers = [getattr(self, f"_native_{spec.name}")
                          for spec in self._specs]

    # -- Platform interface ---------------------------------------------------

    def charge(self, cost_class: CostClass) -> None:
        self.clock.advance(self.cpu.instruction_cost(cost_class),
                           Source.INSTRUCTION)

    def mem_access(self, vaddr: int) -> None:
        if self._registerized_base is not None and \
                self._registerized_base[0] <= vaddr < \
                self._registerized_base[1]:
            return
        if self._ledger is None:
            cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
            paddr = self.space.translate(vaddr)
            cost += self.hierarchy.access(paddr)
            if cost:
                self.clock.advance(cost)
            return
        # Attributed path: TLB walk, cache/DRAM latency, and the bus-stall
        # share of DRAM fills land in their own buckets.  The split changes
        # only bookkeeping — the summed advance is identical to the fast
        # path, so cycle counts stay bit-identical either way.
        tlb_cost = self.tlb.access(vaddr >> _PAGE_SHIFT)
        if tlb_cost:
            self.clock.advance(tlb_cost, Source.TLB)
        paddr = self.space.translate(vaddr)
        stall_before = self.bus.total_stall_cycles
        cost = self.hierarchy.access(paddr)
        stall = self.bus.total_stall_cycles - stall_before
        if stall:
            self.clock.advance(cost - stall, Source.CACHE)
            self.clock.advance(stall, Source.BUS)
        elif cost:
            self.clock.advance(cost, Source.CACHE)

    def fetch_access(self, code_vaddr: int) -> None:
        self.mem_access(code_vaddr)

    def branch(self, branch_site: int, taken: bool) -> None:
        penalty = self.predictor.record(branch_site, taken)
        if penalty:
            self.clock.advance(penalty, Source.BRANCH)

    def charge_cycles(self, cycles: int, source: str = "other") -> None:
        self.clock.advance(cycles, source)

    def on_quantum(self, interpreter: "Interpreter") -> None:
        self.machine.service_world()

    def native_call(self, index: int, interpreter: "Interpreter") -> None:
        spec = self._specs[index]
        args = interpreter.pop_args(spec.num_args)
        result = self._handlers[index](interpreter, args)
        if spec.returns_value:
            interpreter.push_result(result)

    # -- shared helpers -----------------------------------------------------------

    def _guest_array(self, vm: "Interpreter", handle: int):
        if handle == 0:
            raise GuestThrow(EXC_NULL_REFERENCE)
        return vm.heap.get(handle)

    def _charge_st_check(self) -> None:
        """The read-compare-write next-entry check of §3.5 (both modes)."""
        for vaddr in self.st_buffer.check_addresses():
            self.mem_access(vaddr)

    def _try_recv(self, vm: "Interpreter", buf_handle: int) -> int:
        """One non-blocking receive attempt; returns byte count or -1."""
        self._charge_st_check()
        staged = self.st_buffer.head() if self.machine.is_play else None
        payload = self.session.packet_due(vm.instruction_count, staged)
        if payload is None:
            return -1
        if self.machine.is_play:
            self.st_buffer.consume()
        else:
            # Keep the ring indices (and hence the charged addresses)
            # aligned with play: replay stages the logged packet into the
            # same slot before consuming it (the SC's job during replay).
            self.st_buffer.stage(payload)
            self.st_buffer.consume()
        if self.session.injection_overhead_cycles:
            self.clock.advance(self.session.injection_overhead_cycles,
                               Source.INJECTION)
        obj = self._guest_array(vm, buf_handle)
        count = min(len(payload), len(obj.data))
        for vaddr in self.st_buffer.copy_addresses(count):
            self.mem_access(vaddr)
        data = obj.data
        base = obj.vaddr + 16
        for i in range(count):
            data[i] = payload[i]
            self.mem_access(base + i * _WORD)
        return count

    def _input_exhausted(self) -> bool:
        if self.machine.is_play:
            return self.machine.no_more_arrivals()
        return self.session.exhausted()

    # -- natives ----------------------------------------------------------------------

    def _native_print_int(self, vm: "Interpreter", args: list) -> None:
        self.console.append(int(args[0]))

    def _native_print_float(self, vm: "Interpreter", args: list) -> None:
        self.console.append(float(args[0]))

    def _native_nano_time(self, vm: "Interpreter", args: list) -> int:
        live = int(self.clock.now_ns())
        # Figure 4: identical memory accesses in play and replay.
        cell_vaddr = self.session.time_cell.vaddr
        self.mem_access(cell_vaddr)
        self.mem_access(cell_vaddr)
        value = self.session.observe_time(vm.instruction_count, live)
        if self.session.injection_overhead_cycles:
            self.clock.advance(self.session.injection_overhead_cycles,
                               Source.INJECTION)
        return value

    def _native_send_packet(self, vm: "Interpreter", args: list) -> None:
        buf_handle, length = args
        obj = self._guest_array(vm, buf_handle)
        if length < 0 or length > len(obj.data):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        data = obj.data
        base = obj.vaddr + 16
        payload = bytearray(length)
        for i in range(length):
            payload[i] = int(data[i]) & 0xFF
            self.mem_access(base + i * _WORD)
        for vaddr in self.ts_buffer.write_addresses(length):
            self.mem_access(vaddr)
        self.ts_buffer.advance()
        packet = bytes(payload)
        cycle = self.clock.cycles
        self.tx_trace.append((cycle, packet))
        # The SC reads the entry off the T-S buffer in both modes (it
        # forwards during play, discards during replay) — bus traffic is
        # the same either way.
        self.bus.add_traffic(0.15)
        if self.machine.is_play:
            self.machine.nic.transmit(cycle, packet)
            if self.machine.workload is not None:
                self.machine.workload.on_transmit(self.machine, cycle,
                                                  packet)

    def _native_recv_packet(self, vm: "Interpreter", args: list) -> int:
        return self._try_recv(vm, args[0])

    def _native_wait_packet(self, vm: "Interpreter", args: list) -> int:
        stride = self.config.poll_stride_cycles
        session = self.session
        while True:
            count = self._try_recv(vm, args[0])
            if count >= 0:
                return count
            if self._input_exhausted():
                return -1
            if (not self.machine.is_play
                    and not session.packet_pending()):
                # A damaged log can leave a non-PACKET entry at the
                # cursor while the guest blocks for a packet; nothing
                # can ever consume it, so the wait is hopeless and the
                # guest must see end-of-input rather than spin to the
                # instruction budget.
                return -1
            if session.skips_waits:
                target = session.wait_target(vm.instruction_count)
                if target is None:
                    return -1
                # A conventional replayer fast-forwards through the idle
                # phase: the instruction counter jumps, wall time barely
                # moves (Fig 3's "replay faster than play" segments).
                vm.instruction_count = max(vm.instruction_count, target)
                self.clock.advance(2_000, Source.INJECTION)
                continue
            # One poll iteration = one counted point in the execution.
            vm.instruction_count += 1
            self.clock.advance(self.cpu.scale_block(stride), Source.IDLE)
            self.machine.service_world()

    def _native_storage_read(self, vm: "Interpreter", args: list) -> int:
        from repro.determinism import mix64
        from repro.machine.natives import STORAGE_BLOCK_WORDS

        block, buf_handle = args
        if block < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        obj = self._guest_array(vm, buf_handle)
        # The SC performs the I/O (§3.7); the TC waits for the (possibly
        # padded) device latency and the DMA raises bus traffic.
        latency = self.machine.storage.read(block)
        self.clock.advance(latency, Source.STORAGE)
        self.bus.add_traffic(0.25)
        count = min(STORAGE_BLOCK_WORDS, len(obj.data))
        data = obj.data
        base = obj.vaddr + 16
        for i in range(count):
            # Deterministic block contents: a pure function of the block
            # number, so storage needs no log entries.
            data[i] = mix64(block * STORAGE_BLOCK_WORDS + i) & 0x7FFFFFFF
            self.mem_access(base + i * _WORD)
        return count

    def _native_covert_delay(self, vm: "Interpreter", args: list) -> None:
        (cycles,) = args
        if cycles < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        if self.machine.covert_enabled:
            self.clock.advance(cycles, Source.COVERT)

    def _native_covert_next_delay(self, vm: "Interpreter",
                                  args: list) -> int:
        """Next entry of the channel encoder's delay schedule (§6.6).

        On the compromised machine (play with a schedule installed) this
        hands the guest its next covert delay; on a clean machine — and in
        particular during an audit replay — it returns 0, so the replayed
        timing is what the timing "ought to have been".  The returned
        value flows only into ``covert_delay``, never into control flow or
        outputs, so it needs no log entry.
        """
        return self.machine.next_covert_delay()

    def _native_busy_cycles(self, vm: "Interpreter", args: list) -> None:
        """A deterministic compute block abstracted to its cycle cost.

        Models a tight data-independent kernel (checksum/compression/...)
        whose duration is a pure function of its argument: the same noise
        sources apply as to interpreted code (via ``scale_block``), and
        replay reproduces it exactly because the argument is part of the
        deterministic data flow.
        """
        (cycles,) = args
        if cycles < 0:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        if cycles:
            self.clock.advance(self.cpu.scale_block(cycles), Source.COMPUTE)

    def _native_spawn(self, vm: "Interpreter", args: list) -> None:
        func_idx, arg = args
        if not 0 <= func_idx < len(vm.program.functions):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        vm.spawn_thread(vm.program.functions[func_idx], [arg])

    def _native_exit(self, vm: "Interpreter", args: list) -> None:
        vm.halted = True

"""Machine configuration: hardware geometry plus noise-mitigation switches.

A :class:`MachineConfig` describes both a machine *type* (the "T" of the
Alice/Bob scenario, §2.1: frequency, cache sizes, storage kind) and an
*environment* (which of Table 1's noise sources are active and which
mitigations are applied).  Presets for the paper's experimental
environments live in :mod:`repro.machine.noise`; the named machine types
for the cloud-verification scenario are below.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import HardwareConfigError
from repro.hw.cache import CacheConfig, ReplacementPolicy
from repro.hw.cpu import INTERPRETER_COSTS, JIT_COSTS


class RuntimeKind(enum.Enum):
    """Which runtime cost table the machine uses (Table 2 comparators)."""

    SANITY = "sanity"          # our TDR interpreter
    ORACLE_INT = "oracle-int"  # conventional interpreter (no TDR design)
    ORACLE_JIT = "oracle-jit"  # JIT-compiled runtime


class StorageKind(enum.Enum):
    SSD = "ssd"
    HDD = "hdd"


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description.

    The mitigation flags map one-to-one onto Table 1:

    ===========================  =======================================
    Flag                         Table 1 row
    ===========================  =======================================
    ``irqs_to_supporting_core``  Interrupts → handle on a separate core
    ``preemption_enabled``       Preemption → run in kernel mode (off)
    ``flush_caches_at_start``    Caches → flush at the beginning
    ``deterministic_frames``     Caches → use the same physical frames
    ``random_initial_cache``     (the *absence* of the flush mitigation)
    ``freq_scaling`` / ``turbo`` CPU features → disable in BIOS
    ``pad_storage``              I/O → pad variable-time operations
    ``storage``                  I/O → use SSDs instead of HDDs
    ===========================  =======================================
    """

    name: str = "sanity-default"
    frequency_hz: float = 3.4e9
    runtime: RuntimeKind = RuntimeKind.SANITY

    # Cache / memory geometry.  Sizes are scaled-down versions of the
    # i7-4770's caches so the Python cache model stays fast while keeping
    # realistic hit/miss structure.
    l1_config: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=16 * 1024, line_bytes=64, ways=4, hit_cycles=4))
    l2_config: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=128 * 1024, line_bytes=64, ways=8, hit_cycles=12))
    dram_cycles: int = 200
    num_frames: int = 8192
    tlb_entries: int = 64
    tlb_miss_cycles: int = 30

    # Branch prediction.
    btb_entries: int = 1024
    mispredict_cycles: int = 14

    # Noise sources / mitigations (defaults = full Sanity mitigation set).
    irqs_enabled: bool = True
    irqs_to_supporting_core: bool = True
    preemption_enabled: bool = False
    preempt_mean_interval_cycles: float = 2.0e6
    preempt_mean_duration_cycles: float = 4.0e5
    flush_caches_at_start: bool = True
    deterministic_frames: bool = True
    random_initial_cache: bool = False
    freq_scaling: bool = False
    turbo: bool = False
    #: Residual CPU noise (speculation/prefetching): std-dev of the
    #: per-period multiplicative cost factor.  Irreducible — disabling
    #: BIOS features only avoids *amplifying* it (Table 1: "Reduced").
    speculation_sigma: float = 0.004
    bus_contention_probability: float = 0.05
    bus_max_stall_cycles: int = 40

    # Multi-tenancy (§7 "Discussion"): a co-located VM sharing the
    # platform.  Its activity pollutes the shared L2 and raises bus
    # traffic; ``cache_partitioning`` (page-coloring-style, after
    # Liedtke et al. [33]) gives the timed core a private half of the L2,
    # removing the cache cross-talk at the cost of capacity — the paper's
    # speculated mitigation.
    co_tenant_intensity: float = 0.0
    cache_partitioning: bool = False

    # I/O.
    storage: StorageKind = StorageKind.SSD
    pad_storage: bool = True
    sc_processing_cycles: int = 3_000   # SC cost to stage a packet
    background_bus_traffic: float = 0.0  # other tenants / system activity

    # Timed-core idle polling (§3.4: "inspects this buffer at regular
    # intervals").  ~7 us at 3.4 GHz.
    poll_stride_cycles: int = 25_000

    # VM scheduling.
    thread_quantum: int = 4096
    vm_poll_interval: int = 256

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise HardwareConfigError("frequency must be positive")
        if self.poll_stride_cycles <= 0:
            raise HardwareConfigError("poll stride must be positive")
        if self.flush_caches_at_start and self.random_initial_cache:
            raise HardwareConfigError(
                "flush_caches_at_start and random_initial_cache are "
                "mutually exclusive")
        if not 0.0 <= self.co_tenant_intensity <= 1.0:
            raise HardwareConfigError(
                f"co-tenant intensity out of range: "
                f"{self.co_tenant_intensity}")

    @property
    def cost_table(self) -> dict:
        if self.runtime == RuntimeKind.ORACLE_JIT:
            return dict(JIT_COSTS)
        return dict(INTERPRETER_COSTS)

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Named machine types for the cloud-verification scenario (§2.1): Alice
#: sells "fast" machines and might secretly provision "slow" ones.
MACHINE_TYPES: dict[str, MachineConfig] = {
    "fast": MachineConfig(name="fast", frequency_hz=3.4e9),
    "slow": MachineConfig(
        name="slow", frequency_hz=2.0e9, dram_cycles=260,
        l2_config=CacheConfig(size_bytes=64 * 1024, line_bytes=64, ways=8,
                              hit_cycles=14)),
}


def machine_type(name: str) -> MachineConfig:
    """Look up a named machine type."""
    try:
        return MACHINE_TYPES[name]
    except KeyError:
        raise HardwareConfigError(
            f"unknown machine type '{name}'; known: "
            f"{sorted(MACHINE_TYPES)}") from None

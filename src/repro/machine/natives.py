"""The machine's native interface: the VM's window to the world.

Every native is implemented on the timed-core platform
(:mod:`repro.machine.platform`); this module declares the table — names,
arities, MiniJ type signatures — that the assembler and the MiniJ compiler
resolve against.

The ``covert_delay`` native is the paper's instrumentation hook (§6.6):
"The channels add delays using a special JVM primitive that we can enable
or disable at runtime; this allows us to easily collect traces with and
without timing channels, without making changes to the server code."
"""

from __future__ import annotations

from repro.vm.natives import NativeRegistry, NativeSpec

#: (name, num_args, returns_value, handler method name on the platform).
_NATIVE_TABLE: list[tuple[str, int, bool]] = [
    ("print_int", 1, False),
    ("print_float", 1, False),
    ("nano_time", 0, True),
    ("send_packet", 2, False),
    ("recv_packet", 1, True),
    ("wait_packet", 1, True),
    ("storage_read", 2, True),
    ("covert_delay", 1, False),
    ("covert_next_delay", 0, True),
    ("busy_cycles", 1, False),
    ("spawn", 2, False),
    ("exit", 0, False),
    # Executive syscalls (multi-process runs; appended to preserve the
    # index ABI of programs assembled before the executive existed).
    ("exec_yield", 0, False),
    ("msg_send", 3, False),
    ("msg_recv", 2, True),
    ("proc_spawn", 1, True),
    ("mbox_len", 1, True),
    ("proc_id", 0, True),
]

#: MiniJ signatures for :func:`repro.lang.compile_minij`.
MACHINE_NATIVE_SIGNATURES: dict[str, tuple[tuple[str, ...], str]] = {
    "print_int": (("int",), "void"),
    "print_float": (("float",), "void"),
    "nano_time": ((), "int"),
    "send_packet": (("int[]", "int"), "void"),
    "recv_packet": (("int[]",), "int"),
    "wait_packet": (("int[]",), "int"),
    "storage_read": (("int", "int[]"), "int"),
    "covert_delay": (("int",), "void"),
    "covert_next_delay": ((), "int"),
    "busy_cycles": (("int",), "void"),
    "spawn": (("int", "int"), "void"),
    "exit": ((), "void"),
    "exec_yield": ((), "void"),
    "msg_send": (("int", "int[]", "int"), "void"),
    "msg_recv": (("int", "int[]"), "int"),
    "proc_spawn": (("int",), "int"),
    "mbox_len": (("int",), "int"),
    "proc_id": ((), "int"),
}


def build_registry() -> NativeRegistry:
    """The machine's native registry (handlers dispatch on the platform)."""
    registry = NativeRegistry()
    for name, num_args, returns_value in _NATIVE_TABLE:
        registry.register(NativeSpec(name, num_args, returns_value,
                                     handler=None))
    return registry


#: A shared immutable registry instance; index order is part of the
#: machine ABI (programs assembled against it run on any Machine).
MACHINE_REGISTRY = build_registry()

#: Words returned by one ``storage_read`` call.
STORAGE_BLOCK_WORDS = 64

"""Client workloads that drive a machine during play.

During play, the outside world sends packets to the machine; during replay
those arrivals come from the log instead, so workloads are play-only.

Two workload shapes:

* :class:`ScriptedArrivals` — a fixed schedule of (cycle, payload) pairs;
* :class:`InteractiveClient` — a request/response client behind a WAN
  link: it sends the next request only after receiving the previous
  response, plus think time and network jitter.  This mirrors the paper's
  NFS client reading 30 files "one after the other" from across the U.S.
  East coast (§6.6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.determinism import SplitMix64

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


@dataclass(frozen=True)
class Request:
    """One client request; ``responses_expected`` counts the reply packets
    the server will send for it (usually 1)."""

    payload: bytes
    responses_expected: int = 1


class Workload(abc.ABC):
    """Play-side input driver."""

    @abc.abstractmethod
    def start(self, machine: "Machine") -> None:
        """Schedule initial arrivals."""

    @abc.abstractmethod
    def on_transmit(self, machine: "Machine", cycle: int,
                    payload: bytes) -> None:
        """React to a packet the machine transmitted."""

    @abc.abstractmethod
    def finished(self) -> bool:
        """True when no further arrivals will ever be scheduled."""


class ScriptedArrivals(Workload):
    """A fixed arrival schedule, fully determined up front."""

    def __init__(self, arrivals: list[tuple[int, bytes]]) -> None:
        self.arrivals = sorted(arrivals)
        self._started = False

    def start(self, machine: "Machine") -> None:
        self._started = True
        for cycle, payload in self.arrivals:
            machine.schedule_arrival(cycle, payload)

    def on_transmit(self, machine: "Machine", cycle: int,
                    payload: bytes) -> None:
        return None

    def finished(self) -> bool:
        return self._started


class InteractiveClient(Workload):
    """Request/response client behind a jittery WAN link.

    Timing model per request: the request for item k+1 arrives at the
    server ``one_way_delay + think_time + jitter`` after the k-th response
    was transmitted.  Jitter draws from the provided jitter model (see
    :mod:`repro.net.jitter`); think time is exponential.

    After the last response, a ``shutdown_payload`` arrives (if set), which
    lets a server guest exit its accept loop deterministically.
    """

    def __init__(self, requests: list[Request], rng: SplitMix64,
                 jitter_model=None,
                 one_way_delay_cycles: int = 17_000_000,   # ~5 ms at 3.4 GHz
                 mean_think_cycles: float = 1_000_000.0,
                 first_arrival_cycle: int = 500_000,
                 shutdown_payload: bytes | None = None) -> None:
        if not requests:
            raise ValueError("client needs at least one request")
        self.requests = requests
        self._rng = rng
        self._jitter_model = jitter_model
        self.one_way_delay_cycles = one_way_delay_cycles
        self.mean_think_cycles = mean_think_cycles
        self.first_arrival_cycle = first_arrival_cycle
        self.shutdown_payload = shutdown_payload
        self._next_request = 0
        self._responses_outstanding = 0
        self._shutdown_sent = False
        #: (tx_cycle at server, payload) for packets the client received —
        #: useful for receiver-side covert-channel decoding experiments.
        self.received: list[tuple[int, bytes]] = []

    def _jitter_cycles(self) -> int:
        if self._jitter_model is None:
            return 0
        return self._jitter_model.sample_cycles(self._rng)

    def _schedule_next_request(self, machine: "Machine", cycle: int) -> None:
        if self._next_request >= len(self.requests):
            if self.shutdown_payload is not None and not self._shutdown_sent:
                self._shutdown_sent = True
                arrival = (cycle + self.one_way_delay_cycles
                           + self._jitter_cycles())
                machine.schedule_arrival(arrival, self.shutdown_payload)
            return
        request = self.requests[self._next_request]
        self._next_request += 1
        self._responses_outstanding = request.responses_expected
        think = int(self._rng.exponential(self.mean_think_cycles))
        arrival = (cycle + self.one_way_delay_cycles + think
                   + self._jitter_cycles())
        machine.schedule_arrival(arrival, request.payload)

    def start(self, machine: "Machine") -> None:
        base = self.first_arrival_cycle + self._jitter_cycles()
        request = self.requests[0]
        self._next_request = 1
        self._responses_outstanding = request.responses_expected
        machine.schedule_arrival(base, request.payload)

    def on_transmit(self, machine: "Machine", cycle: int,
                    payload: bytes) -> None:
        self.received.append((cycle, payload))
        if self._responses_outstanding > 0:
            self._responses_outstanding -= 1
            if self._responses_outstanding == 0:
                self._schedule_next_request(machine, cycle)

    def finished(self) -> bool:
        done_requests = self._next_request >= len(self.requests) and \
            self._responses_outstanding == 0
        if self.shutdown_payload is None:
            return done_requests
        return done_requests and self._shutdown_sent

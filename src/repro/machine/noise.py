"""Noise-environment presets matching the paper's experimental setups.

Four environments appear in Figure 2 (zeroing a 4 MB array):

1. *user-noisy* — user level with GUI and network on;
2. *user-quiet* — user level, single-user mode, RAM disk;
3. *kernel*     — kernel mode;
4. *kernel-quiet* — kernel mode, IRQs off, caches flushed, pinned core.

Three more appear in Figure 6 (SciMark timing stability):

* *dirty*  — Oracle JVM, multi-user mode with GUI and networking;
* *clean*  — Oracle JVM, single-user mode, only the JVM running;
* *sanity* — the full Sanity mitigation set (the library default).

Each preset is a :class:`MachineConfig` differing only in which noise
sources are active, so ablations (Table 1) can toggle them one at a time.
"""

from __future__ import annotations

import enum

from repro.errors import HardwareConfigError
from repro.machine.config import MachineConfig, RuntimeKind


class NoiseScenario(enum.Enum):
    USER_NOISY = "user-noisy"
    USER_QUIET = "user-quiet"
    KERNEL = "kernel"
    KERNEL_QUIET = "kernel-quiet"
    DIRTY = "dirty"
    CLEAN = "clean"
    SANITY = "sanity"


def _user_noisy() -> MachineConfig:
    return MachineConfig(
        name="user-noisy",
        runtime=RuntimeKind.ORACLE_INT,
        irqs_to_supporting_core=False,
        preemption_enabled=True,
        preempt_mean_interval_cycles=1.2e6,
        preempt_mean_duration_cycles=6.0e5,
        flush_caches_at_start=False,
        random_initial_cache=True,
        deterministic_frames=False,
        freq_scaling=True,
        turbo=True,
        pad_storage=False,
        background_bus_traffic=0.5,
        bus_contention_probability=0.25)


def _user_quiet() -> MachineConfig:
    return MachineConfig(
        name="user-quiet",
        runtime=RuntimeKind.ORACLE_INT,
        irqs_to_supporting_core=False,
        preemption_enabled=True,
        preempt_mean_interval_cycles=8.0e6,
        preempt_mean_duration_cycles=1.5e5,
        flush_caches_at_start=False,
        random_initial_cache=True,
        deterministic_frames=False,
        freq_scaling=True,
        turbo=False,
        pad_storage=False,
        background_bus_traffic=0.1,
        bus_contention_probability=0.12)


def _kernel() -> MachineConfig:
    return MachineConfig(
        name="kernel",
        runtime=RuntimeKind.ORACLE_INT,
        irqs_to_supporting_core=False,
        preemption_enabled=False,
        flush_caches_at_start=False,
        random_initial_cache=True,
        deterministic_frames=False,
        freq_scaling=False,
        turbo=False,
        pad_storage=False,
        background_bus_traffic=0.03,
        bus_contention_probability=0.08)


def _kernel_quiet() -> MachineConfig:
    return MachineConfig(
        name="kernel-quiet",
        runtime=RuntimeKind.ORACLE_INT,
        irqs_enabled=False,
        irqs_to_supporting_core=False,
        preemption_enabled=False,
        flush_caches_at_start=True,
        random_initial_cache=False,
        deterministic_frames=False,   # still an ordinary OS allocator
        freq_scaling=False,
        turbo=False,
        pad_storage=False,
        background_bus_traffic=0.01,
        bus_contention_probability=0.05)


def _dirty() -> MachineConfig:
    # The Oracle JVM in multi-user mode: same noise as user-noisy.
    return _user_noisy().with_overrides(name="dirty")


def _clean() -> MachineConfig:
    # Single-user mode, only the JVM running: no GUI/network preemptions,
    # but still ordinary IRQ routing, unflushed caches, OS frames, and
    # default power management (TurboBoost re-enabled by Linux, §4.2).
    return MachineConfig(
        name="clean",
        runtime=RuntimeKind.ORACLE_INT,
        irqs_to_supporting_core=False,
        preemption_enabled=False,
        flush_caches_at_start=False,
        random_initial_cache=True,
        deterministic_frames=False,
        freq_scaling=False,
        turbo=True,
        pad_storage=False,
        background_bus_traffic=0.01,
        bus_contention_probability=0.05)


def _sanity() -> MachineConfig:
    return MachineConfig(name="sanity")


_BUILDERS = {
    NoiseScenario.USER_NOISY: _user_noisy,
    NoiseScenario.USER_QUIET: _user_quiet,
    NoiseScenario.KERNEL: _kernel,
    NoiseScenario.KERNEL_QUIET: _kernel_quiet,
    NoiseScenario.DIRTY: _dirty,
    NoiseScenario.CLEAN: _clean,
    NoiseScenario.SANITY: _sanity,
}

NOISE_SCENARIOS = tuple(NoiseScenario)


def scenario_config(scenario: NoiseScenario | str) -> MachineConfig:
    """The :class:`MachineConfig` preset for a noise scenario."""
    if isinstance(scenario, str):
        try:
            scenario = NoiseScenario(scenario)
        except ValueError:
            raise HardwareConfigError(
                f"unknown scenario '{scenario}'; known: "
                f"{[s.value for s in NoiseScenario]}") from None
    return _BUILDERS[scenario]()

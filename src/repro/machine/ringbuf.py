"""The S-T and T-S ring buffers between the two cores (§3.4-§3.5).

"The TC and SC communicate by means of two in-memory ring buffers: the S-T
buffer and the T-S buffer. ... The purpose of this arrangement is to make
play and replay look identical from the perspective of the TC — in both
cases, the TC reads inputs from the S-T buffer and writes outputs to the
T-S buffer."

The timestamp protocol of §3.5 is modelled explicitly: the SC appends
entries with a timestamp of zero ("new") and keeps a fake tail entry with
timestamp infinity, so the TC's next-entry check is the *same* read-compare-
write sequence whether or not an entry is present.  The buffer reports the
virtual addresses each check and copy touches, so the timed-core platform
charges an identical access stream in play and replay.
"""

from __future__ import annotations

from collections import deque

from repro.errors import HardwareConfigError

ST_BUFFER_BASE = 0x0040_0000
TS_BUFFER_BASE = 0x0050_0000
ENTRY_STRIDE = 2048          # bytes reserved per ring entry
NUM_ENTRIES = 64
TIMESTAMP_INFINITY = (1 << 63) - 1
_WORD = 8


class STBuffer:
    """Supporting-core → timed-core buffer (inputs).

    The SC stages incoming packets here; the TC polls.  ``check_addresses``
    is the fixed 3-access sequence of the §3.5 protocol (read timestamp,
    compare, write back the instruction count / re-write infinity), charged
    by the platform on every poll in both modes.
    """

    def __init__(self) -> None:
        self._staged: deque[bytes] = deque()
        self._head_index = 0     # ring slot of the next entry to consume
        self.staged_total = 0
        self.consumed_total = 0

    def stage(self, payload: bytes) -> None:
        """SC side: overwrite the fake tail entry with a real packet."""
        if len(payload) > ENTRY_STRIDE - 16:
            raise HardwareConfigError(
                f"packet of {len(payload)} bytes exceeds the "
                f"{ENTRY_STRIDE - 16}-byte ring entry")
        self._staged.append(payload)
        self.staged_total += 1

    def head(self) -> bytes | None:
        """TC side: the staged packet at the head, if any."""
        if self._staged:
            return self._staged[0]
        return None

    def consume(self) -> bytes:
        """TC side: take the head packet."""
        payload = self._staged.popleft()
        self._head_index = (self._head_index + 1) % NUM_ENTRIES
        self.consumed_total += 1
        return payload

    def head_vaddr(self) -> int:
        """Virtual address of the head entry's timestamp word."""
        return ST_BUFFER_BASE + self._head_index * ENTRY_STRIDE

    def check_addresses(self) -> tuple[int, int, int]:
        """The read-compare-write access triple of one next-entry check."""
        head = self.head_vaddr()
        return (head, head, head)

    def copy_addresses(self, length: int) -> list[int]:
        """Addresses read when copying a ``length``-byte payload out."""
        base = self.head_vaddr() + 16
        return [base + i * _WORD for i in range((length + _WORD - 1) // _WORD)]

    @property
    def pending(self) -> int:
        return len(self._staged)


class TSBuffer:
    """Timed-core → supporting-core buffer (outputs).

    The TC writes outgoing packets (and logged values) here; during play
    the SC forwards them, during replay it discards them — but the TC-side
    access stream is identical either way.
    """

    def __init__(self) -> None:
        self._tail_index = 0
        self.written_total = 0

    def write_addresses(self, length: int) -> list[int]:
        """Addresses written when placing a ``length``-byte payload."""
        base = TS_BUFFER_BASE + self._tail_index * ENTRY_STRIDE
        count = 2 + (length + _WORD - 1) // _WORD   # header + payload words
        return [base + i * _WORD for i in range(count)]

    def advance(self) -> None:
        """Commit one entry (moves the tail)."""
        self._tail_index = (self._tail_index + 1) % NUM_ENTRIES
        self.written_total += 1

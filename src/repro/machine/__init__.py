"""The simulated machine: timed core + supporting core + devices.

Assembles the hardware substrate (:mod:`repro.hw`), the Sanity VM
(:mod:`repro.vm`), and a record/replay session (:mod:`repro.core.session`)
into a runnable machine with the paper's TC/SC architecture (§3.3-§3.4).
"""

from repro.machine.config import (MachineConfig, machine_type,
                                  MACHINE_TYPES)
from repro.machine.machine import ExecutionResult, Machine
from repro.machine.noise import (NOISE_SCENARIOS, NoiseScenario,
                                 scenario_config)
from repro.machine.workload import (InteractiveClient, Request,
                                    ScriptedArrivals, Workload)

__all__ = [
    "ExecutionResult",
    "InteractiveClient",
    "MACHINE_TYPES",
    "Machine",
    "MachineConfig",
    "NOISE_SCENARIOS",
    "NoiseScenario",
    "Request",
    "ScriptedArrivals",
    "Workload",
    "machine_type",
    "scenario_config",
]

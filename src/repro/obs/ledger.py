"""The cycle-attribution ledger: who charged the virtual clock, and why.

The paper's central claim (Fig 2, Table 1) is an *accounting* argument:
each source of time noise — caches, TLB, branch predictor, bus
contention, interrupts, preemption — contributes a measurable share of
the execution time, and each mitigation removes exactly its share.  The
ledger makes that argument inspectable: every
:meth:`~repro.hw.clock.VirtualClock.advance` is tagged with the
:class:`Source` that caused it, and the per-source totals always sum to
the clock's ``cycles``.

The ledger is an *observer*: it never feeds back into timing, so runs
with and without a ledger attached are bit-identical in cycle counts
(the determinism guard tests assert this).

With batched cycle charging (the default — see DESIGN.md §4.2), the
platform flushes accumulated costs as one ``advance`` per source at each
poll/event boundary, so the ledger sees *fewer, larger* charge events
than the ``REPRO_NO_BATCH=1`` reference.  Per-source **sums** — the only
quantity any experiment or assertion keys on — are exactly unchanged.
"""

from __future__ import annotations


class Source:
    """Canonical charge sources, mapped to the paper's Table 1 rows.

    ==================  ==================================================
    Source              Table 1 row / paper section
    ==================  ==================================================
    ``INSTRUCTION``     baseline interpreter cost (not a noise source)
    ``CACHE``           Caches — flush at the beginning (§3.6)
    ``TLB``             Caches — same physical frames / CR4.PCIDE (§4.2)
    ``BRANCH``          implicit in §3.5's symmetric-access argument
    ``BUS``             Interrupts/DMA — residual bus contention (§3.3)
    ``INTERRUPT``       Interrupts — handle on a separate core
    ``PREEMPT``         Preemption — run in kernel mode
    ``CO_TENANT``       §7 multi-tenancy cross-talk
    ``STORAGE``         I/O — pad variable-time operations (§3.7)
    ``COVERT``          the adversary's injected delays (§5)
    ``GC``              deterministic runtime work (§3.2)
    ``IDLE``            blocking-receive poll loop (§3.4)
    ``INJECTION``       naive-replay event-injection asymmetry (Fig 3)
    ``COMPUTE``         abstracted data-independent compute blocks
    ``RESUME``          checkpoint fast-forward during segment replay
    ``SCHED``           executive context switches / yields / spawns (§7)
    ``IPC``             executive mailbox send/recv and message copies
    ==================  ==================================================
    """

    INSTRUCTION = "instruction"
    CACHE = "cache"
    TLB = "tlb"
    BRANCH = "branch"
    BUS = "bus"
    INTERRUPT = "interrupt"
    PREEMPT = "preempt"
    CO_TENANT = "co-tenant"
    STORAGE = "storage"
    COVERT = "covert"
    GC = "gc"
    IDLE = "idle-poll"
    INJECTION = "injection"
    COMPUTE = "compute-block"
    RESUME = "checkpoint-resume"
    SCHED = "sched"
    IPC = "ipc"
    OTHER = "other"


#: Every canonical source, in presentation order.
KNOWN_SOURCES: tuple[str, ...] = (
    Source.INSTRUCTION, Source.CACHE, Source.TLB, Source.BRANCH,
    Source.BUS, Source.INTERRUPT, Source.PREEMPT, Source.CO_TENANT,
    Source.STORAGE, Source.COVERT, Source.GC, Source.IDLE,
    Source.INJECTION, Source.COMPUTE, Source.RESUME, Source.SCHED,
    Source.IPC, Source.OTHER)

#: Sources that a fully mitigated (Table 1) configuration drives to zero.
MITIGATED_SOURCES: tuple[str, ...] = (
    Source.INTERRUPT, Source.PREEMPT, Source.CO_TENANT, Source.COVERT)


class CycleLedger:
    """Per-source cycle totals for one machine run.

    The hot path is :meth:`charge`; everything else is reporting.

    Besides the per-source aggregate, the ledger can attribute charges to
    a second, optional dimension: the guest *process* on whose behalf the
    cycles were spent (``cycles{process=...}``, mirroring the per-node
    cache-hit labels of the fleet telemetry).  The executive sets
    :attr:`process` at context-switch boundaries; while it is ``None``
    (every single-process run) the labelled path costs one predicted-
    not-taken branch and records nothing.  The unlabelled aggregate is
    unchanged either way, so ``sum(per-process) == sum(per-source) ==
    clock.cycles`` whenever a label was active for the whole run.
    """

    __slots__ = ("_totals", "charges", "process", "_by_process")

    def __init__(self) -> None:
        self._totals: dict[str, int] = {}
        #: Number of individual charge events recorded.
        self.charges = 0
        #: Current process label, set by the executive at switch points.
        self.process: str | None = None
        self._by_process: dict[str, dict[str, int]] = {}

    def charge(self, source: str, cycles: int) -> None:
        """Attribute ``cycles`` to ``source`` (called by the clock)."""
        totals = self._totals
        totals[source] = totals.get(source, 0) + cycles
        self.charges += 1
        process = self.process
        if process is not None:
            bucket = self._by_process.get(process)
            if bucket is None:
                bucket = self._by_process[process] = {}
            bucket[source] = bucket.get(source, 0) + cycles

    def get(self, source: str) -> int:
        """Cycles attributed to ``source`` (0 if never charged)."""
        return self._totals.get(source, 0)

    @property
    def total(self) -> int:
        """Sum over all sources; equals the attached clock's ``cycles``."""
        return sum(self._totals.values())

    def totals(self) -> dict[str, int]:
        """Snapshot of the per-source totals, largest first."""
        return dict(sorted(self._totals.items(),
                           key=lambda kv: (-kv[1], kv[0])))

    def process_totals(self) -> dict[str, dict[str, int]]:
        """Per-process per-source snapshot, processes sorted by name.

        Empty for runs that never set :attr:`process` (single-process
        machines).  Within a process, sources sort largest first, same
        as :meth:`totals`.
        """
        return {process: dict(sorted(sources.items(),
                                     key=lambda kv: (-kv[1], kv[0])))
                for process, sources in sorted(self._by_process.items())}

    def delta(self, other: "CycleLedger | dict[str, int]") -> dict[str, int]:
        """Per-source ``self - other``, over the union of sources.

        This is the flight recorder's "where did the two runs disagree"
        primitive: a covert channel shows up as a positive ``covert``
        delta of the play run over its replay.
        """
        mine = self._totals
        theirs = other._totals if isinstance(other, CycleLedger) else other
        out: dict[str, int] = {}
        for source in mine.keys() | theirs.keys():
            diff = mine.get(source, 0) - theirs.get(source, 0)
            if diff:
                out[source] = diff
        return dict(sorted(out.items(),
                           key=lambda kv: (-abs(kv[1]), kv[0])))

    def reset(self) -> None:
        self._totals.clear()
        self.charges = 0
        self.process = None
        self._by_process.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CycleLedger(total={self.total}, sources={len(self._totals)})"


def format_attribution_table(totals: "dict[str, int] | CycleLedger",
                             total_cycles: int | None = None,
                             title: str = "cycle attribution") -> str:
    """Render per-source totals as the paper's "where did the noise go".

    ``total_cycles`` (when given, usually the run's clock reading) is
    cross-checked against the ledger sum; the footer states whether the
    accounting is exact.
    """
    if isinstance(totals, CycleLedger):
        totals = totals.totals()
    ledger_sum = sum(totals.values())
    denominator = total_cycles if total_cycles else ledger_sum
    width = max([len(s) for s in totals] + [len("source")])
    lines = [f"{title}:",
             f"  {'source':<{width}} {'cycles':>16} {'share':>8}"]
    for source, cycles in sorted(totals.items(),
                                 key=lambda kv: (-kv[1], kv[0])):
        share = cycles / denominator if denominator else 0.0
        lines.append(f"  {source:<{width}} {cycles:>16,} {share:>7.2%}")
    lines.append(f"  {'total':<{width}} {ledger_sum:>16,}")
    if total_cycles is not None:
        verdict = ("exact" if ledger_sum == total_cycles
                   else f"MISMATCH vs clock {total_cycles:,}")
        lines.append(f"  (accounting {verdict})")
    return "\n".join(lines)


def format_process_table(process_totals: dict[str, dict[str, int]],
                         total_cycles: int | None = None,
                         title: str = "cycle attribution by process") -> str:
    """Render the ``cycles{process=...}`` dimension as a Table-1 sibling.

    One row per process with its total and dominant sources; the footer
    cross-checks ``sum(per-process)`` against the clock when given, the
    same exact-accounting contract as :func:`format_attribution_table`.
    """
    rows = {process: sum(sources.values())
            for process, sources in process_totals.items()}
    grand = sum(rows.values())
    denominator = total_cycles if total_cycles else grand
    width = max([len(p) for p in rows] + [len("process")])
    lines = [f"{title}:",
             f"  {'process':<{width}} {'cycles':>16} {'share':>8}  top sources"]
    for process, cycles in sorted(rows.items(), key=lambda kv: (-kv[1],
                                                                kv[0])):
        share = cycles / denominator if denominator else 0.0
        top = ", ".join(f"{s} {c:,}" for s, c in
                        list(process_totals[process].items())[:3])
        lines.append(f"  {process:<{width}} {cycles:>16,} {share:>7.2%}"
                     f"  {top}")
    lines.append(f"  {'total':<{width}} {grand:>16,}")
    if total_cycles is not None:
        verdict = ("exact" if grand == total_cycles
                   else f"MISMATCH vs clock {total_cycles:,}")
        lines.append(f"  (accounting {verdict})")
    return "\n".join(lines)

"""Span tracing in the virtual cycle domain.

A :class:`SpanTracer` records begin/end spans and instant events whose
timestamps come from the *virtual* clock of whichever machine is bound to
it — the trace shows where virtual time went, not where host time went.
Two export formats:

* **NDJSON** — one JSON object per line, for ad-hoc ``jq`` analysis;
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  Perfetto.  Each bound machine run gets its own named track (``tid``),
  so a play/replay round trip renders as two aligned timelines whose
  divergence is visible at a glance.

The tracer is an observer: it reads the clock but never advances it, so
tracing on/off leaves cycle counts bit-identical.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Callable

from repro.errors import ObservabilityError

#: Timestamp source: current virtual time in nanoseconds.
TimeFn = Callable[[], float]


def _zero_time() -> float:
    return 0.0


class SpanTracer:
    """Collects trace events against a rebindable virtual-time source."""

    def __init__(self, time_fn: TimeFn | None = None) -> None:
        self._time_fn: TimeFn = time_fn or _zero_time
        self.events: list[dict] = []
        self._tracks: dict[str, int] = {}
        self._current_tid = 1
        self._open_spans: list[str] = []

    # -- time & track binding ------------------------------------------------

    def bind(self, time_fn: TimeFn, track: str = "main") -> None:
        """Use ``time_fn`` as the clock and ``track`` as the event lane.

        Machines call this once at construction; a round trip binds the
        tracer twice (play, then replay), producing two tracks on one
        timeline.
        """
        self._time_fn = time_fn
        if track not in self._tracks:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
            self.events.append({"ph": "M", "name": "thread_name", "pid": 1,
                                "tid": tid, "ts": self._time_fn() / 1e3,
                                "args": {"name": track}})
        self._current_tid = self._tracks[track]

    def now_us(self) -> float:
        """Current virtual time in microseconds (Chrome's ``ts`` unit)."""
        return self._time_fn() / 1e3

    # -- event recording -------------------------------------------------------

    def begin(self, name: str, category: str = "phase", **args) -> None:
        self._open_spans.append(name)
        event = {"ph": "B", "name": name, "cat": category, "pid": 1,
                 "tid": self._current_tid, "ts": self.now_us()}
        if args:
            event["args"] = args
        self.events.append(event)

    def end(self, name: str, **args) -> None:
        if not self._open_spans or self._open_spans[-1] != name:
            raise ObservabilityError(
                f"span end '{name}' does not match open span "
                f"{self._open_spans[-1] if self._open_spans else None!r}")
        self._open_spans.pop()
        event = {"ph": "E", "name": name, "pid": 1,
                 "tid": self._current_tid, "ts": self.now_us()}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, category: str = "event", **args) -> None:
        event = {"ph": "i", "name": name, "cat": category, "pid": 1,
                 "tid": self._current_tid, "ts": self.now_us(), "s": "t"}
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(self, name: str, category: str = "phase", **args):
        """``with tracer.span("vm.execute"): ...`` — balanced begin/end."""
        self.begin(name, category, **args)
        try:
            yield self
        finally:
            self.end(name)

    # -- export -----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object."""
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms",
                "otherData": {"domain": "virtual-cycles",
                              "producer": "repro.obs"}}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def to_ndjson(self) -> str:
        return "\n".join(json.dumps(event, sort_keys=True)
                         for event in self.events) + ("\n" if self.events
                                                      else "")

    def write_ndjson(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_ndjson())

    @classmethod
    def from_ndjson(cls, text: str) -> "SpanTracer":
        """Rebuild a tracer from its NDJSON export.

        The round trip is lossless for reporting purposes:
        ``SpanTracer.from_ndjson(t.to_ndjson()).to_ndjson()`` is
        byte-identical to ``t.to_ndjson()`` (events are re-serialized
        with the same sorted-key encoder).  The rebuilt tracer is a
        *record*, not a live collector — its clock is unbound and its
        track map is reconstructed from the metadata events.
        """
        tracer = cls()
        tracer.events = [json.loads(line)
                         for line in text.splitlines() if line.strip()]
        for event in tracer.events:
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                tracer._tracks[event["args"]["name"]] = event["tid"]
        if tracer._tracks:
            tracer._current_tid = max(tracer._tracks.values())
        return tracer

    def __len__(self) -> int:
        return len(self.events)

"""The cycle-exact guest profiler: flame graphs in the virtual domain.

A conventional sampling profiler is *statistical* in two ways: sample
points land at arbitrary wall-clock instants, and the cost between two
samples is estimated as ``interval x weight``.  This profiler is exact
in the dimension that matters here — virtual cycles:

* **Sample points are deterministic.**  Stacks are reconstructed only on
  the interpreter's platform-poll branch (a fixed instruction count) and
  at trace-JIT block boundaries / side exits — the same boundaries every
  other collector and the batched charging layer already key on.  The
  same program therefore samples at the same points in every run.
* **Attribution is a ledger delta, not an estimate.**  Every sample
  reads the :class:`~repro.obs.ledger.CycleLedger`'s per-source totals
  and attributes *everything charged since the previous sample* to the
  captured stack.  Whatever the stride, the per-source frame totals sum
  **exactly** to the ledger (and hence to the clock) — coarser strides
  only coarsen *where* cycles land, never *how many* there are.
  :meth:`CycleProfiler.finish` sweeps the residual tail (cycles charged
  after the last boundary sample) into a synthetic ``(runtime)`` frame,
  so the accounting closes without a remainder term.

Like every ``repro.obs`` collector, the profiler is a pure observer:
it reads the ledger and the guest stack but never touches the clock, so
cycles, ledger sums, transmissions, and audit verdicts are bit-identical
with profiling on or off (see DESIGN.md §4.4 for why the extra
accumulator flushes at JIT boundaries cannot change any observable).

Exports: a deterministic JSON-ready profile (:meth:`CycleProfiler.export`),
flamegraph.pl-compatible folded stacks (:func:`folded_lines`), and a
stdlib-only SVG flame graph (:func:`render_flame_svg`).
"""

from __future__ import annotations

import zlib

__all__ = ["CycleProfiler", "RUNTIME_FRAME", "folded_lines",
           "profile_lines", "render_flame_svg"]

#: Synthetic frame for cycles charged outside any sampled guest stack
#: (startup, the tail after the last boundary sample, teardown).
RUNTIME_FRAME = "(runtime)"


class CycleProfiler:
    """Per-run stack profiler over one :class:`CycleLedger`.

    The interpreter calls :meth:`poll` on the platform-poll branch (after
    ``on_quantum`` flushed the batched charges, so the ledger is current)
    and :meth:`block_boundary` when a compiled block exits; both stride
    so the disabled-adjacent cost stays off the per-instruction path.
    ``flush`` is the platform's ``flush_charges`` (or ``None`` for
    platforms without batched charging): block boundaries are not flush
    points by themselves, so the profiler flushes before reading the
    ledger there — an additive-only operation that cannot change any
    observable (DESIGN.md §4.4).
    """

    __slots__ = ("ledger", "program", "stride", "jit_stride", "samples",
                 "_flush", "_tick", "_jit_tick", "_last", "_stacks")

    def __init__(self, ledger, program, flush=None, stride: int = 4,
                 jit_stride: int = 16) -> None:
        self.ledger = ledger
        self.program = program
        self._flush = flush
        #: Poll samples between stack captures (1 = every poll).
        self.stride = max(1, int(stride))
        #: Block-boundary events between JIT-tier stack captures.
        self.jit_stride = max(1, int(jit_stride))
        self.samples = 0
        self._tick = 0
        self._jit_tick = 0
        #: Per-source ledger totals at the previous sample.
        self._last: dict[str, int] = {}
        #: (thread_id, tier, ((fn_index, pc), ...)) -> {source: cycles}.
        self._stacks: dict[tuple, dict[str, int]] = {}

    # -- hot-path hooks (called from the interpreter run loop) ---------------

    def poll(self, thread) -> None:
        """One platform-poll boundary; samples every ``stride`` polls."""
        tick = self._tick + 1
        if tick < self.stride:
            self._tick = tick
            return
        self._tick = 0
        # frame.pc still holds the *current* instruction at poll time
        # (write-back happens after the poll branch), so the leaf frame
        # is exact; caller frames hold the pc after their CALL.
        self._take((thread.thread_id, "interp",
                    tuple((f.function.index, f.pc) for f in thread.frames)))

    def block_boundary(self, thread, function, block) -> None:
        """One compiled-block exit (completion or side exit)."""
        tick = self._jit_tick + 1
        if tick < self.jit_stride:
            self._jit_tick = tick
            return
        self._jit_tick = 0
        if self._flush is not None:
            self._flush()
        frames = thread.frames
        stack = tuple((f.function.index, f.pc) for f in frames[:-1]) \
            + ((function.index, block.head),)
        self._take((thread.thread_id, "jit", stack))

    def _take(self, key: tuple) -> None:
        """Attribute every cycle charged since the last sample to ``key``."""
        self.samples += 1
        last = self._last
        bucket = None
        for source, cycles in self.ledger._totals.items():
            prev = last.get(source, 0)
            if cycles != prev:
                last[source] = cycles
                if bucket is None:
                    bucket = self._stacks.get(key)
                    if bucket is None:
                        bucket = self._stacks[key] = {}
                bucket[source] = bucket.get(source, 0) + cycles - prev

    def finish(self) -> None:
        """Close the accounting: sweep the residual into ``(runtime)``.

        Called once after the final ``flush_charges`` — cycles charged
        since the last boundary sample (plus anything before the first)
        land on the synthetic runtime frame, so per-source frame totals
        equal the ledger's exactly.  Idempotent: a second call finds no
        new delta.
        """
        self._take((-1, "interp", ()))

    # -- export --------------------------------------------------------------

    def export(self) -> dict:
        """Deterministic, JSON/pickle-ready profile snapshot.

        ``stacks`` entries carry resolved ``function:pc`` frame names, the
        tier (``interp`` or ``jit`` — JIT leaves name the compiled
        region's head pc), the owning thread, and exact per-source cycle
        totals; ``sources`` is the per-source roll-up, which matches the
        run's ledger exactly.
        """
        functions = self.program.functions
        stacks = []
        rollup: dict[str, int] = {}
        for (thread_id, tier, stack), sources in self._stacks.items():
            names = [f"{functions[idx].name}:{pc}" for idx, pc in stack] \
                or [RUNTIME_FRAME]
            total = 0
            for source, cycles in sources.items():
                rollup[source] = rollup.get(source, 0) + cycles
                total += cycles
            stacks.append({
                "thread": thread_id,
                "tier": tier,
                "stack": names,
                "cycles": total,
                "sources": dict(sorted(sources.items(),
                                       key=lambda kv: (-kv[1], kv[0]))),
            })
        stacks.sort(key=lambda s: (-s["cycles"], s["stack"], s["tier"],
                                   s["thread"]))
        return {
            "version": 1,
            "stride": self.stride,
            "jit_stride": self.jit_stride,
            "samples": self.samples,
            "total_cycles": sum(rollup.values()),
            "sources": dict(sorted(rollup.items(),
                                   key=lambda kv: (-kv[1], kv[0]))),
            "stacks": stacks,
        }


# --------------------------------------------------------------------------
# Folded-stack text (flamegraph.pl compatible).
# --------------------------------------------------------------------------

def folded_lines(profile: dict, with_sources: bool = True) -> list[str]:
    """One folded line per (stack, tier[, source]): ``a;b;c 123``.

    Compatible with Brendan Gregg's ``flamegraph.pl``: semicolon-joined
    frames, a space, and the sample weight (here: exact virtual cycles).
    JIT-tier leaves carry the ``_[j]`` annotation suffix the flamegraph
    tooling renders specially; with ``with_sources`` (the default) each
    hardware source becomes a synthetic ``[source]`` leaf, so the line
    weights sum exactly to the run's ledger total.

    Executive (multi-process) profiles tag each stack with the owning
    guest process (``pid``); those get a ``pid:N`` root frame so the
    flame graph splits per process.  Plain multi-threaded profiles fall
    back to a ``thread:N`` root as before.
    """
    stacks = profile.get("stacks", ())
    pids = {entry.get("pid") for entry in stacks} - {None}
    threads = {entry["thread"] for entry in stacks}
    multi_pid = len(pids) > 1
    multi = not multi_pid and len(threads - {-1}) > 1
    lines = []
    for entry in stacks:
        frames = list(entry["stack"])
        if entry["tier"] == "jit" and frames:
            frames[-1] += "_[j]"
        if multi_pid and entry.get("pid") is not None:
            frames.insert(0, f"pid:{entry['pid']}")
        elif multi and entry["thread"] >= 0:
            frames.insert(0, f"thread:{entry['thread']}")
        base = ";".join(frames)
        if with_sources:
            for source, cycles in entry["sources"].items():
                lines.append(f"{base};[{source}] {cycles}")
        else:
            lines.append(f"{base} {entry['cycles']}")
    return sorted(lines)


def profile_lines(profile: dict, top: int = 10) -> list[str]:
    """The profile summary block shared by the CLI and stored-run
    re-renders (same convention as ``fig6_lines`` / ``attribution_lines``:
    the report reproduces run-time stdout by construction)."""
    total = profile.get("total_cycles", 0)
    lines = [f"  profile: {profile.get('samples', 0):,} samples, "
             f"{total:,} cycles attributed exactly "
             f"(stride {profile.get('stride', '?')}, "
             f"jit stride {profile.get('jit_stride', '?')})"]
    # Re-sort rather than trusting dict order: a JSON round trip through
    # the run store re-sorts keys alphabetically.
    sources = dict(sorted(profile.get("sources", {}).items(),
                          key=lambda kv: (-kv[1], kv[0])))
    if sources:
        shown = list(sources.items())[:6]
        lines.append("  by source: " + ", ".join(
            f"{source} {cycles:,}" for source, cycles in shown)
            + (" …" if len(sources) > len(shown) else ""))
    lines.append(f"  {'hottest stacks':<46s} {'tier':>6s} "
                 f"{'cycles':>14s} {'share':>7s}")
    denominator = total or 1
    for entry in profile.get("stacks", [])[:top]:
        name = ";".join(entry["stack"])
        if len(name) > 46:
            name = "…" + name[-45:]
        lines.append(f"  {name:<46s} {entry['tier']:>6s} "
                     f"{entry['cycles']:>14,} "
                     f"{entry['cycles'] / denominator:>6.1%}")
    return lines


# --------------------------------------------------------------------------
# Stdlib SVG flame graph (icicle layout, deterministic colors).
# --------------------------------------------------------------------------

#: Warm ramp for guest frames, cool ramp for ``[source]`` leaves, a
#: distinct band for JIT-tier frames.  Flat literals (not CSS vars): the
#: SVG must stand alone as a file, outside the report's stylesheet.
_FRAME_COLORS = ("#e4593b", "#e8703a", "#ec8639", "#ef9a3d",
                 "#f2ad45", "#da5f50", "#d9764b", "#e06a33")
_SOURCE_COLORS = ("#2a78d6", "#3987e5", "#1c5cab", "#4a90d9",
                  "#5b7fc7", "#2f6cb8")
_JIT_COLORS = ("#1baf7a", "#199e70", "#23c289", "#2d9d6f")


def _frame_color(name: str) -> str:
    if name.startswith("[") and name.endswith("]"):
        palette = _SOURCE_COLORS
    elif name.endswith("_[j]") or name.endswith(" [jit]"):
        palette = _JIT_COLORS
    else:
        palette = _FRAME_COLORS
    return palette[zlib.crc32(name.encode("utf-8")) % len(palette)]


def _build_trie(profile: dict) -> dict:
    """Merge the profile's stacks into a prefix tree weighted in cycles."""
    root = {"name": "all", "value": 0, "children": {}}
    for entry in profile.get("stacks", ()):
        frames = list(entry["stack"])
        if entry["tier"] == "jit" and frames:
            frames[-1] += " [jit]"
        for source, cycles in entry["sources"].items():
            root["value"] += cycles
            node = root
            for name in frames + [f"[{source}]"]:
                child = node["children"].get(name)
                if child is None:
                    child = node["children"][name] = {
                        "name": name, "value": 0, "children": {}}
                node = child
                node["value"] += cycles
    return root


def _trie_depth(node: dict) -> int:
    if not node["children"]:
        return 1
    return 1 + max(_trie_depth(child) for child in node["children"].values())


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _render_frames(node: dict, x: float, width: float, depth: int,
                   row_h: int, total: int, parts: list[str],
                   highlight=None) -> None:
    cursor = x
    children = sorted(node["children"].values(),
                      key=lambda c: (-c["value"], c["name"]))
    for child in children:
        w = width * child["value"] / node["value"] if node["value"] else 0.0
        if w < 0.4:         # sub-half-pixel frames: skip render, keep layout
            cursor += w
            continue
        y = depth * row_h
        name = child["name"]
        stroke = ""
        if highlight is not None and highlight(name, depth):
            stroke = ' stroke="#e34948" stroke-width="1.5"'
        share = child["value"] / total if total else 0.0
        parts.append(
            f'<rect x="{cursor:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{row_h - 1}" rx="1" fill="{_frame_color(name)}"'
            f'{stroke}><title>{_escape(name)}: {child["value"]:,} cycles '
            f'({share:.2%})</title></rect>')
        if w > 34:
            label = name if len(name) * 6.2 < w else \
                name[:max(1, int(w / 6.2) - 1)] + "…"
            parts.append(
                f'<text x="{cursor + 3:.2f}" y="{y + row_h - 5}" '
                f'font-size="10" fill="#ffffff">{_escape(label)}</text>')
        _render_frames(child, cursor, w, depth + 1, row_h, total, parts,
                       highlight)
        cursor += w


def render_flame_svg(profile: dict, title: str = "Guest cycle flame graph",
                     width: int = 1000, highlight=None) -> str:
    """A self-contained SVG flame graph (icicle: root on top).

    Deterministic by construction — layout sorts children by
    ``(-cycles, name)`` and colors hash the frame name — so re-rendering
    the same profile is byte-identical.  ``highlight(name, depth)`` may
    mark frames (the forensics differential view strokes divergent ones).
    """
    trie = _build_trie(profile)
    row_h = 17
    depth = _trie_depth(trie)
    height = (depth + 1) * row_h + 24
    total = trie["value"]
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_escape(title)}">',
        f'<text x="4" y="14" font-size="12" font-family="system-ui, '
        f'sans-serif" fill="#52514e">{_escape(title)} — '
        f'{total:,} cycles, exact</text>',
        '<g font-family="system-ui, sans-serif">',
        f'<rect x="0" y="{row_h + 4}" width="{width}" '
        f'height="{row_h - 1}" rx="1" fill="#898781">'
        f'<title>all: {total:,} cycles</title></rect>',
        f'<text x="3" y="{2 * row_h - 1}" font-size="10" '
        f'fill="#ffffff">all</text>',
    ]
    # Root row sits at depth 1 (after the title row); children below it.
    body: list[str] = []
    _render_frames(trie, 0.0, float(width), 2, row_h, total, body,
                   highlight)
    # Shift body down by the 4px title padding via a wrapping group.
    parts.append(f'<g transform="translate(0 4)">{"".join(body)}</g>')
    parts.append("</g></svg>")
    return "".join(parts)


def write_flame_svg(path, profile: dict, title: str = "Guest cycle "
                    "flame graph", highlight=None) -> None:
    """Write a standalone ``.svg`` file (XML prolog + flame graph)."""
    from pathlib import Path

    svg = render_flame_svg(profile, title=title, highlight=highlight)
    Path(path).write_text('<?xml version="1.0" encoding="UTF-8"?>\n'
                          + svg + "\n", encoding="utf-8")

"""Deterministic distributed tracing and latency SLOs for the fleet.

The single-VM observability layer answers "where did virtual time go
inside one machine run"; this module answers the same question for the
*verifier fleet*: where did a session's virtual time go between landing
at the ingest tier and ending in a verdict, across queues, nodes,
steals, crashes, and rebalances.

Three layers, all derived purely from virtual time and content:

* **Spans** — every (tenant, epoch) session gets a content-derived
  ``trace_id`` (a hash of seed/tenant/epoch, so identical runs produce
  identical ids) and a causally-linked span tree recorded by the
  :class:`DistTracer`: the ``session`` root on the fleet track, then per
  job a ``queue-wait`` span and an ``audit:{kind}`` span on the owning
  node's track.  A node crash closes the orphaned audit span with
  status ``killed``; when the rebalance redelivers the job, its next
  queue-wait span is *re-parented onto the killed span* (attribute
  ``reparented_from``), so the whole at-least-once story is one
  connected tree ending in a verdict.
* **Latency observations** — queue wait, audit service time, and
  time-to-verdict (completion minus the session's first segment
  arrival), attributed per tenant *and* per node, in virtual ms.
* **SLOs** — a declarative :class:`SLOSpec` (``p99_verdict_ms=400,
  max_unaudited=0.1``) evaluated against the recorded series with
  per-window error-budget burn rates — all in virtual time, so an SLO
  verdict is as deterministic as the audit verdicts themselves.

Export paths: a merged Chrome-trace (one track per node, chaos instants
as markers, complete-``X`` span events so overlapping worker spans never
unbalance), a structured NDJSON event log, and a :meth:`summary` figure
payload the run store and the fleet dashboard page render.

Everything here observes and never perturbs: the tracer reads virtual
timestamps handed to it by the fleet event loop and touches no clock,
RNG, or simulated state — tracing on/off is bit-identical in verdicts,
and the exports are bit-identical across reruns and ``--jobs`` settings
because every record is made from the deterministic coordinator loop.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

__all__ = ["DistTracer", "SLOReport", "SLOSpec", "SpanRecord",
           "derive_trace_id", "evaluate_slo", "nearest_rank"]

#: The fleet coordination track (ingest, session roots, fleet instants).
FLEET_TRACK = "fleet"

#: Span statuses a span can close with.
STATUS_OK = "ok"
STATUS_KILLED = "killed"
STATUS_DUPLICATE = "duplicate"
STATUS_UNAUDITED = "unaudited"


def derive_trace_id(seed: int, tenant_id: str, epoch: int) -> str:
    """Content-derived trace id: identical runs name sessions identically."""
    payload = f"tdr-trace:{seed}:{tenant_id}:{epoch}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def nearest_rank(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    if not values:
        raise ObservabilityError("percentile of an empty series")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class SpanRecord:
    """One closed (or still-open) span in the fleet trace."""

    span_id: int
    parent_id: int | None
    trace_id: str
    name: str
    category: str
    track: str                    #: node id, or ``FLEET_TRACK``
    tenant_id: str
    epoch: int
    start_ms: float
    end_ms: float | None = None
    status: str = "open"
    attrs: dict = field(default_factory=dict)
    seq: int = 0                  #: record-order tiebreak for export sorts

    def to_json_dict(self) -> dict:
        return {"kind": "span", "span_id": self.span_id,
                "parent_id": self.parent_id, "trace_id": self.trace_id,
                "name": self.name, "category": self.category,
                "track": self.track, "tenant_id": self.tenant_id,
                "epoch": self.epoch, "start_ms": round(self.start_ms, 3),
                "end_ms": (round(self.end_ms, 3)
                           if self.end_ms is not None else None),
                "status": self.status, "attrs": dict(self.attrs)}


class DistTracer:
    """Deterministic span/latency recorder for one fleet run.

    The fleet event loop is the only writer, and it runs in one process
    in virtual-event order regardless of ``--jobs`` — so span ids,
    record order, and therefore every export are pure functions of
    (seed, roster, topology, chaos plan).
    """

    #: Latency metrics recorded per audit event.
    METRICS = ("queue_wait_ms", "service_ms", "verdict_ms")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.spans: list[SpanRecord] = []
        self.instants: list[dict] = []
        self._tracks: dict[str, int] = {FLEET_TRACK: 1}
        self._next_span = 1
        self._seq = 0
        #: (tenant, epoch) -> session bookkeeping.
        self._sessions: dict[tuple, dict] = {}
        #: job session_key -> open audit SpanRecord.
        self._open_audit: dict[tuple, SpanRecord] = {}
        #: job session_key -> last closed audit span id (escalation links).
        self._last_span: dict[tuple, int] = {}
        #: job session_key -> killed span id awaiting re-parent on redeliver.
        self._reparent: dict[tuple, SpanRecord] = {}
        #: (metric, tenant, node) -> [(ts_ms, value_ms), ...]
        self._obs: dict[tuple, list[tuple[float, float]]] = {}
        #: track -> [(ts_ms, depth), ...]
        self._queue_depth: dict[str, list[tuple[float, int]]] = {}
        self.killed_spans = 0
        self.reparented = 0

    # -- tracks and sessions ----------------------------------------------

    def register_track(self, track: str) -> int:
        """Assign the next tid to ``track`` (idempotent, order-stable)."""
        if track not in self._tracks:
            self._tracks[track] = len(self._tracks) + 1
        return self._tracks[track]

    def session_start(self, tenant_id: str, epoch: int,
                      ts_ms: float) -> dict:
        """Open the session root span at its first segment arrival."""
        key = (tenant_id, epoch)
        session = self._sessions.get(key)
        if session is None:
            trace_id = derive_trace_id(self.seed, tenant_id, epoch)
            root = self._open(
                f"session:{tenant_id}@e{epoch}", FLEET_TRACK, ts_ms,
                trace_id=trace_id, parent_id=None, tenant_id=tenant_id,
                epoch=epoch, category="session")
            session = {"trace_id": trace_id, "root": root,
                       "start_ms": ts_ms}
            self._sessions[key] = session
        return session

    def session_close(self, tenant_id: str, epoch: int, end_ms: float,
                      status: str) -> None:
        """Close a session root (idempotent — the report may retry)."""
        session = self._sessions.get((tenant_id, epoch))
        if session is None or session["root"].end_ms is not None:
            return
        self._close(session["root"], end_ms, status)

    # -- span plumbing -----------------------------------------------------

    def _open(self, name: str, track: str, start_ms: float, *,
              trace_id: str, parent_id: int | None, tenant_id: str,
              epoch: int, category: str, **attrs) -> SpanRecord:
        self.register_track(track)
        span = SpanRecord(
            span_id=self._next_span, parent_id=parent_id,
            trace_id=trace_id, name=name, category=category, track=track,
            tenant_id=tenant_id, epoch=epoch, start_ms=start_ms,
            attrs=dict(attrs), seq=self._seq)
        self._next_span += 1
        self._seq += 1
        self.spans.append(span)
        return span

    def _close(self, span: SpanRecord, end_ms: float, status: str,
               **attrs) -> None:
        if span.end_ms is not None:
            raise ObservabilityError(
                f"span {span.span_id} ({span.name}) closed twice")
        span.end_ms = max(end_ms, span.start_ms)
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    def instant(self, name: str, track: str, ts_ms: float,
                category: str = "event", **attrs) -> None:
        self.register_track(track)
        self.instants.append({"name": name, "track": track,
                              "ts_ms": ts_ms, "category": category,
                              "attrs": dict(attrs), "seq": self._seq})
        self._seq += 1

    # -- the fleet job lifecycle -------------------------------------------

    def job_dispatched(self, job, node_id: str) -> None:
        """Record the queue-wait span and open the audit span for a job.

        Causal parent rules:

        * a redelivered job (its identity was killed with a node)
          re-parents onto the *killed* audit span, with
          ``reparented_from`` naming the dead node;
        * an escalation (``cause="spot-anomaly:X"``) parents onto the
          spot-check span that raised the anomaly;
        * everything else parents onto the session root.
        """
        key = job.session_key
        session = self.session_start(job.tenant_id, job.epoch,
                                     job.ready_ms)
        parent_id = session["root"].span_id
        reparent_attrs: dict = {}
        killed = self._reparent.pop(key, None)
        if killed is not None:
            parent_id = killed.span_id
            reparent_attrs["reparented_from"] = killed.track
            self.reparented += 1
        elif job.cause.startswith("spot-anomaly:"):
            spot_key = (job.tenant_id, job.epoch, "spot",
                        job.cause[len("spot-anomaly:"):])
            parent_id = self._last_span.get(spot_key, parent_id)

        wait = self._open(
            "queue-wait", node_id, job.ready_ms,
            trace_id=session["trace_id"], parent_id=parent_id,
            tenant_id=job.tenant_id, epoch=job.epoch, category="queue",
            kind=job.kind, cause=job.cause, **reparent_attrs)
        self._close(wait, job.start_ms, STATUS_OK)
        audit = self._open(
            f"audit:{job.kind}", node_id, job.start_ms,
            trace_id=session["trace_id"], parent_id=wait.span_id,
            tenant_id=job.tenant_id, epoch=job.epoch, category="audit",
            kind=job.kind, cause=job.cause, worker=job.worker,
            **reparent_attrs)
        self._open_audit[key] = audit

    def job_killed(self, job, node_id: str, at_ms: float) -> None:
        """Close the in-flight audit span of a job that died with its node
        and arm the re-parent for its redelivery."""
        span = self._open_audit.pop(job.session_key, None)
        if span is None:
            return
        self._close(span, at_ms, STATUS_KILLED, killed_on=node_id)
        self._last_span[job.session_key] = span.span_id
        self._reparent[job.session_key] = span
        self.killed_spans += 1

    def job_completed(self, job, node_id: str, event) -> None:
        """Close the audit span with its verdict and record latencies."""
        key = job.session_key
        span = self._open_audit.pop(key, None)
        session = self._sessions.get((job.tenant_id, job.epoch))
        if span is not None:
            self._close(span, job.completion_ms, STATUS_OK,
                        classification=event.classification.value,
                        tenant_status=event.tenant_status)
            self._last_span[key] = span.span_id
        self.instant(f"verdict:{event.classification.value}", node_id,
                     job.completion_ms, category="verdict",
                     tenant=job.tenant_id, epoch=job.epoch, kind=job.kind)
        verdict_ms = job.completion_ms - (session["start_ms"] if session
                                          else job.ready_ms)
        self.observe("queue_wait_ms", job.queue_latency_ms,
                     job.start_ms, tenant=job.tenant_id, node=node_id)
        self.observe("service_ms", job.service_ms, job.completion_ms,
                     tenant=job.tenant_id, node=node_id)
        self.observe("verdict_ms", verdict_ms, job.completion_ms,
                     tenant=job.tenant_id, node=node_id)

    def job_deduped(self, job, node_id: str) -> None:
        """Close a redelivered job's span whose verdict already landed."""
        span = self._open_audit.pop(job.session_key, None)
        if span is not None:
            self._close(span, job.completion_ms, STATUS_DUPLICATE)
        self.instant("dedup", node_id, job.completion_ms,
                     category="verdict", tenant=job.tenant_id,
                     epoch=job.epoch)

    def steal_hop(self, job, victim: str, thief: str,
                  ts_ms: float) -> None:
        self.instant(f"steal:{victim}->{thief}", thief, ts_ms,
                     category="steal", tenant=job.tenant_id,
                     epoch=job.epoch, kind=job.kind)

    # -- latency + queue depth ---------------------------------------------

    def observe(self, metric: str, value_ms: float, ts_ms: float,
                tenant: str = "", node: str = "") -> None:
        self._obs.setdefault((metric, tenant, node), []).append(
            (ts_ms, value_ms))

    def sample_queue_depth(self, track: str, ts_ms: float,
                           depth: int) -> None:
        samples = self._queue_depth.setdefault(track, [])
        if samples and samples[-1][0] == ts_ms:
            samples[-1] = (ts_ms, depth)
        elif not samples or samples[-1][1] != depth:
            samples.append((ts_ms, depth))

    def series(self, metric: str, tenant: str | None = None,
               node: str | None = None) -> list[tuple[float, float]]:
        """Timestamped observations matching the tenant/node filters."""
        out = []
        for (name, obs_tenant, obs_node), values in self._obs.items():
            if name != metric:
                continue
            if tenant is not None and obs_tenant != tenant:
                continue
            if node is not None and obs_node != node:
                continue
            out.extend(values)
        out.sort()
        return out

    # -- summaries ---------------------------------------------------------

    @staticmethod
    def _stats(values: list[float]) -> dict:
        return {"count": len(values),
                "mean": round(sum(values) / len(values), 3),
                "p50": round(nearest_rank(values, 0.50), 3),
                "p95": round(nearest_rank(values, 0.95), 3),
                "p99": round(nearest_rank(values, 0.99), 3),
                "max": round(max(values), 3)}

    def summary(self) -> dict:
        """The JSON figure payload for the run store and dashboard."""
        tenants = sorted({t for _, t, _ in self._obs if t})
        nodes = sorted({n for _, _, n in self._obs if n})
        latency: dict = {}
        for metric in self.METRICS:
            values = [v for _, v in self.series(metric)]
            if not values:
                continue
            entry = {"all": self._stats(values), "by_tenant": {},
                     "by_node": {}}
            for tenant in tenants:
                sub = [v for _, v in self.series(metric, tenant=tenant)]
                if sub:
                    entry["by_tenant"][tenant] = self._stats(sub)
            for node in nodes:
                sub = [v for _, v in self.series(metric, node=node)]
                if sub:
                    entry["by_node"][node] = self._stats(sub)
            latency[metric] = entry
        cells = []
        for tenant in tenants:
            for node in nodes:
                values = [v for _, v in self.series(
                    "verdict_ms", tenant=tenant, node=node)]
                if values:
                    cells.append([tenant, node, len(values),
                                  round(sum(values) / len(values), 3),
                                  round(max(values), 3)])
        markers: dict[str, list] = {}
        for instant in self.instants:
            if instant["category"] in ("chaos", "detector", "steal",
                                       "fleet"):
                markers.setdefault(instant["track"], []).append(
                    [round(instant["ts_ms"], 3), instant["name"]])
        sessions_closed: dict[str, int] = {}
        for session in self._sessions.values():
            sessions_closed[session["root"].status] = \
                sessions_closed.get(session["root"].status, 0) + 1
        return {
            "tracks": sorted(self._tracks, key=self._tracks.get),
            "sessions": {"total": len(self._sessions),
                         "by_status": sessions_closed},
            "spans": {"total": len(self.spans),
                      "killed": self.killed_spans,
                      "reparented": self.reparented},
            "latency": latency,
            "heatmap": {"metric": "verdict_ms", "tenants": tenants,
                        "nodes": nodes, "cells": cells},
            "verdict_series": [[round(ts, 3), round(v, 3)]
                               for ts, v in self.series("verdict_ms")],
            "queue_series": [[round(ts, 3), round(v, 3)]
                             for ts, v in self.series("queue_wait_ms")],
            "queue_depth": {track: [[round(ts, 3), depth]
                                    for ts, depth in samples]
                            for track, samples
                            in sorted(self._queue_depth.items())},
            "markers": {track: rows
                        for track, rows in sorted(markers.items())},
        }

    # -- exports -----------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Merged Chrome trace: one track per node, chaos as instants."""
        events: list[tuple[float, int, dict]] = []
        for track, tid in sorted(self._tracks.items(),
                                 key=lambda kv: kv[1]):
            events.append((-1.0, tid, {
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "ts": 0.0, "args": {"name": track}}))
        for span in self.spans:
            end = span.end_ms if span.end_ms is not None else span.start_ms
            args = {"trace_id": span.trace_id, "span_id": span.span_id,
                    "parent_id": span.parent_id, "status": span.status,
                    "tenant": span.tenant_id, "epoch": span.epoch}
            args.update(span.attrs)
            events.append((span.start_ms, span.seq, {
                "ph": "X", "name": span.name, "cat": span.category,
                "pid": 1, "tid": self._tracks[span.track],
                "ts": round(span.start_ms * 1e3, 3),
                "dur": round((end - span.start_ms) * 1e3, 3),
                "args": args}))
        for instant in self.instants:
            args = {"tenant": instant["attrs"].get("tenant", "")}
            args.update(instant["attrs"])
            events.append((instant["ts_ms"], instant["seq"], {
                "ph": "i", "name": instant["name"],
                "cat": instant["category"], "pid": 1,
                "tid": self._tracks[instant["track"]],
                "ts": round(instant["ts_ms"] * 1e3, 3), "s": "t",
                "args": args}))
        for track, samples in sorted(self._queue_depth.items()):
            tid = self._tracks[track]
            for ts, depth in samples:
                events.append((ts, self._seq + tid, {
                    "ph": "C", "name": f"queue:{track}", "pid": 1,
                    "tid": tid, "ts": round(ts * 1e3, 3),
                    "args": {"depth": depth}}))
        events.sort(key=lambda item: (item[0], item[1]))
        return {"traceEvents": [event for _, _, event in events],
                "displayTimeUnit": "ms",
                "otherData": {"domain": "virtual-ms",
                              "producer": "repro.obs.dist",
                              "seed": self.seed}}

    def write_chrome_trace(self, path: str) -> None:
        """Byte-deterministic Chrome trace file (sorted keys, no stamp)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, sort_keys=True)

    def to_ndjson(self) -> str:
        """The structured event log: spans then instants, record order."""
        records = [span.to_json_dict() for span in self.spans]
        records += [{"kind": "instant", "name": i["name"],
                     "track": i["track"], "ts_ms": round(i["ts_ms"], 3),
                     "category": i["category"], "attrs": i["attrs"]}
                    for i in self.instants]
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in records) + ("\n" if records else "")

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


# --------------------------------------------------------------------------
# SLOs.
# --------------------------------------------------------------------------

#: SLO spec keys -> (metric series, percentile) for latency objectives.
_LATENCY_OBJECTIVES = {
    "p50_verdict_ms": ("verdict_series", 0.50),
    "p95_verdict_ms": ("verdict_series", 0.95),
    "p99_verdict_ms": ("verdict_series", 0.99),
    "p99_queue_ms": ("queue_series", 0.99),
}


@dataclass(frozen=True)
class SLOSpec:
    """A declarative latency/coverage objective set, in virtual time.

    Parsed from the inline grammar ``key=value,key=value`` — e.g.
    ``p99_verdict_ms=400,max_unaudited=0.1``.  Latency keys bound a
    nearest-rank percentile of a virtual-time series; ``max_unaudited``
    bounds the fraction of ingested sessions that ended without a
    verdict.
    """

    p50_verdict_ms: float | None = None
    p95_verdict_ms: float | None = None
    p99_verdict_ms: float | None = None
    p99_queue_ms: float | None = None
    max_unaudited: float | None = None

    _KEYS = ("p50_verdict_ms", "p95_verdict_ms", "p99_verdict_ms",
             "p99_queue_ms", "max_unaudited")

    @classmethod
    def parse(cls, text: str) -> "SLOSpec":
        values: dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep:
                raise ObservabilityError(
                    f"SLO clause '{part}' is not key=value")
            if key not in cls._KEYS:
                raise ObservabilityError(
                    f"unknown SLO key '{key}' (known: "
                    f"{', '.join(cls._KEYS)})")
            try:
                value = float(raw)
            except ValueError:
                raise ObservabilityError(
                    f"SLO value for '{key}' is not a number: '{raw}'")
            if value < 0:
                raise ObservabilityError(
                    f"SLO value for '{key}' must be >= 0, got {value}")
            values[key] = value
        if not values:
            raise ObservabilityError(f"empty SLO spec '{text}'")
        return cls(**values)

    def objectives(self) -> list[tuple[str, float]]:
        return [(key, getattr(self, key)) for key in self._KEYS
                if getattr(self, key) is not None]

    @property
    def spec(self) -> str:
        return ",".join(f"{key}={value:g}"
                        for key, value in self.objectives())


@dataclass
class SLOReport:
    """The outcome of evaluating one :class:`SLOSpec` against a run."""

    spec: str
    horizon_ms: float
    windows: int
    objectives: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(objective["ok"] for objective in self.objectives)

    @property
    def breached(self) -> list[str]:
        return [o["name"] for o in self.objectives if not o["ok"]]

    def to_json_dict(self) -> dict:
        return {"spec": self.spec, "ok": self.ok,
                "horizon_ms": round(self.horizon_ms, 3),
                "windows": self.windows,
                "objectives": [dict(o) for o in self.objectives]}

    def render_lines(self) -> list[str]:
        lines = [f"SLO {self.spec} over {self.horizon_ms:.1f} virtual ms "
                 f"({self.windows} burn windows): "
                 + ("OK" if self.ok else "BREACH")]
        for objective in self.objectives:
            burn = objective.get("burn_rates")
            burn_text = ("" if not burn else "  burn "
                         + "/".join(f"{b:.1f}" for b in burn))
            lines.append(
                f"  {objective['name']:16s} target {objective['target']:g}"
                f"  actual {objective['actual']:g}  "
                f"{'ok' if objective['ok'] else 'BREACH'}{burn_text}")
        return lines


def _burn_rates(series: list[list[float]], target: float,
                allowed: float, horizon_ms: float,
                windows: int) -> list[float]:
    """Error-budget burn rate per virtual-time window.

    Burn = (fraction of events in the window breaching the target) /
    (fraction the objective allows); 1.0 burns the budget exactly at
    the objective's rate, >1 exhausts it early.
    """
    if horizon_ms <= 0 or not series:
        return [0.0] * windows
    width = horizon_ms / windows
    rates = []
    for window in range(windows):
        lo, hi = window * width, (window + 1) * width
        inside = [value for ts, value in series
                  if lo <= ts < hi or (window == windows - 1 and ts == hi)]
        if not inside:
            rates.append(0.0)
            continue
        breaching = sum(1 for value in inside if value > target)
        rates.append(round(breaching / len(inside) / allowed, 2))
    return rates


def evaluate_slo(spec: SLOSpec, fleet_obs: dict, *,
                 sessions_total: int, unaudited: int,
                 horizon_ms: float, windows: int = 4) -> SLOReport:
    """Evaluate ``spec`` against a fleet run's observability summary.

    ``fleet_obs`` is the :meth:`DistTracer.summary` payload (live or
    loaded back from a stored run's figures).  Latency objectives use
    nearest-rank percentiles over the full virtual horizon, plus
    per-window burn rates; ``max_unaudited`` compares the unaudited
    session fraction.  Deterministic: same run, same verdict.
    """
    report = SLOReport(spec=spec.spec, horizon_ms=horizon_ms,
                       windows=windows)
    for name, target in spec.objectives():
        if name == "max_unaudited":
            actual = (unaudited / sessions_total if sessions_total
                      else 0.0)
            report.objectives.append({
                "name": name, "target": target,
                "actual": round(actual, 4), "ok": actual <= target,
                "detail": f"{unaudited}/{sessions_total} sessions "
                          f"unaudited"})
            continue
        series_key, quantile = _LATENCY_OBJECTIVES[name]
        series = fleet_obs.get(series_key, [])
        values = [value for _, value in series]
        if not values:
            report.objectives.append({
                "name": name, "target": target, "actual": 0.0,
                "ok": True, "detail": "no observations"})
            continue
        actual = nearest_rank(values, quantile)
        allowed = max(1.0 - quantile, 1e-9)
        report.objectives.append({
            "name": name, "target": target, "actual": round(actual, 3),
            "ok": actual <= target,
            "burn_rates": _burn_rates(series, target, allowed,
                                      horizon_ms, windows),
            "detail": f"{len(values)} observations"})
    return report

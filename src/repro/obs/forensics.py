"""Divergence forensics: localize play-vs-replay drift to a frame.

The audit machinery can already say *that* a run diverged (the flight
recorder gives per-source play-minus-replay deltas); this module says
*where*.  Both sides of a round trip carry a cycle-exact profile
(:mod:`repro.obs.profiler`), so the diff of the two is itself exact:
every (stack, tier, thread, source) bucket either matches to the cycle
or names a concrete place the two executions spent time differently.

:func:`first_divergence` walks the ordered union of both profiles and
returns the first bucket whose cycle counts differ — for a replay that
drifts at a single site (one perturbed noise redraw, one covert delay),
that is *the* (function, pc, source) of the divergence.
:func:`diff_profiles` ranks every divergent bucket by magnitude, and
:func:`render_flame_diff_svg` draws the two profiles side by side with
divergent frames stroked — the visual the ``reproduce profile --diff``
subcommand ships.
"""

from __future__ import annotations

from .profiler import RUNTIME_FRAME, render_flame_svg

__all__ = ["diff_profiles", "first_divergence", "diff_lines",
           "render_flame_diff_svg"]


def _flatten(profile: dict) -> dict:
    """(stack tuple, tier, thread, source) -> exact cycles."""
    flat: dict[tuple, int] = {}
    for entry in profile.get("stacks", ()):
        stack = tuple(entry["stack"])
        for source, cycles in entry["sources"].items():
            key = (stack, entry["tier"], entry["thread"], source)
            flat[key] = flat.get(key, 0) + cycles
    return flat


def _leaf_site(stack: tuple) -> tuple[str, int | None]:
    """Split a leaf frame name back into (function, pc)."""
    leaf = stack[-1] if stack else RUNTIME_FRAME
    function, sep, pc = leaf.rpartition(":")
    if sep and pc.isdigit():
        return function, int(pc)
    return leaf, None


def _entry(key: tuple, play_cycles: int, replay_cycles: int) -> dict:
    stack, tier, thread, source = key
    function, pc = _leaf_site(stack)
    return {
        "stack": list(stack),
        "tier": tier,
        "thread": thread,
        "source": source,
        "function": function,
        "pc": pc,
        "play": play_cycles,
        "replay": replay_cycles,
        "delta": replay_cycles - play_cycles,
    }


def first_divergence(play: dict, replay: dict) -> dict | None:
    """The first (function, pc, source) bucket where the runs differ.

    "First" is in the profiles' canonical bucket order (stack, tier,
    thread, source — lexicographic), which is deterministic and shared
    by both sides; a single-site divergence has exactly one candidate,
    so the order only matters for multi-site drift, where it makes the
    answer reproducible.  Returns ``None`` when the profiles agree
    everywhere — cycle-exactly — which is the TDR-clean case.
    """
    left, right = _flatten(play), _flatten(replay)
    for key in sorted(set(left) | set(right)):
        a, b = left.get(key, 0), right.get(key, 0)
        if a != b:
            return _entry(key, a, b)
    return None


def diff_profiles(play: dict, replay: dict) -> dict:
    """Every divergent bucket, ranked by |delta| (ties: bucket order)."""
    left, right = _flatten(play), _flatten(replay)
    entries = []
    for key in sorted(set(left) | set(right)):
        a, b = left.get(key, 0), right.get(key, 0)
        if a != b:
            entries.append(_entry(key, a, b))
    entries.sort(key=lambda e: (-abs(e["delta"]), e["stack"], e["tier"],
                                e["thread"], e["source"]))
    first = first_divergence(play, replay)
    return {
        "entries": entries,
        "first": first,
        "play_total": sum(left.values()),
        "replay_total": sum(right.values()),
    }


def diff_lines(diff: dict, top: int = 10) -> list[str]:
    """Text rendering of a profile diff (CLI + report twin)."""
    delta = diff["replay_total"] - diff["play_total"]
    lines = [f"  play {diff['play_total']:,} cycles vs replay "
             f"{diff['replay_total']:,} cycles "
             f"({'+' if delta >= 0 else ''}{delta:,})"]
    first = diff.get("first")
    if first is None:
        lines.append("  profiles agree cycle-exactly: no divergent frame")
        return lines
    site = first["function"] if first["pc"] is None else \
        f"{first['function']}:{first['pc']}"
    lines.append(f"  first divergent frame: {site} "
                 f"[{first['source']}] ({first['tier']}) "
                 f"play {first['play']:,} vs replay {first['replay']:,}")
    lines.append(f"  {'divergent frame':<40s} {'source':>9s} "
                 f"{'play':>12s} {'replay':>12s} {'delta':>12s}")
    for entry in diff["entries"][:top]:
        name = ";".join(entry["stack"]) or RUNTIME_FRAME
        if len(name) > 40:
            name = "…" + name[-39:]
        lines.append(f"  {name:<40s} {entry['source']:>9s} "
                     f"{entry['play']:>12,} {entry['replay']:>12,} "
                     f"{entry['delta']:>+12,}")
    remainder = len(diff["entries"]) - top
    if remainder > 0:
        lines.append(f"  … {remainder} more divergent frame(s)")
    return lines


def render_flame_diff_svg(play: dict, replay: dict,
                          width: int = 1000) -> str:
    """Side-by-side differential flame view: play left, replay right.

    Frames on a divergent path are stroked red in both columns; the
    header names the first-divergent site.  Deterministic like the
    single-profile renderer.
    """
    diff = diff_profiles(play, replay)
    divergent_frames = set()
    for entry in diff["entries"]:
        divergent_frames.update(entry["stack"])
        divergent_frames.add(f"[{entry['source']}]")
        if entry["tier"] == "jit" and entry["stack"]:
            divergent_frames.add(entry["stack"][-1] + " [jit]")

    def highlight(name, depth):
        return name in divergent_frames

    first = diff.get("first")
    if first is None:
        caption = "profiles agree cycle-exactly"
    else:
        site = first["function"] if first["pc"] is None else \
            f"{first['function']}:{first['pc']}"
        caption = (f"first divergent frame: {site} [{first['source']}] "
                   f"Δ {first['delta']:+,} cycles")
    col = (width - 20) // 2
    left = render_flame_svg(play, title=f"play — "
                            f"{diff['play_total']:,} cycles",
                            width=col, highlight=highlight)
    right = render_flame_svg(replay, title=f"replay — "
                             f"{diff['replay_total']:,} cycles",
                             width=col, highlight=highlight)

    def svg_height(svg: str) -> int:
        marker = 'height="'
        start = svg.index(marker, svg.index("viewBox")) + len(marker)
        return int(svg[start:svg.index('"', start)])

    height = max(svg_height(left), svg_height(right)) + 26
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="Differential flame view">'
        f'<text x="4" y="15" font-size="12" '
        f'font-family="system-ui, sans-serif" fill="#b3403f">'
        f'{_escape(caption)}</text>'
        f'<g transform="translate(0 22)">{left}</g>'
        f'<g transform="translate({col + 20} 22)">{right}</g>'
        f"</svg>"
    )


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))

"""Persistent, content-addressed store of experiment-run artifacts.

The paper's argument is an *accounting* argument: Table 1 attributes
every cycle of play/replay variance to a named hardware source, and the
figures show the residual falling below network jitter.  Evidence of that
kind is only as credible as the auditable record behind it — a stdout
table that vanishes with the process is not a record.  The run store
gives every experiment run a durable, re-renderable artifact:

* one directory per run under the store root (``REPRO_RUNSTORE`` or
  ``.repro-runs``);
* a JSON **manifest** carrying the schema version, the run kind, config
  and program fingerprints, seeds, a metrics snapshot, detector/audit
  verdicts, and the figure data the run printed;
* sidecar files for the bulkier artifacts: the full cycle-attribution
  ledger(s) (``ledger.json``), the span-tracer NDJSON
  (``trace.ndjson``), and flight-recorder divergence records
  (``flight.json``).

Run ids are **content-addressed**: ``<kind>-<sha256 prefix>`` over the
canonical JSON of everything except the wall-clock ``created_at`` stamp.
Re-saving an identical run is a no-op that returns the same id, and a
loaded record re-serializes to the same id — the store can't silently
drift from what was measured.

Everything is stdlib-only by design; see :mod:`repro.obs.report` for the
HTML rendering and ``reproduce runs``/``report`` for the CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError

__all__ = ["RunRecord", "RunStore", "SCHEMA_VERSION", "config_fingerprint",
           "default_store_root"]

#: Version of the on-disk layout.  Bump on any incompatible change; the
#: loader refuses manifests from the future rather than misreading them.
SCHEMA_VERSION = 1

MANIFEST = "manifest.json"
LEDGER_FILE = "ledger.json"
TRACE_FILE = "trace.ndjson"
FLIGHT_FILE = "flight.json"


def default_store_root() -> str:
    """``REPRO_RUNSTORE`` if set, else ``.repro-runs`` in the cwd."""
    return os.environ.get("REPRO_RUNSTORE", "") or ".repro-runs"


def config_fingerprint(config) -> str:
    """Stable fingerprint of a :class:`MachineConfig` (same idiom as the
    replay cache: the frozen dataclass repr covers every timing knob)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def _canonical(obj):
    """JSON-normalize ``obj`` (tuples->lists, dict keys->str) so hashing
    before a save and after a load see identical bytes."""
    return json.loads(json.dumps(obj, sort_keys=True))


def _compact(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class RunRecord:
    """Everything one persisted run carries.

    ``figures`` holds the numeric payload each experiment printed at run
    time (fig6 spreads, fig8 ROC cells, Table-1 totals, phase tables) so
    a report re-render reproduces the exact run-time numbers; ``ledgers``
    maps a side name (``play`` / ``replay`` / ``clean`` / ``merged``) to
    its per-source cycle totals.
    """

    kind: str
    label: str = ""
    config: dict = field(default_factory=dict)
    program: str = ""
    seeds: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    ledgers: dict = field(default_factory=dict)
    verdicts: dict = field(default_factory=dict)
    figures: dict = field(default_factory=dict)
    flights: list = field(default_factory=list)
    trace_ndjson: str = ""
    schema_version: int = SCHEMA_VERSION

    def content_payload(self) -> dict:
        """The canonical content the run id is derived from.

        ``created_at`` is deliberately absent: identity is *what was
        measured*, not when it was written down.  The trace rides in as
        its digest so the manifest hash doesn't swallow megabytes.
        """
        return _canonical({
            "schema_version": self.schema_version,
            "kind": self.kind,
            "label": self.label,
            "config": self.config,
            "program": self.program,
            "seeds": self.seeds,
            "metrics": self.metrics,
            "ledgers": self.ledgers,
            "verdicts": self.verdicts,
            "figures": self.figures,
            "flights": self.flights,
            "trace_sha256": hashlib.sha256(
                self.trace_ndjson.encode()).hexdigest(),
        })

    def run_id(self) -> str:
        digest = hashlib.sha256(
            _compact(self.content_payload()).encode()).hexdigest()
        return f"{self.kind}-{digest[:12]}"


class RunStore:
    """Directory-per-run artifact store with content-addressed ids."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None \
            else Path(default_store_root())

    # -- writing -------------------------------------------------------------

    def save(self, record: RunRecord) -> str:
        """Persist ``record``; returns its run id.

        Idempotent: saving identical content twice leaves one directory
        and returns the same id.
        """
        run_id = record.run_id()
        run_dir = self.root / run_id
        if (run_dir / MANIFEST).exists():
            return run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        payload = record.content_payload()
        manifest = {
            "schema_version": record.schema_version,
            "run_id": run_id,
            "created_at": time.time(),
            "kind": record.kind,
            "label": record.label,
            "config": payload["config"],
            "program": record.program,
            "seeds": payload["seeds"],
            "metrics": payload["metrics"],
            "verdicts": payload["verdicts"],
            "figures": payload["figures"],
            "trace_sha256": payload["trace_sha256"],
        }
        (run_dir / LEDGER_FILE).write_text(
            json.dumps(payload["ledgers"], sort_keys=True, indent=2) + "\n")
        if record.trace_ndjson:
            (run_dir / TRACE_FILE).write_text(record.trace_ndjson)
        if record.flights:
            (run_dir / FLIGHT_FILE).write_text(
                json.dumps(payload["flights"], sort_keys=True, indent=2)
                + "\n")
        # Manifest last: a directory with a manifest is a complete run.
        (run_dir / MANIFEST).write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        return run_id

    # -- reading -------------------------------------------------------------

    def manifest(self, run_id: str) -> dict:
        path = self.root / run_id / MANIFEST
        if not path.exists():
            raise ObservabilityError(f"no run '{run_id}' in {self.root}")
        manifest = json.loads(path.read_text())
        if manifest.get("schema_version", 0) > SCHEMA_VERSION:
            raise ObservabilityError(
                f"run '{run_id}' uses schema "
                f"v{manifest['schema_version']}; this build reads up to "
                f"v{SCHEMA_VERSION}")
        return manifest

    def load(self, run_id: str) -> RunRecord:
        """Rebuild the full :class:`RunRecord` (manifest + sidecars)."""
        run_id = self.resolve(run_id)
        manifest = self.manifest(run_id)
        run_dir = self.root / run_id
        ledger_path = run_dir / LEDGER_FILE
        trace_path = run_dir / TRACE_FILE
        flight_path = run_dir / FLIGHT_FILE
        record = RunRecord(
            kind=manifest["kind"],
            label=manifest.get("label", ""),
            config=manifest.get("config", {}),
            program=manifest.get("program", ""),
            seeds=manifest.get("seeds", []),
            metrics=manifest.get("metrics", {}),
            ledgers=(json.loads(ledger_path.read_text())
                     if ledger_path.exists() else {}),
            verdicts=manifest.get("verdicts", {}),
            figures=manifest.get("figures", {}),
            flights=(json.loads(flight_path.read_text())
                     if flight_path.exists() else []),
            trace_ndjson=(trace_path.read_text()
                          if trace_path.exists() else ""),
            schema_version=manifest.get("schema_version", SCHEMA_VERSION))
        if record.run_id() != run_id:
            raise ObservabilityError(
                f"run '{run_id}' content digest mismatch — artifacts "
                f"modified after save (recomputed {record.run_id()})")
        return record

    def exists(self, run_id: str) -> bool:
        return (self.root / run_id / MANIFEST).exists()

    def list_runs(self, kind: str | None = None) -> list[dict]:
        """Manifests of every stored run, oldest first."""
        if not self.root.exists():
            return []
        manifests = []
        for entry in sorted(self.root.iterdir()):
            if (entry / MANIFEST).exists():
                manifest = self.manifest(entry.name)
                if kind is None or manifest.get("kind") == kind:
                    manifests.append(manifest)
        manifests.sort(key=lambda m: (m.get("created_at", 0.0),
                                      m.get("run_id", "")))
        return manifests

    def latest(self, kind: str | None = None) -> dict | None:
        runs = self.list_runs(kind=kind)
        return runs[-1] if runs else None

    def resolve(self, ref: str) -> str:
        """Resolve a full id or unique prefix to a stored run id."""
        if self.exists(ref):
            return ref
        if not self.root.exists():
            raise ObservabilityError(f"no run '{ref}' in {self.root}")
        matches = [entry.name for entry in self.root.iterdir()
                   if entry.name.startswith(ref)
                   and (entry / MANIFEST).exists()]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ObservabilityError(f"no run '{ref}' in {self.root}")
        raise ObservabilityError(
            f"ambiguous run prefix '{ref}': {sorted(matches)}")

    # -- maintenance ---------------------------------------------------------

    def delete(self, run_id: str) -> None:
        run_id = self.resolve(run_id)
        shutil.rmtree(self.root / run_id)

    def prune(self, keep: int) -> list[str]:
        """Drop the oldest runs, keeping the ``keep`` most recent;
        returns the removed ids."""
        if keep < 0:
            raise ObservabilityError(f"prune keep must be >= 0, got {keep}")
        runs = self.list_runs()
        removed = []
        for manifest in runs[:max(0, len(runs) - keep)]:
            shutil.rmtree(self.root / manifest["run_id"])
            removed.append(manifest["run_id"])
        return removed

    def __len__(self) -> int:
        return len(self.list_runs())

"""Opcode sampling in the interpreter hot loop.

A full per-instruction opcode trace would dominate the simulation's host
runtime, so the profiler samples instead: the interpreter calls
:meth:`OpcodeSampler.record` with the current opcode once every
``stride`` executed instructions (it piggybacks on the existing
platform-poll branch, so the disabled cost is a single ``is None`` check
per poll, not per instruction).  Under the deterministic round-robin
scheduler the sample points are identical across runs of the same
program, so sampled histograms are reproducible, and — like every
``repro.obs`` collector — sampling never touches the virtual clock.

Since the trace-compiling tier-up, samples carry their *site* — the
``(function, pc)`` pair — not just the bare opcode, so hot-region
detection can reconstruct which bytecode ranges the samples landed in.
The aggregate opcode histogram (and its export shape) is unchanged;
site-resolved data rides alongside under an export ``version`` field.
"""

from __future__ import annotations


class OpcodeSampler:
    """Sampled opcode frequencies (and sample sites) for one machine run."""

    #: Export-shape version: 1 was the bare opcode histogram; 2 added
    #: site-resolved samples (``sites``) while keeping every v1 field.
    EXPORT_VERSION = 2

    __slots__ = ("stride", "counts", "sites")

    def __init__(self, stride: int = 256) -> None:
        #: Instructions between samples (the VM's poll interval).
        self.stride = stride
        #: Raw opcode value -> number of samples.
        self.counts: dict[int, int] = {}
        #: (function index, pc, raw opcode) -> number of samples.  Callers
        #: that record without a site (the v1 API) leave this empty.
        self.sites: dict[tuple[int, int, int], int] = {}

    def record(self, op: int, function: int = -1, pc: int = -1) -> None:
        """Count one sampled opcode, optionally with its site (hot path)."""
        counts = self.counts
        counts[op] = counts.get(op, 0) + 1
        if pc >= 0:
            sites = self.sites
            key = (function, pc, op)
            sites[key] = sites.get(key, 0) + 1

    @property
    def samples(self) -> int:
        return sum(self.counts.values())

    def histogram(self) -> dict[str, int]:
        """Opcode-name histogram, most frequent first.

        Uses the same :func:`~repro.vm.isa.opcode_name` mnemonics as the
        site export (``OP_<code>`` for unknown opcodes), so histogram
        keys and ``sites[*]["op"]`` values round-trip through one parser.
        """
        from repro.vm.isa import opcode_name  # deferred: obs stays light

        return {opcode_name(op): count
                for op, count in sorted(self.counts.items(),
                                        key=lambda kv: (-kv[1], kv[0]))}

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most frequently sampled opcodes."""
        return list(self.histogram().items())[:n]

    def hot_sites(self, n: int = 10) -> list[tuple[int, int, int]]:
        """The ``n`` most-sampled ``(function, pc)`` sites.

        Opcode splits at one site are merged; ties break on (function,
        pc) so the ranking is deterministic.
        """
        merged: dict[tuple[int, int], int] = {}
        for (function, pc, _op), count in self.sites.items():
            key = (function, pc)
            merged[key] = merged.get(key, 0) + count
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(function, pc, count)
                for (function, pc), count in ranked[:n]]

    def estimated_instructions(self) -> int:
        """Instructions represented by the samples (samples * stride)."""
        return self.samples * self.stride

    def export(self) -> dict:
        """JSON-ready snapshot; v1 consumers read the same top-level keys.

        ``version``/``sites`` are additive: ``stride``, ``samples`` and
        ``histogram`` keep their v1 meaning and shape exactly.
        """
        from repro.vm.isa import opcode_name

        return {
            "version": self.EXPORT_VERSION,
            "stride": self.stride,
            "samples": self.samples,
            "histogram": self.histogram(),
            "sites": [
                {"function": function, "pc": pc,
                 "op": opcode_name(op), "count": count}
                for (function, pc, op), count in sorted(self.sites.items())
            ],
        }

    @classmethod
    def from_export(cls, data: dict) -> "OpcodeSampler":
        """Rebuild a sampler from an :meth:`export` snapshot.

        The inverse of :meth:`export` for both v1 (histogram only) and
        v2 (``sites``) shapes: mnemonics parse back to raw opcode
        values — including the ``OP_<code>`` fallback names that
        tail-of-window entries sampled through the tier-up's
        short-variant fallback chain can carry — so
        ``OpcodeSampler.from_export(s.export()).export() == s.export()``
        holds exactly.  Raises :class:`ObservabilityError` on a
        mnemonic no parser recognizes.
        """
        from repro.errors import ObservabilityError
        from repro.vm.isa import Op

        def code_of(name: str) -> int:
            try:
                return int(Op[name])
            except KeyError:
                if name.startswith("OP_") and name[3:].isdigit():
                    return int(name[3:])
                raise ObservabilityError(
                    f"unknown opcode mnemonic in sampler export: {name!r}")

        sampler = cls(stride=int(data.get("stride", 256)))
        for name, count in data.get("histogram", {}).items():
            op = code_of(name)
            sampler.counts[op] = sampler.counts.get(op, 0) + int(count)
        for site in data.get("sites", ()):
            key = (int(site["function"]), int(site["pc"]),
                   code_of(site["op"]))
            sampler.sites[key] = sampler.sites.get(key, 0) + \
                int(site["count"])
        return sampler

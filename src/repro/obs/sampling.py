"""Opcode sampling in the interpreter hot loop.

A full per-instruction opcode trace would dominate the simulation's host
runtime, so the profiler samples instead: the interpreter calls
:meth:`OpcodeSampler.record` with the current opcode once every
``stride`` executed instructions (it piggybacks on the existing
platform-poll branch, so the disabled cost is a single ``is None`` check
per poll, not per instruction).  Under the deterministic round-robin
scheduler the sample points are identical across runs of the same
program, so sampled histograms are reproducible, and — like every
``repro.obs`` collector — sampling never touches the virtual clock.
"""

from __future__ import annotations


class OpcodeSampler:
    """Sampled opcode frequencies for one machine run."""

    __slots__ = ("stride", "counts")

    def __init__(self, stride: int = 256) -> None:
        #: Instructions between samples (the VM's poll interval).
        self.stride = stride
        #: Raw opcode value -> number of samples.
        self.counts: dict[int, int] = {}

    def record(self, op: int) -> None:
        """Count one sampled opcode (hot path)."""
        counts = self.counts
        counts[op] = counts.get(op, 0) + 1

    @property
    def samples(self) -> int:
        return sum(self.counts.values())

    def histogram(self) -> dict[str, int]:
        """Opcode-name histogram, most frequent first."""
        from repro.vm.isa import Op  # deferred: keep obs import-light

        def name_of(op: int) -> str:
            try:
                return Op(op).name
            except ValueError:
                return f"op#{op}"

        return {name_of(op): count
                for op, count in sorted(self.counts.items(),
                                        key=lambda kv: (-kv[1], kv[0]))}

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most frequently sampled opcodes."""
        return list(self.histogram().items())[:n]

    def estimated_instructions(self) -> int:
        """Instructions represented by the samples (samples * stride)."""
        return self.samples * self.stride

"""Render persisted runs as text and as a zero-dependency HTML report.

Two renderers over :class:`~repro.obs.runstore.RunRecord`:

* :func:`render_text` — exactly the lines the experiment printed at run
  time.  The CLI experiments build their stdout *through* the formatters
  in this module (:func:`fig6_lines`, :func:`attribution_lines`, ...), so
  a re-render from the store reproduces the run-time numbers by
  construction, not by coincidence.
* :func:`render_html` — a single self-contained HTML document (inline
  SVG, inline CSS, no external assets or JS libraries) with the Figure 6
  stability bars, Figure 8 ROC curves, the Table-1 attribution waterfall,
  and the per-phase wall-clock table.  Every chart ships a data-table
  twin and native ``<title>`` hover tooltips, and the palette follows the
  validated reference tokens (single blue hue for magnitude, fixed-order
  categorical slots for detector identity, text in ink tokens, hairline
  grids, dark mode from the same ramps via ``prefers-color-scheme``).

Figure payload conventions (the ``figures`` dict of a run record):

* ``fig6``: ``{"kernels": [...], "scenarios": [...],
  "spreads": {kernel: {scenario: percent}}}``
* ``fig8``: ``{"curves": [{"detector": str, "auc": float,
  "points": [[fpr, tpr], ...]}]}``
* ``table1``: ``{"tables": [{"ledger": <key into record.ledgers>,
  "total_cycles": int, "title": str}]}``
"""

from __future__ import annotations

import html

from repro.obs.ledger import format_attribution_table

__all__ = ["attribution_lines", "fig6_lines", "phase_lines",
           "phase_rows", "render_html", "render_text"]


# --------------------------------------------------------------------------
# Text formatters — shared between run-time stdout and report re-renders.
# --------------------------------------------------------------------------

def fig6_lines(fig6: dict) -> list[str]:
    """The Figure 6 stdout block (header + one row per kernel)."""
    scenarios = fig6.get("scenarios", [])
    header = f"  {'kernel':8s}" + "".join(f" {s:>10s}" for s in scenarios)
    lines = [header]
    for kernel in fig6.get("kernels", []):
        row = f"  {kernel:8s}"
        for scenario in scenarios:
            row += f" {fig6['spreads'][kernel][scenario]:>9.3f}%"
        lines.append(row)
    return lines


def attribution_lines(record) -> list[str]:
    """Every Table-1 attribution table the run printed, blank-separated."""
    lines: list[str] = []
    for spec in record.figures.get("table1", {}).get("tables", []):
        if lines:
            lines.append("")
        lines.extend(format_attribution_table(
            record.ledgers.get(spec["ledger"], {}),
            spec.get("total_cycles"),
            title=spec.get("title", spec["ledger"])).splitlines())
    return lines


def phase_rows(metrics: dict) -> list[tuple[str, int, float]]:
    """``(phase, runs, total_seconds)`` from a persisted metrics snapshot
    (the stored twin of :func:`repro.obs.metrics.phase_report`)."""
    rows = []
    for name, inst in sorted(metrics.items()):
        if (name.startswith("phase_") and name.endswith("_seconds")
                and inst.get("kind") == "histogram"):
            rows.append((name[len("phase_"):-len("_seconds")],
                         int(inst["count"]), float(inst["sum"])))
    return rows


def phase_lines(metrics: dict) -> list[str]:
    rows = phase_rows(metrics)
    if not rows:
        return []
    lines = [f"  {'phase':24s} {'runs':>5s} {'wall-clock':>11s}"]
    for name, count, total in rows:
        lines.append(f"  {name:24s} {count:>5d} {total:>10.2f}s")
    return lines


def render_text(record, run_id: str = "") -> str:
    """Re-render one stored run's numbers exactly as printed at run time."""
    lines = [f"run {run_id or record.run_id()} ({record.kind})"
             + (f" — {record.label}" if record.label else "")]
    if record.config:
        config = ", ".join(f"{k}={v}"
                           for k, v in sorted(record.config.items()))
        lines.append(f"  config: {config}")
    if record.seeds:
        lines.append(f"  seeds: {record.seeds}")
    if "fig6" in record.figures:
        lines.append("")
        lines.extend(fig6_lines(record.figures["fig6"]))
    profiles = record.figures.get("profile", {})
    for side in sorted(profiles):
        from repro.obs.profiler import profile_lines

        lines.append("")
        lines.append(f"  {side} profile:")
        lines.extend(profile_lines(profiles[side]))
    if "play" in profiles and "replay" in profiles:
        from repro.obs.forensics import diff_lines, diff_profiles

        lines.append("")
        lines.extend(diff_lines(diff_profiles(profiles["play"],
                                              profiles["replay"])))
    table1 = attribution_lines(record)
    if table1:
        lines.append("")
        lines.extend(table1)
    fig8 = record.figures.get("fig8", {})
    if fig8.get("matrix"):
        from collections import namedtuple

        from repro.analysis.experiment import matrix_as_table

        cell = namedtuple("cell", "channel detector auc")
        lines.append("")
        lines.extend(matrix_as_table(
            [cell(m["channel"], m["detector"], m["auc"])
             for m in fig8["matrix"]]).splitlines())
    else:
        for curve in fig8.get("curves", []):
            lines.append(f"  {curve['detector']:24s} AUC {curve['auc']:.4f}")
    if record.verdicts:
        lines.append("")
        for name, value in sorted(record.verdicts.items()):
            lines.append(f"  {name}: {value}")
    phases = phase_lines(record.metrics)
    if phases:
        lines.append("")
        lines.extend(phases)
    if record.flights:
        lines.append(f"  {len(record.flights)} divergence flight "
                     f"record(s) on file")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# HTML / SVG.
# --------------------------------------------------------------------------

_CSS = """
:root {
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  --seq: #2a78d6; --seq-deep: #1c5cab;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
    --seq: #3987e5; --seq-deep: #6da7ec;
  }
}
body { background: var(--page); color: var(--ink); margin: 2rem auto;
  max-width: 780px; padding: 0 1rem;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 1.35rem; } h2 { font-size: 1.05rem; margin: 2rem 0 0.5rem; }
figure { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; margin: 1rem 0; padding: 16px; }
figcaption { color: var(--ink-2); font-size: 0.85rem; margin-bottom: 10px; }
svg { display: block; max-width: 100%; }
svg text { font: 11px system-ui, sans-serif; fill: var(--ink-2); }
svg .muted { fill: var(--muted); font-size: 10px; }
table { border-collapse: collapse; font-size: 0.85rem; margin-top: 8px; }
th, td { border-bottom: 1px solid var(--grid); padding: 3px 10px;
  text-align: left; }
td.num, th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
details summary { color: var(--ink-2); cursor: pointer;
  font-size: 0.8rem; margin-top: 8px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin-bottom: 8px;
  font-size: 0.8rem; color: var(--ink-2); }
.legend .chip { border-radius: 2px; display: inline-block; height: 10px;
  margin-right: 5px; width: 10px; }
.meta { color: var(--muted); font-size: 0.8rem; }
code { color: var(--ink-2); }
"""


def _e(value) -> str:
    return html.escape(str(value), quote=True)


def _hbar(x: float, y: float, w: float, h: float, fill: str,
          tooltip: str, r: float = 4.0) -> str:
    """Horizontal bar: square at the baseline, rounded at the data end."""
    r = min(r, max(w, 0.0), h / 2)
    path = (f"M{x:.1f},{y:.1f} h{w - r:.1f} "
            f"a{r},{r} 0 0 1 {r},{r} v{h - 2 * r:.1f} "
            f"a{r},{r} 0 0 1 {-r},{r} h{-(w - r):.1f} z")
    return (f'<path d="{path}" fill="{fill}">'
            f"<title>{_e(tooltip)}</title></path>")


def _table(headers: list[str], rows: list[list], numeric_from: int = 1
           ) -> str:
    """Accessible data-table twin for a chart."""
    out = ["<table><tr>"]
    for i, header in enumerate(headers):
        cls = ' class="num"' if i >= numeric_from else ""
        out.append(f"<th{cls}>{_e(header)}</th>")
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="num"' if i >= numeric_from else ""
            out.append(f"<td{cls}>{_e(cell)}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def _details_table(headers, rows, numeric_from: int = 1) -> str:
    return ("<details><summary>Data table</summary>"
            + _table(headers, rows, numeric_from) + "</details>")


def _fig6_svg(fig6: dict) -> str:
    """Small multiples (one panel per scenario), single-hue bars."""
    kernels = fig6.get("kernels", [])
    scenarios = fig6.get("scenarios", [])
    spreads = fig6.get("spreads", {})
    if not kernels or not scenarios:
        return ""
    xmax = max((spreads[k][s] for k in kernels for s in scenarios),
               default=0.0) * 1.05 or 1.0
    gutter, panel_w, panel_gap = 58, 176, 18
    bar_h, row_gap, top = 15, 9, 26
    panel_h = len(kernels) * (bar_h + row_gap)
    width = gutter + len(scenarios) * (panel_w + panel_gap)
    height = top + panel_h + 22
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Figure 6 replay stability by kernel and '
             f'scenario">']
    for i, kernel in enumerate(kernels):
        y = top + i * (bar_h + row_gap)
        parts.append(f'<text x="{gutter - 8}" y="{y + bar_h - 4}" '
                     f'text-anchor="end">{_e(kernel)}</text>')
    for col, scenario in enumerate(scenarios):
        x0 = gutter + col * (panel_w + panel_gap)
        parts.append(f'<text x="{x0}" y="14">{_e(scenario)}</text>')
        for frac in (0.5, 1.0):
            gx = x0 + (panel_w - 40) * frac
            parts.append(f'<line x1="{gx:.1f}" y1="{top}" x2="{gx:.1f}" '
                         f'y2="{top + panel_h - row_gap + 4}" '
                         f'stroke="var(--grid)" stroke-width="1"/>')
            parts.append(f'<text class="muted" x="{gx:.1f}" '
                         f'y="{top + panel_h + 12}" text-anchor="middle">'
                         f"{xmax * frac:.2f}%</text>")
        parts.append(f'<line x1="{x0}" y1="{top}" x2="{x0}" '
                     f'y2="{top + panel_h - row_gap + 4}" '
                     f'stroke="var(--axis)" stroke-width="1"/>')
        largest = max(kernels, key=lambda k: spreads[k][scenario])
        for i, kernel in enumerate(kernels):
            value = spreads[kernel][scenario]
            y = top + i * (bar_h + row_gap)
            w = max((panel_w - 40) * value / xmax, 0.5)
            parts.append(_hbar(x0, y, w, bar_h, "var(--seq)",
                               f"{kernel} / {scenario}: {value:.3f}%"))
            if kernel == largest:
                parts.append(f'<text x="{x0 + w + 5:.1f}" '
                             f'y="{y + bar_h - 4}">{value:.3f}%</text>')
    parts.append("</svg>")
    return "".join(parts)


def _fig6_section(fig6: dict) -> str:
    rows = [[k] + [f"{fig6['spreads'][k][s]:.3f}%"
                   for s in fig6["scenarios"]]
            for k in fig6["kernels"]]
    return ("<h2>Figure 6 — replay timing stability</h2><figure>"
            "<figcaption>Spread of total virtual cycles across repeated "
            "runs (lower is more stable); one panel per noise scenario, "
            "one bar per SciMark kernel.</figcaption>"
            + _fig6_svg(fig6)
            + _details_table(["kernel"] + list(fig6["scenarios"]), rows)
            + "</figure>")


def _roc_svg(curves: list[dict]) -> str:
    size, margin_l, margin_b, margin_t = 280, 38, 32, 8
    width, height = margin_l + size + 12, margin_t + size + margin_b
    x0, y0 = margin_l, margin_t

    def px(fpr: float) -> float:
        return x0 + fpr * size

    def py(tpr: float) -> float:
        return y0 + (1.0 - tpr) * size

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Figure 8 ROC curves per detector">']
    for frac in (0.25, 0.5, 0.75):
        parts.append(f'<line x1="{px(frac):.1f}" y1="{y0}" '
                     f'x2="{px(frac):.1f}" y2="{y0 + size}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<line x1="{x0}" y1="{py(frac):.1f}" '
                     f'x2="{x0 + size}" y2="{py(frac):.1f}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
    parts.append(f'<rect x="{x0}" y="{y0}" width="{size}" height="{size}" '
                 f'fill="none" stroke="var(--axis)" stroke-width="1"/>')
    parts.append(f'<line x1="{px(0):.1f}" y1="{py(0):.1f}" '
                 f'x2="{px(1):.1f}" y2="{py(1):.1f}" '
                 f'stroke="var(--axis)" stroke-width="1" '
                 f'stroke-dasharray="4 4"/>')
    for frac in (0.0, 0.5, 1.0):
        parts.append(f'<text class="muted" x="{px(frac):.1f}" '
                     f'y="{y0 + size + 14}" text-anchor="middle">'
                     f"{frac:.1f}</text>")
        parts.append(f'<text class="muted" x="{x0 - 6}" '
                     f'y="{py(frac) + 4:.1f}" text-anchor="end">'
                     f"{frac:.1f}</text>")
    parts.append(f'<text x="{x0 + size / 2:.0f}" y="{height - 4}" '
                 f'text-anchor="middle">false-positive rate</text>')
    for i, curve in enumerate(curves[:8]):
        color = f"var(--s{i + 1})"
        points = " ".join(f"{px(fpr):.1f},{py(tpr):.1f}"
                          for fpr, tpr in curve["points"])
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linejoin="round">'
                     f'<title>{_e(curve["detector"])} '
                     f'(AUC {curve["auc"]:.3f})</title></polyline>')
        if len(curves) <= 4 and curve["points"]:
            fpr, tpr = max(curve["points"], key=lambda p: p[1] - p[0])
            # Stagger labels and keep them inside the plot's top edge.
            label_y = max(py(tpr) - 5 - 12 * i, y0 + 12)
            parts.append(f'<text x="{px(fpr) + 6:.1f}" '
                         f'y="{label_y:.1f}">'
                         f'{_e(curve["detector"])}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _roc_section(fig8: dict) -> str:
    curves = fig8.get("curves", [])
    if not curves:
        return ""
    legend = ['<div class="legend">']
    for i, curve in enumerate(curves[:8]):
        legend.append(f'<span><span class="chip" '
                      f'style="background:var(--s{i + 1})"></span>'
                      f'{_e(curve["detector"])} '
                      f"(AUC {curve['auc']:.3f})</span>")
    legend.append("</div>")
    if fig8.get("matrix"):
        rows = [[f"{m['channel']} / {m['detector']}", f"{m['auc']:.4f}"]
                for m in fig8["matrix"]]
        twin = _details_table(["channel / detector", "AUC"], rows)
    else:
        rows = [[c["detector"], f"{c['auc']:.4f}", len(c["points"])]
                for c in curves]
        twin = _details_table(["detector", "AUC", "points"], rows)
    channel = fig8.get("channel")
    caption = ("True-positive vs false-positive rate per detector"
               + (f" on the <em>{_e(channel)}</em> channel"
                  if channel else "")
               + "; the dashed diagonal is chance.")
    return ("<h2>Figure 8 — detector ROC curves</h2><figure>"
            f"<figcaption>{caption}</figcaption>"
            + "".join(legend) + _roc_svg(curves)
            + twin
            + "</figure>")


def _waterfall_svg(totals: dict, total_cycles: int, title: str) -> str:
    """Table-1 attribution as a cumulative waterfall: each source's bar
    starts where the previous one ended; the final bar is the total."""
    entries = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    grand = sum(totals.values()) or 1
    gutter, plot_w = 128, 470
    bar_h, row_gap, top = 16, 8, 8
    height = top + (len(entries) + 1) * (bar_h + row_gap) + 20
    width = gutter + plot_w + 60
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="{_e(title)} cycle attribution waterfall">']
    for frac in (0.25, 0.5, 0.75, 1.0):
        gx = gutter + plot_w * frac
        parts.append(f'<line x1="{gx:.1f}" y1="{top}" x2="{gx:.1f}" '
                     f'y2="{height - 20}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text class="muted" x="{gx:.1f}" '
                     f'y="{height - 6}" text-anchor="middle">'
                     f"{frac:.0%}</text>")
    cumulative = 0
    for i, (source, cycles) in enumerate(entries):
        y = top + i * (bar_h + row_gap)
        x = gutter + plot_w * cumulative / grand
        w = max(plot_w * cycles / grand, 0.5)
        share = cycles / grand
        parts.append(f'<text x="{gutter - 8}" y="{y + bar_h - 4}" '
                     f'text-anchor="end">{_e(source)}</text>')
        parts.append(_hbar(x, y, w, bar_h, "var(--seq)",
                           f"{source}: {cycles:,} cycles ({share:.2%})"))
        if share >= 0.01:
            parts.append(f'<text x="{x + w + 5:.1f}" '
                         f'y="{y + bar_h - 4}">{share:.1%}</text>')
        cumulative += cycles
    y = top + len(entries) * (bar_h + row_gap)
    parts.append(f'<text x="{gutter - 8}" y="{y + bar_h - 4}" '
                 f'text-anchor="end">total</text>')
    exact = (total_cycles is None) or (cumulative == total_cycles)
    parts.append(_hbar(gutter, y, plot_w, bar_h, "var(--seq-deep)",
                       f"total: {cumulative:,} cycles (accounting "
                       + ("exact" if exact else "MISMATCH") + ")"))
    parts.append(f'<text x="{gutter + plot_w + 5}" '
                 f'y="{y + bar_h - 4}">{cumulative:,}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _table1_section(record) -> str:
    specs = record.figures.get("table1", {}).get("tables", [])
    if not specs:
        return ""
    parts = ["<h2>Table 1 — cycle attribution</h2>"]
    for spec in specs:
        totals = record.ledgers.get(spec["ledger"], {})
        if not totals:
            continue
        total_cycles = spec.get("total_cycles")
        grand = sum(totals.values())
        exact = (total_cycles is None) or (grand == total_cycles)
        rows = [[source, f"{cycles:,}", f"{cycles / (grand or 1):.2%}"]
                for source, cycles
                in sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))]
        rows.append(["total", f"{grand:,}",
                     "exact" if exact else
                     f"MISMATCH vs clock {total_cycles:,}"])
        parts.append(
            "<figure><figcaption>"
            + _e(spec.get("title", spec["ledger"]))
            + " — every virtual cycle attributed to a named source; "
              "bars accumulate left to right to the run's clock total."
              "</figcaption>"
            + _waterfall_svg(totals, total_cycles,
                             spec.get("title", spec["ledger"]))
            + _details_table(["source", "cycles", "share"], rows)
            + "</figure>")
    return "".join(parts)


def _phases_section(metrics: dict) -> str:
    rows = phase_rows(metrics)
    if not rows:
        return ""
    return ("<h2>Per-phase wall-clock</h2><figure>"
            "<figcaption>Host-time cost of each instrumented pipeline "
            "phase.</figcaption>"
            + _table(["phase", "runs", "total"],
                     [[name, count, f"{total:.2f}s"]
                      for name, count, total in rows])
            + "</figure>")


def _verdicts_section(verdicts: dict) -> str:
    if not verdicts:
        return ""
    return ("<h2>Verdicts</h2><figure>"
            + _table(["check", "value"],
                     [[k, v] for k, v in sorted(verdicts.items())])
            + "</figure>")


# --------------------------------------------------------------------------
# Fleet telemetry page (figures["fleet_obs"] of a fleet-audit run).
# --------------------------------------------------------------------------

#: Marker-name prefix -> categorical slot (fixed order = fixed identity).
_MARKER_COLORS = (("crash", "var(--s8)"), ("stall", "var(--s4)"),
                  ("slow", "var(--s2)"), ("steal", "var(--s1)"),
                  ("suspect", "var(--s5)"), ("resume", "var(--s3)"),
                  ("rebalance", "var(--s7)"), ("degraded", "var(--s6)"))


def _marker_color(name: str) -> str:
    for prefix, color in _MARKER_COLORS:
        if name.startswith(prefix):
            return color
    return "var(--axis)"


def _fleet_heatmap_svg(heatmap: dict) -> str:
    """Tenant x node latency heatmap: opacity ramp on the single hue."""
    tenants = heatmap.get("tenants", [])
    nodes = heatmap.get("nodes", [])
    cells = {(t, n): (count, mean, worst)
             for t, n, count, mean, worst in heatmap.get("cells", [])}
    if not tenants or not nodes:
        return ""
    peak = max((mean for _, mean, _ in cells.values()), default=0.0) or 1.0
    gutter, top, cw, ch, gap = 96, 22, 74, 24, 3
    width = gutter + len(nodes) * (cw + gap) + 8
    height = top + len(tenants) * (ch + gap) + 6
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Time-to-verdict heatmap per tenant and node">']
    for col, node in enumerate(nodes):
        x = gutter + col * (cw + gap)
        parts.append(f'<text x="{x + cw / 2:.1f}" y="14" '
                     f'text-anchor="middle">{_e(node)}</text>')
    for row, tenant in enumerate(tenants):
        y = top + row * (ch + gap)
        parts.append(f'<text x="{gutter - 8}" y="{y + ch - 7}" '
                     f'text-anchor="end">{_e(tenant)}</text>')
        for col, node in enumerate(nodes):
            x = gutter + col * (cw + gap)
            cell = cells.get((tenant, node))
            if cell is None:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{cw}" height="{ch}" '
                    f'rx="3" fill="none" stroke="var(--grid)" '
                    f'stroke-width="1"><title>'
                    f"{_e(tenant)} on {_e(node)}: no audits"
                    f"</title></rect>")
                continue
            count, mean, worst = cell
            opacity = 0.15 + 0.85 * (mean / peak)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cw}" height="{ch}" '
                f'rx="3" fill="var(--seq)" '
                f'fill-opacity="{opacity:.3f}"><title>'
                f"{_e(tenant)} on {_e(node)}: {count} verdicts, "
                f"mean {mean:.1f} ms, worst {worst:.1f} ms"
                f"</title></rect>")
            parts.append(f'<text x="{x + cw / 2:.1f}" y="{y + ch - 7}" '
                         f'text-anchor="middle">{mean:.0f}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _fleet_timeline_svg(obs: dict) -> str:
    """One lane per track: queue-depth sparkline + chaos/steal markers."""
    tracks = obs.get("tracks", [])
    horizon = float(obs.get("horizon_ms", 0.0)) or 1.0
    markers = obs.get("markers", {})
    depths = obs.get("queue_depth", {})
    if not tracks:
        return ""
    gutter, plot_w, lane_h, lane_gap, top = 86, 520, 26, 8, 10
    height = top + len(tracks) * (lane_h + lane_gap) + 22
    width = gutter + plot_w + 14
    peak_depth = max((depth for samples in depths.values()
                      for _, depth in samples), default=0) or 1

    def px(ts: float) -> float:
        return gutter + plot_w * min(ts / horizon, 1.0)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Fleet node timeline with chaos markers and '
             f'queue-depth sparklines">']
    for frac in (0.25, 0.5, 0.75, 1.0):
        gx = gutter + plot_w * frac
        parts.append(f'<line x1="{gx:.1f}" y1="{top}" x2="{gx:.1f}" '
                     f'y2="{height - 22}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text class="muted" x="{gx:.1f}" '
                     f'y="{height - 8}" text-anchor="middle">'
                     f"{horizon * frac:.0f} ms</text>")
    for row, track in enumerate(tracks):
        y0 = top + row * (lane_h + lane_gap)
        base = y0 + lane_h - 4
        parts.append(f'<text x="{gutter - 8}" y="{base}" '
                     f'text-anchor="end">{_e(track)}</text>')
        parts.append(f'<line x1="{gutter}" y1="{base}" '
                     f'x2="{gutter + plot_w}" y2="{base}" '
                     f'stroke="var(--axis)" stroke-width="1"/>')
        samples = depths.get(track, [])
        if samples:
            # Step-after sparkline: depth holds until the next sample.
            points, last_y = [], base
            for ts, depth in samples:
                x = px(ts)
                sy = base - (lane_h - 10) * depth / peak_depth
                points.append(f"{x:.1f},{last_y:.1f}")
                points.append(f"{x:.1f},{sy:.1f}")
                last_y = sy
            points.append(f"{gutter + plot_w},{last_y:.1f}")
            peak_here = max(depth for _, depth in samples)
            parts.append(f'<polyline points="{" ".join(points)}" '
                         f'fill="none" stroke="var(--seq)" '
                         f'stroke-width="1.5"><title>'
                         f"{_e(track)} queue depth (peak {peak_here})"
                         f"</title></polyline>")
        for ts, name in markers.get(track, []):
            x = px(ts)
            parts.append(f'<line x1="{x:.1f}" y1="{y0 + 2}" '
                         f'x2="{x:.1f}" y2="{base}" '
                         f'stroke="{_marker_color(name)}" '
                         f'stroke-width="2"><title>'
                         f"{_e(name)} @ {ts:.1f} ms</title></line>")
    parts.append("</svg>")
    return "".join(parts)


def _fleet_slo_table(slo: dict) -> str:
    rows = []
    for objective in slo.get("objectives", []):
        burn = objective.get("burn_rates") or []
        rows.append([objective["name"], f"{objective['target']:g}",
                     f"{objective['actual']:g}",
                     "ok" if objective["ok"] else "BREACH",
                     " / ".join(f"{b:.1f}" for b in burn) or "—"])
    verdict = "met" if slo.get("ok") else "BREACHED"
    return ("<figure><figcaption>SLO <code>"
            + _e(slo.get("spec", "")) + "</code> — " + verdict
            + f" over {slo.get('horizon_ms', 0.0):.1f} virtual ms "
            f"({slo.get('windows', 0)} burn windows; burn 1.0 spends "
            "the error budget exactly at the objective's rate)."
            "</figcaption>"
            + _table(["objective", "target", "actual", "verdict",
                      "burn per window"], rows)
            + "</figure>")


def _fleet_section(obs: dict) -> str:
    if not obs:
        return ""
    parts = ["<h2>Fleet telemetry</h2>"]
    sessions = obs.get("sessions", {})
    spans = obs.get("spans", {})
    summary_bits = [
        f"{sessions.get('total', 0)} sessions "
        f"({', '.join(f'{n} {s}' for s, n in sorted(sessions.get('by_status', {}).items()))})",
        f"{spans.get('total', 0)} spans",
    ]
    if spans.get("killed"):
        summary_bits.append(f"{spans['killed']} killed with their node, "
                            f"{spans.get('reparented', 0)} re-parented "
                            f"onto a new owner")
    parts.append(f'<p class="meta">{_e("; ".join(summary_bits))}</p>')

    latency = obs.get("latency", {})
    if latency:
        rows = []
        for metric, entry in sorted(latency.items()):
            stats = entry.get("all", {})
            rows.append([metric, stats.get("count", 0),
                         f"{stats.get('mean', 0.0):.1f}",
                         f"{stats.get('p50', 0.0):.1f}",
                         f"{stats.get('p95', 0.0):.1f}",
                         f"{stats.get('p99', 0.0):.1f}",
                         f"{stats.get('max', 0.0):.1f}"])
        parts.append(
            "<figure><figcaption>Virtual-time latency distributions "
            "across the whole fleet (ms): queue wait, audit service "
            "time, and time from a session's first segment to its "
            "verdict.</figcaption>"
            + _table(["metric", "n", "mean", "p50", "p95", "p99", "max"],
                     rows)
            + "</figure>")

    heatmap = obs.get("heatmap", {})
    if heatmap.get("cells"):
        twin_rows = [[f"{t} on {n}", count, f"{mean:.1f}", f"{worst:.1f}"]
                     for t, n, count, mean, worst in heatmap["cells"]]
        parts.append(
            "<figure><figcaption>Mean time-to-verdict (ms) per tenant "
            "and judging node; darker is slower, empty outline means "
            "that node never judged that tenant.</figcaption>"
            + _fleet_heatmap_svg(heatmap)
            + _details_table(["tenant / node", "verdicts", "mean ms",
                              "worst ms"], twin_rows)
            + "</figure>")

    if obs.get("tracks"):
        legend = ['<div class="legend">']
        for prefix, color in _MARKER_COLORS:
            legend.append(f'<span><span class="chip" '
                          f'style="background:{color}"></span>'
                          f"{_e(prefix)}</span>")
        legend.append("</div>")
        marker_rows = [[track, f"{ts:.1f}", name]
                       for track, rows in sorted(
                           obs.get("markers", {}).items())
                       for ts, name in rows]
        parts.append(
            "<figure><figcaption>Per-node timeline over the virtual "
            "horizon: queue-depth sparklines (single hue) with chaos, "
            "detector, and steal instants as colored ticks."
            "</figcaption>"
            + "".join(legend) + _fleet_timeline_svg(obs)
            + (_details_table(["track", "ms", "event"], marker_rows, 1)
               if marker_rows else "")
            + "</figure>")

    if obs.get("slo"):
        parts.append(_fleet_slo_table(obs["slo"]))
    return "".join(parts)


def _profile_section(record) -> str:
    """Cycle-exact flame graphs (and the differential view when both
    sides of a round trip carry a profile and disagree)."""
    from repro.obs.forensics import diff_lines, diff_profiles, \
        render_flame_diff_svg
    from repro.obs.profiler import render_flame_svg

    profiles = record.figures.get("profile", {})
    if not profiles:
        return ""
    parts = ["<h2>Cycle-exact profile</h2>"]
    for side in sorted(profiles):
        profile = profiles[side]
        twin_rows = [[";".join(e["stack"]), e["tier"],
                      f"{e['cycles']:,}"]
                     for e in profile.get("stacks", [])[:12]]
        parts.append(
            "<figure><figcaption>"
            f"{_e(side)}: {profile.get('samples', 0):,} samples, "
            f"{profile.get('total_cycles', 0):,} cycles attributed "
            "exactly — per-source frame totals sum to the ledger "
            "(stride "
            f"{profile.get('stride', '?')}/"
            f"{profile.get('jit_stride', '?')}).</figcaption>"
            + render_flame_svg(profile,
                               title=f"{side} guest cycles")
            + _details_table(["stack", "tier", "cycles"], twin_rows, 2)
            + "</figure>")
    if "play" in profiles and "replay" in profiles:
        diff = diff_profiles(profiles["play"], profiles["replay"])
        if diff["entries"]:
            diff_rows = [[";".join(e["stack"]), e["source"],
                          f"{e['play']:,}", f"{e['replay']:,}",
                          f"{e['delta']:+,}"]
                         for e in diff["entries"][:12]]
            parts.append(
                "<figure><figcaption>Divergence forensics: "
                + _e(diff_lines(diff, top=0)[1].strip())
                + "</figcaption>"
                + render_flame_diff_svg(profiles["play"],
                                        profiles["replay"])
                + _details_table(["divergent frame", "source", "play",
                                  "replay", "delta"], diff_rows, 2)
                + "</figure>")
        else:
            parts.append('<p class="meta">play and replay profiles '
                         "agree cycle-exactly.</p>")
    return "".join(parts)


def _run_section(run_id: str, record) -> str:
    parts = [f"<h1>{_e(record.kind)} — <code>{_e(run_id)}</code></h1>"]
    meta = []
    if record.label:
        meta.append(_e(record.label))
    if record.config:
        meta.append(", ".join(f"{k}={v}" for k, v
                              in sorted(record.config.items())))
    if record.seeds:
        meta.append(f"seeds {record.seeds}")
    if record.flights:
        meta.append(f"{len(record.flights)} divergence flight record(s)")
    if meta:
        parts.append(f'<p class="meta">{" · ".join(meta)}</p>')
    if "fig6" in record.figures:
        parts.append(_fig6_section(record.figures["fig6"]))
    if "fig8" in record.figures:
        parts.append(_roc_section(record.figures["fig8"]))
    if "fleet_obs" in record.figures:
        parts.append(_fleet_section(record.figures["fleet_obs"]))
    if "profile" in record.figures:
        parts.append(_profile_section(record))
    parts.append(_table1_section(record))
    parts.append(_verdicts_section(record.verdicts))
    parts.append(_phases_section(record.metrics))
    return "".join(parts)


def render_html(runs: "list[tuple[str, object]]",
                title: str = "TDR experiment report") -> str:
    """One self-contained HTML document for ``(run_id, record)`` pairs."""
    body = "".join(_run_section(run_id, record)
                   for run_id, record in runs)
    return ("<!DOCTYPE html><html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">"
            f"<title>{_e(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            f"{body}"
            "<p class=\"meta\">Generated by repro.obs.report — "
            "stdlib only, no external assets.</p>"
            "</body></html>")

"""Observability for the TDR pipeline: metrics, ledger, tracing, profiling.

The package turns the simulator's one opaque cycle counter into an
inspectable accounting system:

* :mod:`repro.obs.metrics` — zero-dependency Counter/Gauge/Histogram
  registry with a process-global default and a null no-op implementation;
* :mod:`repro.obs.ledger` — the **cycle-attribution ledger**: every
  ``VirtualClock.advance`` is tagged with the hardware source that caused
  it, and per-source totals always sum to the clock (a programmatic
  Table 1);
* :mod:`repro.obs.tracer` — span tracing in the virtual cycle domain with
  NDJSON and Chrome trace-event export;
* :mod:`repro.obs.sampling` — sampled opcode histograms from the
  interpreter hot loop;
* :mod:`repro.obs.profiler` — the cycle-exact stack profiler: guest call
  stacks captured on the poll branch and at trace-JIT block boundaries,
  ledger-delta attribution (per-source frame totals sum exactly to the
  ledger), folded-stack + SVG flame-graph export;
* :mod:`repro.obs.forensics` — play-vs-replay profile diffing: first
  divergent (function, pc, source) frame and a differential flame view;
* :mod:`repro.obs.flight` — the divergence flight recorder: last-N events
  and per-source cycle deltas when play and replay disagree;
* :mod:`repro.obs.snapshot` — picklable :class:`ObsSnapshot` images of a
  worker's observability and their order-deterministic fleet merge;
* :mod:`repro.obs.runstore` — the persistent, content-addressed run
  store (one directory of JSON artifacts per experiment run);
* :mod:`repro.obs.report` — text and zero-dependency HTML/SVG rendering
  of stored runs.

Everything here observes and never perturbs: enabling any collector
leaves cycle counts bit-identical to an uninstrumented run, and with
observability disabled (the default) the added overhead is a handful of
``is None`` checks.

Usage::

    from repro import round_trip
    from repro.obs import Observability, format_attribution_table

    obs = Observability()      # ledger + opcode sampling + tracer
    outcome = round_trip(program, config, workload=workload, obs=obs)
    print(format_attribution_table(outcome.play.ledger,
                                   outcome.play.total_cycles))
    obs.tracer.write_chrome_trace("tdr-trace.json")
"""

from __future__ import annotations

from repro.obs.dist import (DistTracer, SLOReport, SLOSpec, SpanRecord,
                            derive_trace_id, evaluate_slo)
from repro.obs.flight import (DivergenceRecord, capture_divergence,
                              flights_from_ndjson, flights_to_ndjson)
from repro.obs.ledger import (KNOWN_SOURCES, MITIGATED_SOURCES, CycleLedger,
                              Source, format_attribution_table,
                              format_process_table)
from repro.obs.metrics import (NULL_REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, NullRegistry, enable_metrics,
                               get_registry, labeled, set_registry)
from repro.obs.forensics import (diff_lines, diff_profiles,
                                 first_divergence, render_flame_diff_svg)
from repro.obs.profiler import (RUNTIME_FRAME, CycleProfiler, folded_lines,
                                profile_lines, render_flame_svg,
                                write_flame_svg)
from repro.obs.sampling import OpcodeSampler
from repro.obs.snapshot import (EMPTY_OBS_SNAPSHOT, FleetObservations,
                                ObsSnapshot, TraceSummary, summarize_tracer)
from repro.obs.runstore import RunRecord, RunStore, SCHEMA_VERSION
from repro.obs.tracer import SpanTracer

__all__ = [
    "Counter", "CycleLedger", "CycleProfiler", "DistTracer",
    "DivergenceRecord", "EMPTY_OBS_SNAPSHOT", "FleetObservations",
    "Gauge", "Histogram", "KNOWN_SOURCES", "MITIGATED_SOURCES",
    "MetricsRegistry", "NULL_REGISTRY", "NullRegistry", "ObsSnapshot",
    "Observability", "OpcodeSampler", "RUNTIME_FRAME", "RunRecord",
    "RunStore", "SCHEMA_VERSION", "SLOReport", "SLOSpec", "Source",
    "SpanRecord", "SpanTracer", "TraceSummary", "capture_divergence",
    "default_observability", "derive_trace_id", "diff_lines",
    "diff_profiles", "enable_metrics", "evaluate_slo",
    "first_divergence", "flights_from_ndjson", "flights_to_ndjson",
    "folded_lines", "format_attribution_table", "format_process_table",
    "get_registry",
    "labeled", "profile_lines", "render_flame_diff_svg",
    "render_flame_svg", "set_registry", "summarize_tracer",
    "write_flame_svg",
]


class Observability:
    """Bundle of observability settings handed to machines and pipelines.

    Pass one instance through :func:`repro.core.tdr.round_trip` (or any
    ``play``/``replay``/audit entry point) to observe a whole pipeline:
    each machine run gets its own :class:`CycleLedger` and
    :class:`OpcodeSampler` (snapshotted onto its ``ExecutionResult``),
    while the :class:`SpanTracer` and metrics registry are shared so the
    runs land on one timeline and one instrument set.

    ``Observability()`` enables the ledger, the sampler, a tracer, and a
    recording registry.  Disable pieces with the keyword flags; machines
    built with ``obs=None`` (the default everywhere) skip all of it.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: SpanTracer | None = None, *,
                 ledger: bool = True, sample_opcodes: bool = True,
                 trace: bool = True, flight_n: int = 16,
                 profile: bool = False, profile_stride: int = 4,
                 profile_jit_stride: int = 16) -> None:
        from repro.errors import ObservabilityError

        if profile and not ledger:
            raise ObservabilityError(
                "the cycle profiler attributes ledger deltas; "
                "profile=True requires ledger=True")
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None \
            else (SpanTracer() if trace else None)
        self.ledger_enabled = ledger
        self.sample_opcodes = sample_opcodes
        #: Transmissions kept per side by the divergence flight recorder.
        self.flight_n = flight_n
        #: Cycle-exact stack profiler (off by default: stack capture is
        #: the one collector with real per-poll cost).
        self.profile_enabled = profile
        self.profile_stride = profile_stride
        self.profile_jit_stride = profile_jit_stride


def default_observability() -> Observability:
    """A fully enabled bundle wired to the process-global registry."""
    return Observability(registry=enable_metrics())

"""Picklable observability snapshots for cross-process fan-out.

``run_fleet`` executes machine runs in worker processes, and live
observability objects — registries with locks, tracers with bound clock
closures, ledgers attached to clocks — must never cross the process
boundary.  An :class:`ObsSnapshot` is the frozen, picklable image of what
one worker observed: its metrics registry state, the per-source cycle
totals of its run(s), and a summary of its span trace.  The parent merges
snapshots **in submission order** via :class:`FleetObservations`, so the
aggregate a ``jobs=N`` fleet produces is bit-identical to the serial loop:

* ledger totals are integers and addition is order-independent;
* counter increments and the cycle histograms carry integer-valued
  floats, so even the merged float sums match the serial accumulation
  exactly (within the 2**53 exact-integer range of a double);
* gauges are last-merge-wins, which in submission order is exactly the
  serial outcome.

The disabled path stays allocation-free: capturing with no observability
bundle returns the shared :data:`EMPTY_OBS_SNAPSHOT` singleton, and a
:class:`~repro.obs.metrics.NullRegistry` snapshot is the shared empty
dict — no per-call garbage on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.ledger import CycleLedger
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class TraceSummary:
    """What a worker's span tracer saw, without shipping every event."""

    events: int = 0
    tracks: tuple[str, ...] = ()
    #: (span name, begin count) pairs, sorted by name.
    spans: tuple[tuple[str, int], ...] = ()


_EMPTY_TRACE = TraceSummary()


def summarize_tracer(tracer) -> TraceSummary:
    """Compress a :class:`~repro.obs.tracer.SpanTracer` to its summary."""
    if tracer is None or not tracer.events:
        return _EMPTY_TRACE
    tracks: list[str] = []
    spans: dict[str, int] = {}
    for event in tracer.events:
        ph = event.get("ph")
        if ph == "M":
            tracks.append(event["args"]["name"])
        elif ph == "B":
            name = event["name"]
            spans[name] = spans.get(name, 0) + 1
    return TraceSummary(events=len(tracer.events), tracks=tuple(tracks),
                        spans=tuple(sorted(spans.items())))


@dataclass(frozen=True)
class ObsSnapshot:
    """Everything one worker observed, in picklable form."""

    #: :meth:`MetricsRegistry.snapshot` of the worker's registry.
    metrics: dict = field(default_factory=dict)
    #: Per-source cycle totals (the run's :class:`CycleLedger` image).
    ledger: dict = field(default_factory=dict)
    trace: TraceSummary = _EMPTY_TRACE

    @classmethod
    def capture(cls, obs, result=None) -> "ObsSnapshot":
        """Snapshot an :class:`~repro.obs.Observability` bundle.

        ``result`` (an :class:`~repro.machine.machine.ExecutionResult`)
        supplies the ledger totals; the bundle supplies metrics and the
        trace.  ``obs=None`` returns the shared empty singleton without
        allocating.
        """
        if obs is None:
            return EMPTY_OBS_SNAPSHOT
        ledger = getattr(result, "ledger", None) if result is not None \
            else None
        metrics = obs.registry.snapshot()
        trace = summarize_tracer(obs.tracer)
        if ledger is None and not metrics and trace.events == 0:
            return EMPTY_OBS_SNAPSHOT
        return cls(metrics=metrics, ledger=dict(ledger or {}),
                   trace=trace)

    @property
    def empty(self) -> bool:
        return not self.metrics and not self.ledger \
            and self.trace.events == 0


#: Shared "nothing observed" snapshot — the allocation-free fast path.
EMPTY_OBS_SNAPSHOT = ObsSnapshot()


class FleetObservations:
    """Order-deterministic aggregate of worker snapshots.

    Absorb snapshots in submission order; the result is the registry and
    ledger a serial loop sharing one bundle would have produced.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.ledger = CycleLedger()
        self.trace_events = 0
        self.tracks: list[str] = []
        self.spans: dict[str, int] = {}
        self.workers = 0

    def absorb(self, snapshot: ObsSnapshot | None) -> None:
        """Merge one worker's snapshot (``None`` / empty are no-ops)."""
        if snapshot is None or snapshot.empty:
            return
        self.workers += 1
        self.registry.merge_snapshot(snapshot.metrics)
        for source, cycles in snapshot.ledger.items():
            self.ledger.charge(source, cycles)
        self.trace_events += snapshot.trace.events
        self.tracks.extend(snapshot.trace.tracks)
        for name, count in snapshot.trace.spans:
            self.spans[name] = self.spans.get(name, 0) + count

    def ledger_totals(self) -> dict[str, int]:
        """Merged per-source cycle totals, largest first."""
        return self.ledger.totals()
